"""Stones and actions: the local event-processing graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.marshal import Format

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evpath.manager import EvManager, Link


class EvPathError(RuntimeError):
    """Bad graph construction or event routing failure."""


@dataclass
class TerminalAction:
    """Deliver the event to an application handler: ``handler(fmt, record)``."""

    handler: Callable[[Format, dict], None]


@dataclass
class FilterAction:
    """Pass the event to ``target`` stone iff ``predicate(record)`` is true."""

    predicate: Callable[[dict], bool]
    target: int


@dataclass
class TransformAction:
    """Rewrite the record with ``func(record) -> record`` then forward.

    Data Conditioning plug-ins are installed as transform actions: the
    codelet runs *inside the transport path*, in whichever process's
    manager the action is installed on.
    """

    func: Callable[[dict], dict]
    target: int
    #: Optional label for monitoring (e.g. the DC plug-in name).
    label: str = "transform"


@dataclass
class SplitAction:
    """Forward the event to every stone in ``targets``."""

    targets: list[int]


@dataclass
class RouterAction:
    """Content-based routing: ``selector(record) -> index`` picks among
    ``targets`` (the EVPath router stone — how overlay topologies steer
    events, e.g. a reader rank by array region or a species by name)."""

    selector: Callable[[dict], int]
    targets: list[int]


@dataclass
class BridgeAction:
    """Marshal the event and ship it across ``link`` to a remote stone."""

    link: "Link"
    remote_stone: int


Action = Any  # union of the five action dataclasses


@dataclass
class Stone:
    """One vertex of the event graph; processes events with its action."""

    stone_id: int
    action: Optional[Action] = None
    #: Events processed (monitoring).
    events_in: int = 0

    def set_action(self, action: Action) -> None:
        if self.action is not None:
            raise EvPathError(f"stone {self.stone_id} already has an action")
        self.action = action
