"""Event managers and bridge links (transport plug-points)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

import numpy as np

from repro.marshal import (
    FieldKind,
    Format,
    FormatRegistry,
    decode_message,
    decode_view,
    encode_message,
)
from repro.transport.buffers import Ownership, WireBuffer
from repro.evpath.stones import (
    BridgeAction,
    EvPathError,
    FilterAction,
    RouterAction,
    SplitAction,
    Stone,
    TerminalAction,
    TransformAction,
)
from repro.transport.shm import ShmChannel, ShmCostModel
from repro.transport.rdma import RdmaChannel


class Link(Protocol):
    """A bridge transport: moves marshaled bytes to a remote manager.

    ``send`` returns the simulated seconds the movement cost; the bytes
    must arrive at the remote manager's ``dispatch_wire``.
    """

    def send(self, data: bytes, remote_stone: int) -> float: ...  # pragma: no cover


@dataclass
class DeliveryStats:
    """Per-manager monitoring counters."""

    events_submitted: int = 0
    events_delivered: int = 0
    events_dropped: int = 0
    bytes_bridged: int = 0
    bridge_time: float = 0.0
    transform_invocations: int = 0


class EvManager:
    """One process's EVPath context: stones + format registry."""

    def __init__(self, name: str = "cm") -> None:
        self.name = name
        self.registry = FormatRegistry()
        self._stones: dict[int, Stone] = {}
        self._next_stone = 0
        self.stats = DeliveryStats()

    # -- graph construction ----------------------------------------------
    def create_stone(self, action: Any = None) -> Stone:
        stone = Stone(self._next_stone, action)
        self._stones[stone.stone_id] = stone
        self._next_stone += 1
        return stone

    def stone(self, stone_id: int) -> Stone:
        try:
            return self._stones[stone_id]
        except KeyError:
            raise EvPathError(f"no stone {stone_id} in manager {self.name!r}") from None

    def terminal_stone(self, handler: Callable[[Format, dict], None]) -> Stone:
        return self.create_stone(TerminalAction(handler))

    def filter_stone(self, predicate: Callable[[dict], bool], target: Stone) -> Stone:
        return self.create_stone(FilterAction(predicate, target.stone_id))

    def transform_stone(
        self, func: Callable[[dict], dict], target: Stone, label: str = "transform"
    ) -> Stone:
        return self.create_stone(TransformAction(func, target.stone_id, label))

    def split_stone(self, targets: list[Stone]) -> Stone:
        return self.create_stone(SplitAction([t.stone_id for t in targets]))

    def router_stone(
        self, selector: Callable[[dict], int], targets: list[Stone]
    ) -> Stone:
        return self.create_stone(
            RouterAction(selector, [t.stone_id for t in targets])
        )

    def bridge_stone(self, link: "Link", remote_stone: int) -> Stone:
        return self.create_stone(BridgeAction(link, remote_stone))

    # -- event flow --------------------------------------------------------
    def submit(self, stone: Stone | int, fmt: Format, record: dict) -> None:
        """Inject an event at a stone and walk it through the local graph."""
        sid = stone.stone_id if isinstance(stone, Stone) else stone
        self.stats.events_submitted += 1
        self._process(sid, fmt, record)

    def _process(self, stone_id: int, fmt: Format, record: dict) -> None:
        stone = self.stone(stone_id)
        stone.events_in += 1
        action = stone.action
        if action is None:
            raise EvPathError(f"event reached action-less stone {stone_id}")
        if isinstance(action, TerminalAction):
            action.handler(fmt, record)
            self.stats.events_delivered += 1
        elif isinstance(action, FilterAction):
            if action.predicate(record):
                self._process(action.target, fmt, record)
            else:
                self.stats.events_dropped += 1
        elif isinstance(action, TransformAction):
            self.stats.transform_invocations += 1
            self._process(action.target, fmt, action.func(record))
        elif isinstance(action, SplitAction):
            for target in action.targets:
                self._process(target, fmt, record)
        elif isinstance(action, RouterAction):
            idx = action.selector(record)
            if not (0 <= idx < len(action.targets)):
                raise EvPathError(
                    f"router selected target {idx} of {len(action.targets)}"
                )
            self._process(action.targets[idx], fmt, record)
        elif isinstance(action, BridgeAction):
            wire = encode_message(fmt, record, peer_registry=None)
            self.stats.bytes_bridged += len(wire)
            self.stats.bridge_time += action.link.send(wire, action.remote_stone)
        else:
            raise EvPathError(f"unknown action type {type(action).__name__}")

    def dispatch_wire(self, data, stone_id: int) -> None:
        """Entry point for bytes or wire spans arriving from a remote
        bridge.

        A :class:`~repro.transport.buffers.WireBuffer` is decoded
        zero-copy (:func:`~repro.marshal.decode_view`); fields of a
        lease-backed span (pool/xpmem/rdma) are detached before the
        caller releases it, because stones downstream may retain records
        indefinitely — that detach *is* the consumer-side copy the paper
        counts.  Plain bytes keep the legacy copying decode.
        """
        if isinstance(data, WireBuffer):
            fmt, record, _ = decode_view(data, self.registry)
            for f in fmt.fields:
                v = record[f.name]
                if f.kind is FieldKind.BYTES:
                    record[f.name] = bytes(v)
                elif f.kind is FieldKind.ARRAY:
                    # Detach from the wire span (stones may retain the
                    # record, and legacy decode hands out writable
                    # arrays): this is the one consumer-side copy.
                    record[f.name] = np.array(v)
        else:
            fmt, record = decode_message(data, self.registry)
        self._process(stone_id, fmt, record)


# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------

class InProcessLink:
    """Zero-cost link between two managers in the same address space.

    Used for inline placement and in unit tests.
    """

    def __init__(self, remote: EvManager, cost_per_event: float = 0.0) -> None:
        self.remote = remote
        self.cost_per_event = cost_per_event

    def send(self, data: bytes, remote_stone: int) -> float:
        self.remote.dispatch_wire(data, remote_stone)
        return self.cost_per_event


class ShmLink:
    """Bridge over the shared-memory transport (intra-node placement).

    Bytes really traverse the SPSC queue / buffer pool; the cost model
    prices the movement for simulation purposes.
    """

    def __init__(
        self,
        remote: EvManager,
        channel: Optional[ShmChannel] = None,
        cost_model: Optional[ShmCostModel] = None,
        cross_numa: bool = False,
    ) -> None:
        self.remote = remote
        self.channel = channel or ShmChannel()
        self.cost_model = cost_model
        self.cross_numa = cross_numa

    def send(self, data: bytes, remote_stone: int) -> float:
        self.channel.send(data)
        # Drain immediately (single-threaded graph walk): the queue still
        # exercised end-to-end, the consumer copy happens here.
        payload = self.channel.recv()
        try:
            self.remote.dispatch_wire(payload, remote_stone)
        finally:
            if isinstance(payload, WireBuffer) and not payload.released:
                payload.release()
        if self.cost_model is None:
            return 0.0
        return self.cost_model.transfer_time(
            len(data), cross_numa=self.cross_numa, xpmem=self.channel.use_xpmem
        )


class RdmaLink:
    """Bridge over the RDMA transport (inter-node placement)."""

    def __init__(self, remote: EvManager, channel: RdmaChannel) -> None:
        self.remote = remote
        self.channel = channel

    def send(self, data: bytes, remote_stone: int) -> float:
        t = self.channel.send(data)
        payload = self.channel.recv()
        if payload is None:  # pragma: no cover - channel contract
            raise EvPathError("RDMA channel lost a message")
        try:
            self.remote.dispatch_wire(payload, remote_stone)
        finally:
            if isinstance(payload, WireBuffer) and not payload.released:
                payload.release()
        return t
