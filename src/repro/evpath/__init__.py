"""EVPath-like event-path messaging (paper Section II.C, reference [12]).

FlexIO implements its data-movement protocols on EVPath, which provides
point-to-point messaging, data marshaling, and a modular transport
architecture.  The model here keeps EVPath's essential shape:

* an :class:`EvManager` per process owns *stones* — nodes of a local
  event-processing graph;
* events submitted to a stone flow through its *actions*: terminal
  (deliver to a handler), filter (drop or pass), transform (rewrite the
  record — this is where Data Conditioning plug-ins execute), split
  (fan-out), and bridge (marshal and ship to a stone on another manager);
* bridges ride on pluggable :class:`Link` transports — in-process, shared
  memory, or RDMA — each of which really moves the marshaled bytes and
  reports the simulated time charged.
"""

from repro.evpath.stones import (
    BridgeAction,
    EvPathError,
    FilterAction,
    RouterAction,
    SplitAction,
    Stone,
    TerminalAction,
    TransformAction,
)
from repro.evpath.manager import EvManager, InProcessLink, Link, RdmaLink, ShmLink

__all__ = [
    "BridgeAction",
    "EvManager",
    "EvPathError",
    "FilterAction",
    "InProcessLink",
    "Link",
    "RdmaLink",
    "RouterAction",
    "ShmLink",
    "SplitAction",
    "Stone",
    "TerminalAction",
    "TransformAction",
]
