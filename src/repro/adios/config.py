"""The external XML configuration file (ADIOS-style).

Applications never name their transport in code: an XML file binds each
adios-group to an I/O *method* plus parameter hints, and "a one-line update
to the configuration file is sufficient to switch between file I/O and
online data movement transports" (paper Section II.B).

Example::

    <adios-config>
      <adios-group name="particles">
        <var name="zion" type="float64" dimensions="n,7"/>
        <var name="electron" type="float64" dimensions="n,7"/>
      </adios-group>
      <method group="particles" method="FLEXPATH">
        caching=ALL;batching=true;sync=false
      </method>
      <buffer size-MB="64"/>
    </adios-config>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional

from repro.adios.model import Group


class ConfigError(RuntimeError):
    """Malformed configuration document."""


@dataclass(frozen=True)
class MethodSpec:
    """Which I/O method a group uses, plus its hint parameters."""

    group: str
    method: str
    parameters: dict[str, str] = field(default_factory=dict)

    def param(self, key: str, default: str | None = None) -> Optional[str]:
        return self.parameters.get(key, default)

    def param_bool(self, key: str, default: bool = False) -> bool:
        raw = self.parameters.get(key)
        if raw is None:
            return default
        return raw.strip().lower() in ("1", "true", "yes", "on")

    def param_int(self, key: str, default: int = 0) -> int:
        raw = self.parameters.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(f"parameter {key}={raw!r} is not an integer") from exc

    def param_float(self, key: str, default: float = 0.0) -> float:
        raw = self.parameters.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(f"parameter {key}={raw!r} is not a number") from exc


def _parse_params(text: Optional[str]) -> dict[str, str]:
    """Parse ``key=value;key=value`` hint strings."""
    out: dict[str, str] = {}
    if not text:
        return out
    for piece in text.split(";"):
        piece = piece.strip()
        if not piece:
            continue
        if "=" not in piece:
            raise ConfigError(f"bad parameter {piece!r} (expected key=value)")
        key, _, value = piece.partition("=")
        out[key.strip()] = value.strip()
    return out


def _parse_dimensions(text: Optional[str]) -> Optional[tuple[int, ...]]:
    """Dimensions like ``128,64`` (or ``n,7`` — letters mean write-time)."""
    if not text:
        return None
    dims = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            raise ConfigError(f"empty dimension in {text!r}")
        dims.append(int(tok) if tok.lstrip("-").isdigit() else -1)
    return tuple(dims)


@dataclass
class AdiosConfig:
    """Parsed configuration: groups, method bindings, buffer settings."""

    groups: dict[str, Group] = field(default_factory=dict)
    methods: dict[str, MethodSpec] = field(default_factory=dict)
    buffer_mb: int = 64

    # ------------------------------------------------------------------
    @classmethod
    def from_xml(cls, text: str) -> "AdiosConfig":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigError(f"XML parse error: {exc}") from exc
        if root.tag != "adios-config":
            raise ConfigError(f"root element is <{root.tag}>, expected <adios-config>")
        cfg = cls()
        for elem in root:
            if elem.tag == "adios-group":
                name = elem.get("name")
                if not name:
                    raise ConfigError("<adios-group> missing name attribute")
                if name in cfg.groups:
                    raise ConfigError(f"duplicate group {name!r}")
                group = Group(name)
                for var in elem.findall("var"):
                    vname = var.get("name")
                    if not vname:
                        raise ConfigError(f"<var> in group {name!r} missing name")
                    group.declare(
                        vname,
                        dtype=var.get("type", "float64"),
                        global_shape=_parse_dimensions(var.get("dimensions")),
                    )
                cfg.groups[name] = group
            elif elem.tag == "method":
                gname = elem.get("group")
                method = elem.get("method")
                if not gname or not method:
                    raise ConfigError("<method> needs group and method attributes")
                if gname in cfg.methods:
                    raise ConfigError(f"group {gname!r} bound to two methods")
                cfg.methods[gname] = MethodSpec(
                    gname, method.upper(), _parse_params(elem.text)
                )
            elif elem.tag == "buffer":
                size = elem.get("size-MB")
                if size is not None:
                    cfg.buffer_mb = int(size)
            else:
                raise ConfigError(f"unknown element <{elem.tag}>")
        for gname in cfg.methods:
            if gname not in cfg.groups:
                raise ConfigError(f"<method> references unknown group {gname!r}")
        return cfg

    @classmethod
    def from_file(cls, path: str) -> "AdiosConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_xml(fh.read())

    # ------------------------------------------------------------------
    def method_for(self, group: str) -> MethodSpec:
        spec = self.methods.get(group)
        if spec is None:
            # ADIOS default: file I/O.
            return MethodSpec(group, "BP", {})
        return spec

    def group(self, name: str) -> Group:
        try:
            return self.groups[name]
        except KeyError:
            raise ConfigError(f"no group {name!r} in configuration") from None
