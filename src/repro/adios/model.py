"""The ADIOS data model: groups, variables, process groups.

Simulation output is logically time-indexed; each timestep is a *group* of
variables of scalar or array type.  Each writing process contributes one
*process group* per step — the unit the process-group-oriented exchange
pattern reads by writer rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.adios.selection import BoundingBox


@dataclass(frozen=True)
class VarDecl:
    """Declaration of one variable within a group.

    ``global_shape`` is None for scalars and purely-local arrays; for
    global arrays it fixes the dimensionality (entries may be -1 when a
    dimension is only known at write time, e.g. a particle count).
    """

    name: str
    dtype: str = "float64"
    global_shape: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        np.dtype(self.dtype)  # raises on an invalid dtype string

    @property
    def is_global_array(self) -> bool:
        return self.global_shape is not None


@dataclass
class Group:
    """A named set of variable declarations (one adios-group)."""

    name: str
    variables: dict[str, VarDecl] = field(default_factory=dict)

    def declare(
        self,
        name: str,
        dtype: str = "float64",
        global_shape: Optional[Sequence[int]] = None,
    ) -> VarDecl:
        if name in self.variables:
            raise ValueError(f"variable {name!r} already declared in group {self.name!r}")
        decl = VarDecl(
            name,
            dtype,
            tuple(global_shape) if global_shape is not None else None,
        )
        self.variables[name] = decl
        return decl

    def var(self, name: str) -> VarDecl:
        try:
            return self.variables[name]
        except KeyError:
            raise KeyError(f"group {self.name!r} has no variable {name!r}") from None


@dataclass
class WrittenVar:
    """One variable instance written by one rank at one step."""

    name: str
    data: np.ndarray
    #: Placement of this block within the global array (None for local data).
    box: Optional[BoundingBox] = None
    #: Declared global shape at write time (resolves -1 dims).
    global_shape: Optional[tuple[int, ...]] = None

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def stats(self) -> tuple[float, float]:
        """(min, max) — the BP-style characteristics kept in the index."""
        if self.data.size == 0:
            return (float("nan"), float("nan"))
        return (float(self.data.min()), float(self.data.max()))


@dataclass
class ProcessGroupData:
    """Everything one rank wrote during one I/O timestep."""

    rank: int
    step: int
    variables: dict[str, WrittenVar] = field(default_factory=dict)

    def add(self, wv: WrittenVar) -> None:
        if wv.name in self.variables:
            raise ValueError(
                f"variable {wv.name!r} written twice in step {self.step} by rank {self.rank}"
            )
        self.variables[wv.name] = wv

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables.values())


@dataclass(frozen=True)
class VarMeta:
    """Reader-visible metadata for one variable (aggregated over blocks)."""

    name: str
    dtype: str
    global_shape: Optional[tuple[int, ...]]
    steps: int
    min_value: float
    max_value: float
