"""Aggregated file I/O: the ADIOS ``MPI_AGGREGATE`` pattern.

At scale, one-file-per-process drowns the metadata server and N-to-1
single files serialize on locks; ADIOS's aggregating transport picks a
middle point: ranks forward their output to a small number of
*aggregators*, each of which writes one subfile, plus a global manifest
binding ranks to subfiles::

    out.bp.dir/
        manifest.txt          # header + rank -> subfile map
        data.0.bp             # BP-lite subfile of aggregator 0
        data.1.bp
        ...

Readers resolve blocks through the manifest, so both the process-group
and global-array read patterns work unchanged.  Configured in the XML:
``<method group="g" method="MPI_AGGREGATE">aggregators=4</method>``.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.adios.api import (
    AdiosError,
    EndOfStream,
    IoMethod,
    RankContext,
    ReadHandle,
    WriteHandle,
    register_method,
    resolve_read_args,
)
from repro.adios.bp import BpReader, BpWriter
from repro.adios.config import MethodSpec
from repro.adios.model import Group, VarMeta
from repro.adios.selection import assemble, intersect, resolve_selection
from repro.util import ceil_div

_MANIFEST = "manifest.txt"
_MANIFEST_MAGIC = "bplite-aggregate v1"


def _subfile(index: int) -> str:
    return f"data.{index}.bp"


class _AggState:
    """Shared state of one aggregated write: subfile writers + membership."""

    def __init__(self, path: str, num_ranks: int, num_aggregators: int) -> None:
        if num_aggregators < 1:
            raise AdiosError("aggregators must be >= 1")
        self.dir = f"{os.fspath(path)}.dir"
        os.makedirs(self.dir, exist_ok=True)
        self.num_ranks = num_ranks
        self.num_aggregators = min(num_aggregators, num_ranks)
        self.writers = [
            BpWriter(os.path.join(self.dir, _subfile(a)))
            for a in range(self.num_aggregators)
        ]
        for w in self.writers:
            w.begin_step()
        self.open_ranks: set[int] = set()
        self.advanced: set[int] = set()
        self.closed_ranks: set[int] = set()
        self.finished = False

    def aggregator_of(self, rank: int) -> int:
        """Contiguous rank blocks per aggregator (the ADIOS default)."""
        per = ceil_div(self.num_ranks, self.num_aggregators)
        return min(rank // per, self.num_aggregators - 1)

    def write(self, rank: int, name, data, box, global_shape) -> None:
        self.writers[self.aggregator_of(rank)].write(
            rank, name, data, box, global_shape
        )

    def end_rank_step(self, rank: int) -> None:
        self.advanced.add(rank)
        if self.advanced >= (self.open_ranks - self.closed_ranks):
            for w in self.writers:
                w.end_step()
                w.begin_step()
            self.advanced.clear()

    def close(self, rank: int) -> None:
        self.closed_ranks.add(rank)
        self.advanced.discard(rank)
        if self.closed_ranks >= self.open_ranks and not self.finished:
            for w in self.writers:
                w.close()
            self._write_manifest()
            self.finished = True

    def _write_manifest(self) -> None:
        lines = [
            _MANIFEST_MAGIC,
            f"ranks {self.num_ranks}",
            f"aggregators {self.num_aggregators}",
        ]
        for rank in sorted(self.open_ranks):
            lines.append(f"rank {rank} {_subfile(self.aggregator_of(rank))}")
        with open(os.path.join(self.dir, _MANIFEST), "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")


class _AggWriteHandle(WriteHandle):
    def __init__(self, state: _AggState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._closed = False
        state.open_ranks.add(ctx.rank)

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise AdiosError("write after close")
        self._state.write(self._ctx.rank, name, np.asarray(data), box, global_shape)

    def _advance(self):
        if self._closed:
            raise AdiosError("end_step after close")
        self._state.end_rank_step(self._ctx.rank)

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._state.close(self._ctx.rank)


class _AggReadHandle(ReadHandle):
    """Reads across subfiles through the manifest."""

    def __init__(self, path: str, ctx: RankContext) -> None:
        self.dir = f"{os.fspath(path)}.dir"
        manifest = os.path.join(self.dir, _MANIFEST)
        if not os.path.exists(manifest):
            raise AdiosError(f"no aggregated output at {path!r} (missing manifest)")
        self._rank_to_subfile: dict[int, str] = {}
        with open(manifest, "r", encoding="utf-8") as fh:
            header = fh.readline().strip()
            if header != _MANIFEST_MAGIC:
                raise AdiosError(f"bad manifest header {header!r}")
            for line in fh:
                parts = line.split()
                if parts and parts[0] == "rank":
                    self._rank_to_subfile[int(parts[1])] = parts[2]
        subfiles = sorted(set(self._rank_to_subfile.values()))
        self._readers = {
            name: BpReader(os.path.join(self.dir, name)) for name in subfiles
        }
        self._step = 0
        self._num_steps = max(
            (r.num_steps for r in self._readers.values()), default=0
        )

    def available_vars(self):
        seen: dict[str, None] = {}
        for reader in self._readers.values():
            for name in reader.var_names():
                seen.setdefault(name, None)
        return list(seen)

    def var_meta(self, name: str) -> VarMeta:
        metas = []
        for reader in self._readers.values():
            try:
                metas.append(reader.var_meta(name))
            except KeyError:
                continue
        if not metas:
            raise KeyError(f"no variable {name!r}")
        gshape = next((m.global_shape for m in metas if m.global_shape), None)
        return VarMeta(
            name=name,
            dtype=metas[0].dtype,
            global_shape=gshape,
            steps=max(m.steps for m in metas),
            min_value=min(m.min_value for m in metas),
            max_value=max(m.max_value for m in metas),
        )

    def read_block(self, name, writer_rank):
        subfile = self._rank_to_subfile.get(writer_rank)
        if subfile is None:
            raise KeyError(f"rank {writer_rank} wrote no data")
        return self._readers[subfile].read_block(name, self._step, writer_rank)

    def read(self, name, *, start=None, count=None, selection=None):
        start, count = resolve_read_args(selection, start, count)
        blocks = []
        gshape = None
        dtype = None
        for reader in self._readers.values():
            for entry in reader.blocks(name, self._step):
                dtype = np.dtype(entry.dtype)
                if entry.global_shape:
                    gshape = entry.global_shape
                if entry.box is not None:
                    blocks.append((reader, entry))
        if dtype is None:
            raise KeyError(f"no variable {name!r} at step {self._step}")
        if gshape is None:
            raise AdiosError(f"variable {name!r} is not a global array")
        target = resolve_selection(start, count, gshape)
        touched = (
            (e.box, r._fetch(e))
            for r, e in blocks
            if intersect(target, e.box) is not None
        )
        return assemble(target, touched, dtype=dtype)

    def _advance(self):
        nxt = self._step + 1
        has_data = any(
            any(e.step == nxt for e in r.entries) for r in self._readers.values()
        )
        if not has_data:
            raise EndOfStream(f"{self.dir} after step {self._step}")
        self._step = nxt

    def close(self):
        for reader in self._readers.values():
            reader.close()


class AggregatedBpMethod(IoMethod):
    """The ``MPI_AGGREGATE`` file method."""

    _shared: dict[str, _AggState] = {}

    def open_write(self, name, group, ctx: RankContext, spec: MethodSpec):
        # Function-local import: repro.core.hints lives above the adios
        # layer (core imports adios at package init), so a module-level
        # import here would cycle.
        from repro.core.hints import AGGREGATORS

        state = self._shared.get(name)
        if state is None or state.finished:
            state = _AggState(
                name, ctx.size, spec.param_int(AGGREGATORS, max(1, ctx.size // 4))
            )
            self._shared[name] = state
        return _AggWriteHandle(state, ctx)

    def open_read(self, name, group, ctx: RankContext, spec: MethodSpec):
        return _AggReadHandle(name, ctx)


register_method("MPI_AGGREGATE", AggregatedBpMethod)
register_method("AGGREGATE", AggregatedBpMethod)
