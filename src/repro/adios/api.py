"""The ADIOS-style step-oriented open/write/close API with pluggable methods.

The central property FlexIO inherits (paper Section II.B): application
code is written once against this API, and the *method* bound to a group
in the XML config decides whether data lands in a BP file (file mode) or
streams memory-to-memory to online analytics (stream mode, registered by
:mod:`repro.core.stream` under the name ``FLEXPATH``).  Read code is
likewise mode-agnostic: stream readers see ``EndOfStream`` when the writer
closes, file readers when steps run out.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.adios.bp import BpReader, BpWriter
from repro.adios.config import AdiosConfig, MethodSpec
from repro.adios.model import Group
from repro.adios.selection import BoundingBox, Selection, resolve_selection


class AdiosError(RuntimeError):
    """API misuse or method failure."""


class EndOfStream(Exception):
    """The writer closed the stream / no steps remain."""


class StreamFailure(EndOfStream):
    """The stream ended abnormally (writer died, lease expired).

    Still an :class:`EndOfStream` — the stream *is* over — but carries
    the failure reason, and ``begin_step`` reports it as
    :attr:`StepStatus.OtherError` rather than a clean end.
    """


class StepNotReady(Exception):
    """The next step has not been published yet (transient)."""


class StepLost(AdiosError):
    """A step's payload was lost or aborted in movement.

    Raised by reads/advance addressing a step the writer published but
    the data plane could not deliver (retries exhausted, or its
    transaction aborted).  ``begin_step`` maps it to
    :attr:`StepStatus.OtherError` and skips past the lost step, so
    readers see a typed gap — never torn data, never a silent drop.
    """


class VariableNotFound(AdiosError, KeyError):
    """A read named a variable absent from the current step.

    Raised identically by the BP-file and Flexpath methods.  Inherits
    :class:`KeyError` so pre-existing ``except KeyError`` callers keep
    working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return RuntimeError.__str__(self)


class StepStatus(Enum):
    """Result of ``begin_step`` — mirrors ADIOS2's ``adios2::StepStatus``."""

    OK = "ok"
    NotReady = "not_ready"
    EndOfStream = "end_of_stream"
    OtherError = "other_error"


@dataclass(frozen=True)
class RankContext:
    """The caller's identity within its parallel program."""

    rank: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0 or not (0 <= self.rank < self.size):
            raise ValueError(f"invalid rank {self.rank} of {self.size}")


class WriteHandle(abc.ABC):
    """Per-rank write side of one opened file/stream.

    The step-oriented API is ``begin_step() … write() … end_step()``.
    (The pre-redesign ``advance()`` alias is gone; methods implement the
    private :meth:`_advance` step seal instead — FlexLint FXL008 flags
    any caller still spelling the legacy name.)
    """

    _step_open = False

    @abc.abstractmethod
    def write(
        self,
        name: str,
        data: np.ndarray,
        box: Optional[BoundingBox] = None,
        global_shape: Optional[Sequence[int]] = None,
    ) -> None: ...

    @abc.abstractmethod
    def _advance(self) -> None:
        """Seal this rank's current output step (method-internal)."""

    def begin_step(self) -> StepStatus:
        """Open a new output step (ADIOS2-style)."""
        if self._step_open:
            raise AdiosError("begin_step while a step is open; call end_step first")
        self._step_open = True
        return StepStatus.OK

    def end_step(self, **kwargs: Any) -> StepStatus:
        """Seal the current output step."""
        self._step_open = False
        self._advance(**kwargs)
        return StepStatus.OK

    @abc.abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "WriteHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def resolve_read_args(
    selection: Optional[Any],
    start: Optional[Sequence[int]],
    count: Optional[Sequence[int]],
) -> tuple[Optional[Any], Optional[Sequence[int]]]:
    """Normalize the keyword-only read arguments.

    Exactly one addressing style per call: either ``selection=`` (a
    :class:`~repro.adios.selection.Selection` /
    :class:`~repro.adios.selection.BoundingBox`) or ``start=``/``count=``
    index tuples.  Returns the ``(start_or_selection, count)`` pair that
    :func:`~repro.adios.selection.resolve_selection` consumes.
    """
    if selection is not None:
        if start is not None or count is not None:
            raise AdiosError(
                "pass either selection= or start=/count=, not both"
            )
        return selection, None
    if isinstance(start, (Selection, BoundingBox)):
        raise AdiosError(
            "selection objects go through the selection= keyword "
            "(start= takes an index tuple)"
        )
    return start, count


class ReadHandle(abc.ABC):
    """Per-rank read side of one opened file/stream.

    The step-oriented API is ``begin_step() → StepStatus`` followed by
    reads and ``end_step()``; ``begin_step`` returns
    :attr:`StepStatus.NotReady` instead of raising when the writer has
    not yet published the next step.  Reads address data with the
    keyword-only ``start=``/``count=`` tuples or ``selection=``.  (The
    pre-redesign ``advance()`` alias is gone; methods implement the
    private :meth:`_advance` instead.)
    """

    _step_active = False
    _step_consumed = False

    @abc.abstractmethod
    def available_vars(self) -> list[str]: ...

    @abc.abstractmethod
    def read(
        self,
        name: str,
        *,
        start: Optional[Sequence[int]] = None,
        count: Optional[Sequence[int]] = None,
        selection: Optional[Any] = None,
    ) -> np.ndarray:
        """Global-array read at the current step.

        Addressing is keyword-only: ``start=``/``count=`` index tuples,
        or ``selection=`` with a
        :class:`~repro.adios.selection.Selection` /
        :class:`~repro.adios.selection.BoundingBox`.
        """

    def read_into(
        self,
        name: str,
        out: np.ndarray,
        *,
        start: Optional[Sequence[int]] = None,
        count: Optional[Sequence[int]] = None,
        selection: Optional[Any] = None,
    ) -> np.ndarray:
        """Read into a caller-provided array (same addressing as
        :meth:`read`).  Default implementation copies through
        :meth:`read`; stream methods override it with the zero-copy
        scatter path."""
        data = self.read(name, start=start, count=count, selection=selection)
        if out.shape != data.shape:
            raise AdiosError(
                f"read_into({name!r}): out shape {out.shape} != {data.shape}"
            )
        out[...] = data
        return out

    @abc.abstractmethod
    def read_block(self, name: str, writer_rank: int) -> np.ndarray:
        """Process-group-oriented read of one writer's block."""

    @abc.abstractmethod
    def _advance(self) -> None:
        """Move to the next step; raises :class:`EndOfStream` when done
        (method-internal — callers drive :meth:`begin_step`)."""

    def _probe_step(self) -> None:
        """Verify the handle's *current* step is consumable.

        Stream methods override this to raise :class:`StepNotReady` /
        :class:`EndOfStream`; file methods are always ready.
        """

    def begin_step(self, timeout: Optional[float] = None) -> StepStatus:
        """Position on the next unconsumed step (ADIOS2-style).

        Non-blocking by default: returns :attr:`StepStatus.NotReady`
        when the writer is behind.  With ``timeout`` (seconds), polls
        until ready or the deadline passes.
        """
        if self._step_active:
            raise AdiosError("begin_step while a step is active; call end_step first")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if self._step_consumed:
                    self._advance()
                else:
                    self._probe_step()
            except StepLost:
                # The step is permanently gone: report the typed gap and
                # consume it, so the next begin_step moves past it.
                self._step_consumed = True
                return StepStatus.OtherError
            except StreamFailure:
                return StepStatus.OtherError
            except EndOfStream:
                return StepStatus.EndOfStream
            except StepNotReady:
                if deadline is not None and time.monotonic() < deadline:
                    time.sleep(0.0005)
                    continue
                return StepStatus.NotReady
            self._step_active = True
            self._step_consumed = True
            return StepStatus.OK

    def end_step(self) -> StepStatus:
        """Release the current step."""
        if not self._step_active:
            raise AdiosError("end_step without begin_step")
        self._step_active = False
        return StepStatus.OK

    @abc.abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "ReadHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class IoMethod(abc.ABC):
    """One transport/format implementation (BP file, FLEXPATH stream, ...)."""

    @abc.abstractmethod
    def open_write(
        self, name: str, group: Group, ctx: RankContext, spec: MethodSpec
    ) -> WriteHandle: ...

    @abc.abstractmethod
    def open_read(
        self, name: str, group: Group, ctx: RankContext, spec: MethodSpec
    ) -> ReadHandle: ...


_METHODS: dict[str, Callable[[], IoMethod]] = {}


def register_method(name: str, factory: Callable[[], IoMethod]) -> None:
    """Register an I/O method under its config-file name."""
    _METHODS[name.upper()] = factory


def _resolve_method(name: str) -> IoMethod:
    factory = _METHODS.get(name.upper())
    if factory is None:
        raise AdiosError(
            f"unknown I/O method {name!r}; registered: {sorted(_METHODS)}"
        )
    return factory()


# ---------------------------------------------------------------------------
# BP file method
# ---------------------------------------------------------------------------

class _SharedBpState:
    """All ranks of one program share one BP-lite writer per path."""

    def __init__(self, path: str) -> None:
        self.writer = BpWriter(path)
        self.writer.begin_step()
        self.open_ranks: set[int] = set()
        self.advanced: set[int] = set()
        self.closed_ranks: set[int] = set()


class _BpWriteHandle(WriteHandle):
    def __init__(self, state: _SharedBpState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._closed = False
        state.open_ranks.add(ctx.rank)

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise AdiosError("write after close")
        self._state.writer.write(self._ctx.rank, name, data, box, global_shape)

    def _advance(self):
        if self._closed:
            raise AdiosError("end_step after close")
        st = self._state
        st.advanced.add(self._ctx.rank)
        # Step boundary once every open rank has advanced (implicit barrier).
        if st.advanced >= (st.open_ranks - st.closed_ranks):
            st.writer.end_step()
            st.writer.begin_step()
            st.advanced.clear()

    def close(self):
        if self._closed:
            return
        self._closed = True
        st = self._state
        st.closed_ranks.add(self._ctx.rank)
        st.advanced.discard(self._ctx.rank)
        if st.closed_ranks >= st.open_ranks:
            st.writer.close()


class _BpReadHandle(ReadHandle):
    def __init__(self, path: str, ctx: RankContext) -> None:
        self._reader = BpReader(path)
        self._ctx = ctx
        self._step = 0
        if self._reader.num_steps == 0:
            raise EndOfStream(path)

    @property
    def current_step(self) -> int:
        return self._step

    def available_vars(self):
        return self._reader.var_names()

    def read(self, name, *, start=None, count=None, selection=None):
        start, count = resolve_read_args(selection, start, count)
        if isinstance(start, (Selection, BoundingBox)):
            try:
                meta = self._reader.var_meta(name)
            except KeyError as exc:
                raise VariableNotFound(str(exc)) from None
            if meta.global_shape is None:
                raise AdiosError(
                    f"variable {name!r} is not a global array; use read_block()"
                )
            box = resolve_selection(start, count, meta.global_shape)
            start, count = box.start, box.count
        try:
            # flexlint: ok(FXL008) BpReader.read is the step-indexed file API, not the step-API read
            return self._reader.read(name, self._step, start, count)
        except KeyError as exc:
            raise VariableNotFound(str(exc)) from None

    def read_block(self, name, writer_rank):
        try:
            return self._reader.read_block(name, self._step, writer_rank)
        except KeyError as exc:
            raise VariableNotFound(str(exc)) from None

    def _advance(self):
        # BP files may end with an empty trailing step (writer protocol
        # always keeps one step open); treat step exhaustion as EOS.
        nxt = self._step + 1
        if nxt >= self._reader.num_steps or not any(
            e.step == nxt for e in self._reader.entries
        ):
            raise EndOfStream(f"{self._reader.path} after step {self._step}")
        self._step = nxt

    def close(self):
        self._reader.close()


class BpFileMethod(IoMethod):
    """ADIOS file mode: variables land in an indexed BP-lite file."""

    _shared: dict[str, _SharedBpState] = {}

    def open_write(self, name, group, ctx, spec):
        state = self._shared.get(name)
        if state is None or state.writer._closed:
            state = _SharedBpState(name)
            self._shared[name] = state
        return _BpWriteHandle(state, ctx)

    def open_read(self, name, group, ctx, spec):
        return _BpReadHandle(name, ctx)


register_method("BP", BpFileMethod)
register_method("POSIX", BpFileMethod)
register_method("MPI", BpFileMethod)  # paper: MPI-IO/HDF5/NetCDF methods all
register_method("HDF5", BpFileMethod)  # funnel into the same file substrate
register_method("NETCDF", BpFileMethod)


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

class Adios:
    """Entry point bound to one configuration document."""

    def __init__(self, config: AdiosConfig) -> None:
        self.config = config

    @classmethod
    def from_xml(cls, text: str) -> "Adios":
        return cls(AdiosConfig.from_xml(text))

    def open_write(self, group_name: str, name: str, ctx: RankContext) -> WriteHandle:
        """Open ``name`` (a path in file mode, a stream name otherwise)."""
        group = self.config.group(group_name)
        spec = self.config.method_for(group_name)
        return _resolve_method(spec.method).open_write(name, group, ctx, spec)

    def open_read(self, group_name: str, name: str, ctx: RankContext) -> ReadHandle:
        group = self.config.group(group_name)
        spec = self.config.method_for(group_name)
        return _resolve_method(spec.method).open_read(name, group, ctx, spec)
