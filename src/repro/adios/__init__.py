"""ADIOS-like parallel I/O substrate (paper reference [28]).

FlexIO extends ADIOS: simulations and analytics exchange data through the
ADIOS read/write API, the data model is time-indexed groups of scalar and
array variables, and I/O *methods* (file formats, staging transports) are
selected through an external XML configuration file without touching
application code.

This package supplies the substrate FlexIO inherits:

* :mod:`repro.adios.selection` — bounding boxes and block-decomposition
  math (shared with the MxN redistribution engine);
* :mod:`repro.adios.model` — groups, variables, per-rank process groups;
* :mod:`repro.adios.bp` — "BP-lite": a real indexed binary file format
  with per-block offsets and min/max statistics, written and read back
  from disk;
* :mod:`repro.adios.config` — the XML configuration file (group → method
  mapping plus transport hint parameters);
* :mod:`repro.adios.api` — the open/write/advance/close API with a method
  registry that FlexIO's stream transport plugs into.
"""

from repro.adios.selection import (
    BoundingBox,
    BoxSelection,
    FullSelection,
    Selection,
    block_decompose,
    intersect,
)
from repro.adios.model import Group, ProcessGroupData, VarDecl, VarMeta
from repro.adios.bp import BpReader, BpWriter, BpFormatError
from repro.adios.config import AdiosConfig, ConfigError, MethodSpec
from repro.adios.aggregate import AggregatedBpMethod
from repro.adios.query import And, Or, Predicate, QueryError, QueryResult, Range, run_query
from repro.adios.api import (
    Adios,
    AdiosError,
    EndOfStream,
    IoMethod,
    RankContext,
    ReadHandle,
    StepLost,
    StepNotReady,
    StepStatus,
    StreamFailure,
    VariableNotFound,
    WriteHandle,
    register_method,
)

__all__ = [
    "Adios",
    "AggregatedBpMethod",
    "And",
    "Or",
    "Predicate",
    "QueryError",
    "QueryResult",
    "Range",
    "run_query",
    "AdiosConfig",
    "AdiosError",
    "BoundingBox",
    "BoxSelection",
    "FullSelection",
    "Selection",
    "StepLost",
    "StepNotReady",
    "StepStatus",
    "StreamFailure",
    "VariableNotFound",
    "BpFormatError",
    "BpReader",
    "BpWriter",
    "ConfigError",
    "EndOfStream",
    "ReadHandle",
    "WriteHandle",
    "Group",
    "IoMethod",
    "MethodSpec",
    "ProcessGroupData",
    "RankContext",
    "VarDecl",
    "VarMeta",
    "block_decompose",
    "intersect",
    "register_method",
]
