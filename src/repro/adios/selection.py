"""Bounding boxes and block decompositions of global arrays.

The global-array exchange pattern (paper Figure 3) moves an N-dimensional
array distributed over M writer processes to N reader processes with a
possibly different distribution.  Everything reduces to box algebra:
which part of writer *i*'s block overlaps reader *j*'s requested block,
and where that overlap sits in each side's local buffer.  The BP-lite
reader uses the same algebra to assemble selections from on-disk blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box: ``start`` (inclusive) and ``count`` per dimension."""

    start: tuple[int, ...]
    count: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.start) != len(self.count):
            raise ValueError(
                f"start has {len(self.start)} dims but count has {len(self.count)}"
            )
        if any(s < 0 for s in self.start):
            raise ValueError(f"negative start in {self.start}")
        if any(c < 0 for c in self.count):
            raise ValueError(f"negative count in {self.count}")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.start)

    @property
    def end(self) -> tuple[int, ...]:
        """Exclusive upper corner."""
        return tuple(s + c for s, c in zip(self.start, self.count))

    @property
    def size(self) -> int:
        """Number of elements."""
        out = 1
        for c in self.count:
            out *= c
        return out

    @property
    def is_empty(self) -> bool:
        return any(c == 0 for c in self.count)

    def contains(self, other: "BoundingBox") -> bool:
        return all(
            so >= ss and so + co <= ss + cs
            for ss, cs, so, co in zip(self.start, self.count, other.start, other.count)
        )

    def slices(self, relative_to: Optional["BoundingBox"] = None) -> tuple[slice, ...]:
        """Numpy slices selecting this box, optionally within another box.

        ``relative_to`` translates global coordinates into a containing
        block's local coordinates (e.g. a writer's local buffer).
        """
        if relative_to is None:
            origin = (0,) * self.ndim
        else:
            if relative_to.ndim != self.ndim:
                raise ValueError("dimensionality mismatch")
            if not relative_to.contains(self):
                raise ValueError(f"{self} not contained in {relative_to}")
            origin = relative_to.start
        return tuple(
            slice(s - o, s - o + c) for s, c, o in zip(self.start, self.count, origin)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Box(start={self.start}, count={self.count})"


class Selection:
    """Abstract read selection, resolved against a variable's global shape.

    Mirrors ADIOS2's ``SetSelection`` family: callers can hand a
    ``Selection`` object to ``ReadHandle.read`` instead of raw
    ``start``/``count`` tuples.
    """

    def resolve(self, global_shape: Sequence[int]) -> BoundingBox:
        raise NotImplementedError


@dataclass(frozen=True)
class BoxSelection(Selection):
    """An explicit hyperslab: ``start`` (inclusive) + ``count`` per dim."""

    start: tuple[int, ...]
    count: tuple[int, ...]

    def resolve(self, global_shape: Sequence[int]) -> BoundingBox:
        box = BoundingBox(tuple(self.start), tuple(self.count))
        if box.ndim != len(global_shape):
            raise ValueError(
                f"{box.ndim}-d selection against {len(global_shape)}-d variable"
            )
        return box


@dataclass(frozen=True)
class FullSelection(Selection):
    """The entire global array."""

    def resolve(self, global_shape: Sequence[int]) -> BoundingBox:
        return BoundingBox((0,) * len(global_shape), tuple(global_shape))


def resolve_selection(
    start, count, global_shape: Sequence[int]
) -> BoundingBox:
    """Normalize the (start, count) arguments of ``ReadHandle.read``.

    Accepts a :class:`Selection` or :class:`BoundingBox` passed as
    ``start`` (with ``count=None``), raw per-dimension tuples, or
    ``(None, None)`` meaning the full array — the seed behaviour.
    """
    if isinstance(start, Selection):
        if count is not None:
            raise ValueError("count must be None when passing a Selection")
        return start.resolve(global_shape)
    if isinstance(start, BoundingBox):
        if count is not None:
            raise ValueError("count must be None when passing a BoundingBox")
        if start.ndim != len(global_shape):
            raise ValueError(
                f"{start.ndim}-d box against {len(global_shape)}-d variable"
            )
        return start
    if start is None or count is None:
        return BoundingBox((0,) * len(global_shape), tuple(global_shape))
    return BoundingBox(tuple(start), tuple(count))


def intersect(a: BoundingBox, b: BoundingBox) -> Optional[BoundingBox]:
    """Overlap of two boxes, or None when they are disjoint."""
    if a.ndim != b.ndim:
        raise ValueError(f"cannot intersect {a.ndim}-d with {b.ndim}-d boxes")
    start = tuple(max(sa, sb) for sa, sb in zip(a.start, b.start))
    end = tuple(min(ea, eb) for ea, eb in zip(a.end, b.end))
    if any(e <= s for s, e in zip(start, end)):
        return None
    return BoundingBox(start, tuple(e - s for s, e in zip(start, end)))


def block_decompose(
    global_shape: Sequence[int], grid: Sequence[int]
) -> list[BoundingBox]:
    """Split a global array into a Cartesian grid of near-equal blocks.

    ``grid`` gives the number of blocks per dimension; remainders spread
    over the leading blocks (the usual HPC block decomposition).  Blocks
    are returned in row-major rank order — block ``k`` belongs to rank
    ``k`` of a grid-decomposed parallel program.
    """
    if len(global_shape) != len(grid):
        raise ValueError("grid must have one entry per dimension")
    if any(g <= 0 for g in grid):
        raise ValueError(f"grid factors must be positive, got {grid}")
    if any(n < 0 for n in global_shape):
        raise ValueError(f"negative global shape {global_shape}")
    per_dim: list[list[tuple[int, int]]] = []
    for n, g in zip(global_shape, grid):
        base, rem = divmod(n, g)
        spans = []
        offset = 0
        for i in range(g):
            size = base + (1 if i < rem else 0)
            spans.append((offset, size))
            offset += size
        per_dim.append(spans)

    boxes: list[BoundingBox] = []
    idx = [0] * len(grid)
    total = 1
    for g in grid:
        total *= g
    for _ in range(total):
        start = tuple(per_dim[d][idx[d]][0] for d in range(len(grid)))
        count = tuple(per_dim[d][idx[d]][1] for d in range(len(grid)))
        boxes.append(BoundingBox(start, count))
        # Row-major increment.
        for d in reversed(range(len(grid))):
            idx[d] += 1
            if idx[d] < grid[d]:
                break
            idx[d] = 0
    return boxes


def choose_grid(num_blocks: int, ndim: int) -> tuple[int, ...]:
    """A near-cubic factorization of ``num_blocks`` into ``ndim`` factors.

    Used when a reader asks for "split this array over my N processes"
    without specifying a grid.
    """
    if num_blocks <= 0 or ndim <= 0:
        raise ValueError("num_blocks and ndim must be positive")
    factors = [1] * ndim
    remaining = num_blocks
    # Peel prime factors largest-first onto the currently smallest axis.
    primes = []
    n = remaining
    p = 2
    while p * p <= n:
        while n % p == 0:
            primes.append(p)
            n //= p
        p += 1
    if n > 1:
        primes.append(n)
    for prime in sorted(primes, reverse=True):
        smallest = factors.index(min(factors))
        factors[smallest] *= prime
    return tuple(sorted(factors, reverse=True))


def assemble(
    target: BoundingBox,
    blocks: Iterator[tuple[BoundingBox, np.ndarray]],
    dtype=np.float64,
    fill=0,
) -> np.ndarray:
    """Gather the parts of ``blocks`` overlapping ``target`` into one array.

    Each block is ``(box, data)`` with ``data.shape == box.count``.  The
    result has shape ``target.count``; uncovered cells keep ``fill``.
    """
    out = np.full(target.count, fill, dtype=dtype)
    for box, data in blocks:
        if tuple(data.shape) != tuple(box.count):
            raise ValueError(
                f"block data shape {data.shape} != box count {box.count}"
            )
        ov = intersect(target, box)
        if ov is None:
            continue
        out[ov.slices(relative_to=target)] = data[ov.slices(relative_to=box)]
    return out
