"""Index-assisted queries over BP-lite files.

The GTS analysis chain runs range queries over particle attributes; run
offline, such queries benefit from the BP index's per-block min/max
characteristics: blocks whose range cannot intersect the predicate are
*pruned* without touching their data (the approach of ADIOS's query
interface and FastBit-style indexes).

Predicates compose::

    q = (Range("energy", 1.0, 2.5) & Range("weight", 0.5, None)) | Range("flag", 1, 1)
    result = run_query(reader, q, step=0)

All variables referenced by one query must be written block-aligned
(same ranks, same shapes) — true of ADIOS process groups by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.adios.bp import BpReader, IndexEntry


class QueryError(RuntimeError):
    """Ill-formed query or misaligned variables."""


class Predicate:
    """Base: supports ``&`` and ``|`` composition."""

    def variables(self) -> set[str]:
        raise NotImplementedError

    def might_match(self, stats: dict[str, tuple[float, float]]) -> bool:
        """Can any point in a block with these per-var (min, max) match?"""
        raise NotImplementedError

    def mask(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Exact elementwise evaluation over block data."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


@dataclass(frozen=True)
class Range(Predicate):
    """``lo <= var <= hi`` (either bound may be None for open ranges)."""

    var: str
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise QueryError(f"Range on {self.var!r} needs at least one bound")
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise QueryError(f"empty range [{self.lo}, {self.hi}]")

    def variables(self) -> set[str]:
        return {self.var}

    def might_match(self, stats) -> bool:
        vmin, vmax = stats[self.var]
        if self.lo is not None and vmax < self.lo:
            return False
        if self.hi is not None and vmin > self.hi:
            return False
        return True

    def mask(self, data) -> np.ndarray:
        v = data[self.var]
        out = np.ones(v.shape, dtype=bool)
        if self.lo is not None:
            out &= v >= self.lo
        if self.hi is not None:
            out &= v <= self.hi
        return out


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def variables(self):
        return self.left.variables() | self.right.variables()

    def might_match(self, stats) -> bool:
        return self.left.might_match(stats) and self.right.might_match(stats)

    def mask(self, data) -> np.ndarray:
        return self.left.mask(data) & self.right.mask(data)


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def variables(self):
        return self.left.variables() | self.right.variables()

    def might_match(self, stats) -> bool:
        return self.left.might_match(stats) or self.right.might_match(stats)

    def mask(self, data) -> np.ndarray:
        return self.left.mask(data) | self.right.mask(data)


@dataclass
class QueryResult:
    """Outcome of one query evaluation."""

    #: Blocks the index pruned without reading data.
    blocks_pruned: int
    #: Blocks whose data was read and scanned.
    blocks_scanned: int
    #: Selected values per variable, concatenated over blocks.
    values: dict[str, np.ndarray]
    #: Global coordinates (for boxed blocks) or (rank, local-index) pairs.
    coordinates: np.ndarray

    @property
    def count(self) -> int:
        return int(self.coordinates.shape[0])

    @property
    def pruning_ratio(self) -> float:
        total = self.blocks_pruned + self.blocks_scanned
        return self.blocks_pruned / total if total else 0.0


def _aligned_entries(
    reader: BpReader, variables: Sequence[str], step: int
) -> list[dict[str, IndexEntry]]:
    """Per-rank entry groups for all the query's variables."""
    by_rank: dict[int, dict[str, IndexEntry]] = {}
    for var in variables:
        for entry in reader.blocks(var, step):
            by_rank.setdefault(entry.rank, {})[var] = entry
    groups = []
    for rank, entries in sorted(by_rank.items()):
        missing = set(variables) - set(entries)
        if missing:
            raise QueryError(
                f"rank {rank} wrote {sorted(entries)} but not {sorted(missing)}"
            )
        shapes = {entries[v].shape for v in variables}
        if len(shapes) > 1:
            raise QueryError(f"rank {rank}: query variables have shapes {shapes}")
        groups.append(entries)
    if not groups:
        raise QueryError(f"no data for {sorted(variables)} at step {step}")
    return groups


def run_query(reader: BpReader, predicate: Predicate, step: int = 0) -> QueryResult:
    """Evaluate a predicate over one step, pruning blocks by the index."""
    variables = sorted(predicate.variables())
    groups = _aligned_entries(reader, variables, step)
    pruned = scanned = 0
    values: dict[str, list[np.ndarray]] = {v: [] for v in variables}
    coords: list[np.ndarray] = []
    for entries in groups:
        stats = {v: (entries[v].vmin, entries[v].vmax) for v in variables}
        if not predicate.might_match(stats):
            pruned += 1
            continue
        scanned += 1
        data = {v: reader._fetch(entries[v]) for v in variables}
        mask = predicate.mask(data)
        if not mask.any():
            continue
        idx = np.argwhere(mask)
        some = entries[variables[0]]
        if some.box is not None:
            idx = idx + np.asarray(some.box.start)
        else:
            rank_col = np.full((idx.shape[0], 1), some.rank)
            idx = np.hstack([rank_col, idx])
        coords.append(idx)
        for v in variables:
            values[v].append(data[v][mask])
    ncols = coords[0].shape[1] if coords else 0
    return QueryResult(
        blocks_pruned=pruned,
        blocks_scanned=scanned,
        values={
            v: (np.concatenate(parts) if parts else np.empty(0))
            for v, parts in values.items()
        },
        coordinates=(
            np.concatenate(coords) if coords else np.empty((0, ncols), dtype=int)
        ),
    )
