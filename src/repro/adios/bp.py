"""BP-lite: a real, indexed, self-describing binary file format.

ADIOS's BP format stores process-group records in write order with a
trailing index holding per-block offsets and *characteristics* (min/max),
so readers can locate and prune blocks without scanning data.  BP-lite
keeps that architecture:

::

    "BPLT" magic | version u32
    var record*          (one marshal message per written block)
    index                (u64 count + one marshal message per block)
    index_offset  u64
    "TLRB" trailer magic

Readers seek to the trailer, load the index, then fetch only the blocks a
selection touches — min/max statistics allow query-style pruning (used by
the range-query analytics).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.adios.model import VarMeta
from repro.adios.selection import BoundingBox, assemble, intersect
from repro.marshal import (
    Field,
    FieldKind,
    Format,
    FormatRegistry,
    decode_message,
    decode_stream,
    encode_message,
)

_MAGIC = b"BPLT"
_TRAILER = b"TLRB"
_VERSION = 1

_VAR_FMT = Format(
    "bplite.var",
    (
        Field("name", FieldKind.STRING),
        Field("step", FieldKind.INT64),
        Field("rank", FieldKind.INT64),
        Field("data", FieldKind.ARRAY),
        Field("has_box", FieldKind.BOOL),
        Field("box_start", FieldKind.LIST_INT64),
        Field("box_count", FieldKind.LIST_INT64),
        Field("has_global", FieldKind.BOOL),
        Field("global_shape", FieldKind.LIST_INT64),
    ),
)

_IDX_FMT = Format(
    "bplite.idxent",
    (
        Field("name", FieldKind.STRING),
        Field("step", FieldKind.INT64),
        Field("rank", FieldKind.INT64),
        Field("offset", FieldKind.INT64),
        Field("length", FieldKind.INT64),
        Field("dtype", FieldKind.STRING),
        Field("vmin", FieldKind.FLOAT64),
        Field("vmax", FieldKind.FLOAT64),
        Field("has_box", FieldKind.BOOL),
        Field("box_start", FieldKind.LIST_INT64),
        Field("box_count", FieldKind.LIST_INT64),
        Field("has_global", FieldKind.BOOL),
        Field("global_shape", FieldKind.LIST_INT64),
        Field("shape", FieldKind.LIST_INT64),
    ),
)


class BpFormatError(RuntimeError):
    """Corrupt or non-BP-lite file, or misuse of the writer protocol."""


@dataclass(frozen=True)
class IndexEntry:
    """One block's index record."""

    name: str
    step: int
    rank: int
    offset: int
    length: int
    dtype: str
    vmin: float
    vmax: float
    box: Optional[BoundingBox]
    global_shape: Optional[tuple[int, ...]]
    shape: tuple[int, ...]


class BpWriter:
    """Writes a BP-lite file; one writer serves all ranks of a run."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "wb")
        self._fh.write(_MAGIC)
        self._fh.write(struct.pack("<I", _VERSION))
        self._index: list[dict] = []
        self._step = 0
        self._step_open = False
        self._closed = False
        #: Bytes of variable payload written (monitoring).
        self.bytes_written = 0

    # ------------------------------------------------------------------
    @property
    def current_step(self) -> int:
        return self._step

    def begin_step(self) -> int:
        if self._closed:
            raise BpFormatError("writer is closed")
        if self._step_open:
            raise BpFormatError("previous step not ended")
        self._step_open = True
        return self._step

    def write(
        self,
        rank: int,
        name: str,
        data: np.ndarray,
        box: Optional[BoundingBox] = None,
        global_shape: Optional[Sequence[int]] = None,
    ) -> None:
        """Write one block from ``rank`` for the current step."""
        if not self._step_open:
            raise BpFormatError("write outside begin_step/end_step")
        arr = np.asarray(data)
        if box is not None and tuple(arr.shape) != tuple(box.count):
            raise ValueError(f"data shape {arr.shape} != box count {box.count}")
        record = {
            "name": name,
            "step": self._step,
            "rank": int(rank),
            "data": arr,
            "has_box": box is not None,
            "box_start": list(box.start) if box else [],
            "box_count": list(box.count) if box else [],
            "has_global": global_shape is not None,
            "global_shape": list(global_shape) if global_shape is not None else [],
        }
        offset = self._fh.tell()
        wire = encode_message(_VAR_FMT, record)
        self._fh.write(wire)
        self.bytes_written += arr.nbytes
        if arr.size:
            vmin, vmax = float(arr.min()), float(arr.max())
        else:
            vmin, vmax = float("inf"), float("-inf")
        self._index.append(
            {
                "name": name,
                "step": self._step,
                "rank": int(rank),
                "offset": offset,
                "length": len(wire),
                "dtype": arr.dtype.str,
                "vmin": vmin,
                "vmax": vmax,
                "has_box": box is not None,
                "box_start": list(box.start) if box else [],
                "box_count": list(box.count) if box else [],
                "has_global": global_shape is not None,
                "global_shape": list(global_shape) if global_shape is not None else [],
                "shape": list(arr.shape),
            }
        )

    def end_step(self) -> None:
        if not self._step_open:
            raise BpFormatError("end_step without begin_step")
        self._step_open = False
        self._step += 1

    def close(self) -> None:
        if self._closed:
            return
        if self._step_open:
            self.end_step()
        index_offset = self._fh.tell()
        self._fh.write(struct.pack("<Q", len(self._index)))
        for entry in self._index:
            self._fh.write(encode_message(_IDX_FMT, entry))
        self._fh.write(struct.pack("<Q", index_offset))
        self._fh.write(_TRAILER)
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "BpWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BpReader:
    """Reads a BP-lite file through its index."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        self._registry = FormatRegistry()
        self.entries: list[IndexEntry] = []
        self._load_index()
        #: Bytes of variable payload actually fetched (monitoring).
        self.bytes_read = 0

    def _load_index(self) -> None:
        fh = self._fh
        head = fh.read(8)
        if len(head) < 8 or head[:4] != _MAGIC:
            raise BpFormatError(f"{self.path}: not a BP-lite file")
        (version,) = struct.unpack("<I", head[4:8])
        if version != _VERSION:
            raise BpFormatError(f"unsupported BP-lite version {version}")
        fh.seek(0, os.SEEK_END)
        if fh.tell() < 20:
            raise BpFormatError(f"{self.path}: truncated file")
        fh.seek(-12, os.SEEK_END)
        tail = fh.read(12)
        if tail[8:] != _TRAILER:
            raise BpFormatError(f"{self.path}: missing trailer (truncated write?)")
        (index_offset,) = struct.unpack("<Q", tail[:8])
        fh.seek(index_offset)
        blob = fh.read()[:-12]  # index region, minus trailer
        (count,) = struct.unpack_from("<Q", blob, 0)
        pos = 8
        for _ in range(count):
            _, rec, consumed = decode_stream(blob[pos:], self._registry)
            pos += consumed
            box = (
                BoundingBox(tuple(rec["box_start"]), tuple(rec["box_count"]))
                if rec["has_box"]
                else None
            )
            self.entries.append(
                IndexEntry(
                    name=rec["name"],
                    step=rec["step"],
                    rank=rec["rank"],
                    offset=rec["offset"],
                    length=rec["length"],
                    dtype=rec["dtype"],
                    vmin=rec["vmin"],
                    vmax=rec["vmax"],
                    box=box,
                    global_shape=tuple(rec["global_shape"]) if rec["has_global"] else None,
                    shape=tuple(rec["shape"]),
                )
            )

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return 1 + max((e.step for e in self.entries), default=-1)

    def var_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.entries:
            seen.setdefault(e.name, None)
        return list(seen)

    def var_meta(self, name: str) -> VarMeta:
        matches = [e for e in self.entries if e.name == name]
        if not matches:
            raise KeyError(f"no variable {name!r} in {self.path}")
        gshape = next((e.global_shape for e in matches if e.global_shape), None)
        return VarMeta(
            name=name,
            dtype=matches[0].dtype,
            global_shape=gshape,
            steps=1 + max(e.step for e in matches),
            min_value=min(e.vmin for e in matches),
            max_value=max(e.vmax for e in matches),
        )

    def blocks(self, name: str, step: int) -> list[IndexEntry]:
        return [e for e in self.entries if e.name == name and e.step == step]

    # ------------------------------------------------------------------
    def _fetch(self, entry: IndexEntry) -> np.ndarray:
        self._fh.seek(entry.offset)
        wire = self._fh.read(entry.length)
        _, rec = decode_message(wire, self._registry)
        data = rec["data"]
        self.bytes_read += data.nbytes
        return data

    def read_block(self, name: str, step: int, rank: int) -> np.ndarray:
        """Process-group-oriented read: one writer rank's block."""
        for e in self.blocks(name, step):
            if e.rank == rank:
                return self._fetch(e)
        raise KeyError(f"no block for var {name!r} step {step} rank {rank}")

    def read(
        self,
        name: str,
        step: int,
        start: Optional[Sequence[int]] = None,
        count: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Global-array read: assemble a selection from on-disk blocks.

        With ``start``/``count`` omitted, the full global array is read.
        """
        blocks = self.blocks(name, step)
        if not blocks:
            raise KeyError(f"no variable {name!r} at step {step}")
        gshape = next((e.global_shape for e in blocks if e.global_shape), None)
        if gshape is None:
            raise BpFormatError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        if start is None or count is None:
            target = BoundingBox((0,) * len(gshape), tuple(gshape))
        else:
            target = BoundingBox(tuple(start), tuple(count))
        dtype = np.dtype(blocks[0].dtype)
        touched = (
            (e.box, self._fetch(e))
            for e in blocks
            if e.box is not None and intersect(target, e.box) is not None
        )
        return assemble(target, touched, dtype=dtype)

    def blocks_in_range(
        self, name: str, step: int, vmin: float, vmax: float
    ) -> list[IndexEntry]:
        """Index-level pruning: blocks whose [min,max] intersects [vmin,vmax]."""
        return [
            e
            for e in self.blocks(name, step)
            if not (e.vmax < vmin or e.vmin > vmax)
        ]

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "BpReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
