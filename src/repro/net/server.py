"""The directory daemon: FlexIO's control plane as a real socket server.

Two asyncio listeners share one event loop (run in a daemon thread via
:meth:`DirectoryDaemon.start`, or in the foreground via the
``python -m repro.net.server`` CLI):

* the **control port** speaks the :mod:`repro.net.protocol` frames for
  session setup (HELLO → WELCOME with a bearer-token check against the
  tenant table), directory traffic (REGISTER / LOOKUP / HEARTBEAT),
  and named-stream OPEN/CLOSE;
* the **data port** is a store-and-forward step broker: a writer's
  connection ATTACHes to an open stream and PUBLISHes steps, a
  reader's connection FETCHes them — so two unrelated OS processes
  exchange multi-step data without ever sharing memory.

Every hosted stream carries its own
:class:`~repro.core.monitoring.PerfMonitor` whose series are labeled
with the owning tenant, and the embedded
:class:`~repro.obs.live.LiveTelemetryServer` exposes them at
``/metrics`` next to per-stream health verdicts — admission-control
rejections (bad token, quota exceeded) are typed
:class:`~repro.core.directory.AdmissionError` values on the Python
side and ``ERROR`` frames with the taxonomy kind on the wire.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import os
import secrets
import signal
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.directory import (
    AdmissionError,
    CoordinatorInfo,
    DirectoryError,
    TenantDirectory,
    TenantSpec,
)
from repro.core.monitoring import PerfMonitor
from repro.core.plugins import CodeletError, combine_predicates, parse_predicate
from repro.net.protocol import (
    CKPT_HEAD,
    CKPT_REG,
    CKPT_SESSION,
    CKPT_STEP,
    CKPT_STREAM,
    CKPT_TENANT,
    CKPT_VERSION,
    Frame,
    MsgType,
    ProtocolError,
    decode_frame,
    decode_record,
    decode_var,
    encode_frame,
    encode_record,
)
from repro.obs import recorder as flight
from repro.obs.events import (
    EV_FAULT,
    EV_NET_CHECKPOINT,
    EV_NET_CONNECT,
    EV_NET_DISCONNECT,
    EV_NET_DRAIN,
    EV_NET_DUP_PUBLISH,
    EV_NET_RESTORE,
    EV_NET_RESUME,
    EV_NET_RETRY_AFTER,
    EV_NET_STEP_FETCH,
    EV_NET_STEP_PUBLISH,
    EV_NET_STREAM_OPEN,
)
from repro.obs.live import LiveTelemetryServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import (
    F_FAULTS_INJECTED,
    M_FAULTS_INJECTED_TOTAL,
    M_PLUGIN_BLOCKS_SKIPPED,
    metric_name,
)
from repro.transport.faults import (
    FaultKind,
    TransportFaultInjector,
    parse_fault_spec,
)

__all__ = ["HostedStream", "DirectoryDaemon", "parse_tenant_arg", "main"]

_PREFIX = struct.Struct("<Q")

#: Server banner sent in WELCOME frames.
SERVER_VERSION = "flexio-directoryd/3"

#: Bound on retained steps per hosted stream (oldest dropped first).
DEFAULT_RETAIN_STEPS = 64

#: Back-off the daemon suggests in RETRY_AFTER frames while draining.
DEFAULT_RETRY_AFTER_S = 0.25


class HostedStream:
    """One named stream brokered by the daemon.

    Duck-typed like an in-process stream state (``monitor``, ``closed``,
    ``error``, ``active_transport``) so the live-telemetry server and
    :class:`~repro.obs.health.HealthBoard` sample it unchanged; the
    ``tenant`` attribute labels every metric series.
    """

    def __init__(self, tenant: str, name: str, retain_steps: int = DEFAULT_RETAIN_STEPS) -> None:
        self.tenant = tenant
        self.name = name
        self.stream_id = f"{tenant}/{name}"
        self.monitor = PerfMonitor()
        self.closed = False
        self.error: Optional[str] = None
        self.active_transport = "tcp"
        self.retain_steps = int(retain_steps)
        #: step -> raw frame tail (the net.var run) + its var count.
        self._steps: dict[int, tuple[int, bytes]] = {}
        self.last_step = -1
        #: Highest publish sequence number applied; republished frames
        #: with seq <= last_seq are acknowledged but not re-stored, so a
        #: writer that resends after a lost OK never duplicates a step.
        self.last_seq = 0
        self.eos_step: Optional[int] = None  # first step index past the end
        self._labels = {"tenant": tenant}
        #: Attached-reader pushdown predicates, keyed per data connection
        #: (None = reader attached without one, which disables pruning).
        self._reader_preds: dict[int, object] = {}

    # ------------------------------------------------------------------
    def publish(self, step: int, count: int, payload: bytes, eos: bool,
                seq: int = 0) -> bool:
        """Store one step; returns False for a suppressed duplicate."""
        if seq > 0:
            if seq <= self.last_seq:
                self.monitor.metrics.counter(
                    "net.dup_publishes", labels=self._labels
                ).inc()
                flight.record(
                    EV_NET_DUP_PUBLISH, stream=self.stream_id, step=step, seq=seq
                )
                return False
            self.last_seq = seq
        self._steps[step] = (count, payload)
        self.last_step = max(self.last_step, step)
        if eos:
            self.eos_step = step + 1
        while len(self._steps) > self.retain_steps:
            del self._steps[min(self._steps)]
        m = self.monitor.metrics
        m.counter("net.steps_published", labels=self._labels).inc()
        m.counter("net.bytes_published", labels=self._labels).inc(len(payload))
        m.gauge("net.retained_steps", labels=self._labels).set(len(self._steps))
        flight.record(
            EV_NET_STEP_PUBLISH, stream=self.stream_id, step=step, nbytes=len(payload)
        )
        return True

    def fetch(self, step: int) -> Optional[tuple[int, bytes]]:
        got = self._steps.get(step)
        if got is not None:
            m = self.monitor.metrics
            m.counter("net.steps_fetched", labels=self._labels).inc()
            m.counter("net.bytes_fetched", labels=self._labels).inc(len(got[1]))
            flight.record(EV_NET_STEP_FETCH, stream=self.stream_id, step=step)
        return got

    def ended(self, step: int) -> bool:
        """True when ``step`` is past the writer's end of stream."""
        if self.error is not None:
            return True
        return self.eos_step is not None and step >= self.eos_step

    # -- reader predicate pushdown -------------------------------------
    def register_reader(self, key: int, predicate) -> None:
        """Track one attached reader's pushdown predicate (or None)."""
        self._reader_preds[key] = predicate

    def drop_reader(self, key: int) -> None:
        self._reader_preds.pop(key, None)

    def prune_predicate(self):
        """The combined block predicate the broker may prune against.

        None — i.e. never prune — unless at least one reader is attached
        and *every* attached reader registered a predicate: a block is a
        safe drop only when each consumer proves it empty.
        """
        if not self._reader_preds:
            return None
        preds = list(self._reader_preds.values())
        if any(p is None for p in preds):
            return None
        return combine_predicates(preds)

    def fail(self, reason: str) -> None:
        """Directory eviction callback: lease expired → typed stream end."""
        self.error = reason
        self.closed = True


def prune_step_payload(raw: np.ndarray, offset: int, count: int,
                       predicate, stream: HostedStream) -> tuple[int, bytes]:
    """Drop ``net.var`` spans the combined reader predicate proves empty.

    Walks the PUBLISH frame's var run by ``decode_var`` offsets and
    rebuilds the stored payload from the surviving spans — the payload
    is sliced, never re-encoded, so kept blocks stay byte-identical.  A
    span without writer-stamped stats is always kept.  Each dropped span
    counts toward the stream's ``plugin.blocks_skipped`` series.
    """
    kept: list[np.ndarray] = []
    skipped = 0
    start = offset
    for _ in range(count):
        rec, end = decode_var(raw, offset)
        if rec["has_stats"] and not predicate.might_match(
            rec["name"], float(rec["vmin"]), float(rec["vmax"])
        ):
            skipped += 1
        else:
            kept.append(raw[offset:end])
        offset = end
    if not skipped:
        return count, raw[start:].tobytes()  # flexlint: ok(FXL006) brokered steps outlive the receive buffer
    stream.monitor.metrics.counter(
        M_PLUGIN_BLOCKS_SKIPPED, labels=stream._labels
    ).inc(skipped)
    return count - skipped, b"".join(
        s.tobytes() for s in kept  # flexlint: ok(FXL006) store of store-and-forward
    )


@dataclass
class _Session:
    session_id: str
    tenant: str
    spec: TenantSpec
    client: str = ""
    #: Server-issued resume token: a reconnecting client presents it in
    #: HELLO to adopt this session instead of minting a fresh one.
    resume: str = ""
    streams: list[str] = field(default_factory=list)


class DirectoryDaemon:
    """The asyncio control+data daemon behind ``flexio://`` URIs.

    ``tenants`` seeds the tenant table; with none given a single open
    tenant ``"public"`` (no token, no quotas) is created so
    single-tenant deployments work out of the box.  ``clock`` threads
    through to every per-tenant :class:`DirectoryServer` so lease reap
    stays deterministic under test.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        control_port: int = 0,
        data_port: int = 0,
        tenants: Optional[list[TenantSpec]] = None,
        clock: Optional[Callable[[], float]] = None,
        lease_interval: float = 0.2,
        retain_steps: int = DEFAULT_RETAIN_STEPS,
        telemetry: bool = True,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: float = 0.0,
        checkpoint_sync: bool = False,
        injector: Optional[TransportFaultInjector] = None,
    ) -> None:
        self.host = host
        self.control_port = control_port  # 0 → ephemeral; fixed after start
        self.data_port = data_port
        self.metrics = MetricsRegistry()
        self.directory = TenantDirectory(clock=clock, metrics=self.metrics)
        for spec in tenants if tenants is not None else [TenantSpec("public")]:
            self.directory.add_tenant(spec)
        self.lease_interval = lease_interval
        self.retain_steps = retain_steps
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = float(checkpoint_interval)
        #: Synchronous durability: checkpoint before acking each PUBLISH,
        #: so an acked step survives even a hard daemon kill.
        self.checkpoint_sync = bool(checkpoint_sync)
        #: Frame-layer fault source for the daemon's *outbound* frames
        #: (replies, STEP_DATA) — the server half of the chaos taxonomy.
        self.injector = injector
        self._streams: dict[str, HostedStream] = {}
        self._sessions: dict[str, _Session] = {}
        self._resume: dict[str, str] = {}  # resume token -> session_id
        self._session_counter = itertools.count(1)
        self._draining = False
        self._attached: set[asyncio.StreamWriter] = set()
        self.telemetry: Optional[LiveTelemetryServer] = (
            LiveTelemetryServer(states=self._stream_states) if telemetry else None
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: list[asyncio.AbstractServer] = []
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        #: One-thread pool for checkpoint file I/O; lazily created so
        #: daemons that never checkpoint pay nothing.
        self._ckpt_executor: Optional[ThreadPoolExecutor] = None
        self._ckpt_tmp_seq = itertools.count()

    # -- telemetry plumbing ------------------------------------------------
    def _stream_states(self) -> dict[str, object]:
        states: dict[str, object] = dict(self._streams)
        states[""] = _DaemonState(self.metrics)  # process-level series
        return states

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "DirectoryDaemon":
        """Bind both listeners and serve from a daemon thread."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._serve_thread, name="flexio-directoryd", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(f"daemon failed to start: {self._startup_error!r}")
        if not self._ready.is_set():
            raise RuntimeError("daemon did not start within 10s")
        if self.telemetry is not None:
            self.telemetry.start()
        return self

    def _serve_thread(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._bind())
        # flexlint: ok(FXL001) any bind failure must unblock start(), whatever its type
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        tasks = [loop.create_task(self._reap_loop())]
        if self.checkpoint_path and self.checkpoint_interval > 0:
            tasks.append(loop.create_task(self._checkpoint_loop()))
        try:
            loop.run_forever()
        finally:
            for task in tasks:
                task.cancel()
            for server in self._servers:
                server.close()
                loop.run_until_complete(server.wait_closed())
            loop.close()

    async def _bind(self) -> None:
        control = await asyncio.start_server(
            self._handle_control, self.host, self.control_port
        )
        self.control_port = control.sockets[0].getsockname()[1]
        data = await asyncio.start_server(self._handle_data, self.host, self.data_port)
        self.data_port = data.sockets[0].getsockname()[1]
        self._servers = [control, data]

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.lease_interval)
            reaped = self.directory.reap_all()
            for tenant, names in reaped.items():
                for name in names:
                    self.metrics.counter(
                        "net.lease_evictions", labels={"tenant": tenant}
                    ).inc()

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            await self.checkpoint_async()

    def stop(self) -> None:
        if self.telemetry is not None:
            self.telemetry.stop()
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._loop = None
        self._servers = []
        self._thread = None
        self._ready.clear()
        if self._ckpt_executor is not None:
            self._ckpt_executor.shutdown(wait=True)
            self._ckpt_executor = None

    # -- frame I/O ---------------------------------------------------------
    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> Optional[np.ndarray]:
        try:
            prefix = await reader.readexactly(_PREFIX.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        (length,) = _PREFIX.unpack(prefix)
        try:
            body = await reader.readexactly(int(length))
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return np.frombuffer(body, dtype=np.uint8)

    async def _write_frame(self, writer: asyncio.StreamWriter, *parts) -> None:
        total = sum(p.nbytes if hasattr(p, "nbytes") else len(p) for p in parts)
        if self.injector is not None:
            kind = self.injector.next_fault()
            if kind is not None and await self._inject_outbound(writer, kind, total, parts):
                return
        writer.write(_PREFIX.pack(total))
        for part in parts:
            if hasattr(part, "as_array"):
                part = part.as_array()
            if isinstance(part, np.ndarray):
                part = part.data  # asyncio wants bytes-like; a view, no copy
            writer.write(part)
        await writer.drain()

    async def _inject_outbound(self, writer, kind: FaultKind, total: int,
                               parts) -> bool:
        """Act out one injected fault on an outbound frame.

        Returns True when the frame must NOT be written normally (it was
        dropped, torn, or the connection was killed); False for kinds
        that only perturb timing.
        """
        self.metrics.counter(metric_name(F_FAULTS_INJECTED, kind.value)).inc()
        self.metrics.counter(M_FAULTS_INJECTED_TOTAL).inc()
        flight.record(EV_FAULT, kind=kind.value, transport="daemon", nbytes=total)
        if kind is FaultKind.DROPPED_FRAME:
            return True  # the reply silently never leaves; peer times out
        if kind is FaultKind.DELAYED_FRAME:
            await asyncio.sleep(0.05)
            return False
        if kind is FaultKind.TORN_FRAME:
            blob = b"".join(
                bytes(p.as_array().data) if hasattr(p, "as_array")
                else (p.tobytes() if isinstance(p, np.ndarray) else bytes(p))
                for p in parts
            )
            writer.write(_PREFIX.pack(total) + blob[: max(1, total // 2)])
            writer.close()  # torn mid-frame: peer sees a truncated stream
            return True
        # CONN_RESET / HALF_OPEN and any send-side kind: kill the
        # connection; the peer observes a disconnect and reconnects.
        writer.close()
        return True

    async def _send_error(self, writer, kind: str, message: str) -> None:
        await self._write_frame(
            writer, encode_frame(MsgType.ERROR, {"kind": kind, "message": message})
        )

    async def _send_admission_error(self, writer, exc: AdmissionError) -> None:
        kind = exc.kind.value if exc.kind is not None else "admission"
        await self._send_error(writer, kind, str(exc))

    async def _send_retry_after(self, writer, reason: str,
                                delay: float = DEFAULT_RETRY_AFTER_S) -> None:
        flight.record(EV_NET_RETRY_AFTER, reason=reason, delay=delay)
        await self._write_frame(
            writer, encode_frame(MsgType.RETRY_AFTER, {"delay": delay, "reason": reason})
        )

    # -- control plane -----------------------------------------------------
    async def _handle_control(self, reader, writer) -> None:
        # A session is NOT bound to this socket: it dies only on a clean
        # BYE (or daemon restart without a checkpoint).  A socket that
        # drops mid-session leaves the session resumable via its token.
        session: Optional[_Session] = None
        clean_bye = False
        try:
            session = await self._control_hello(reader, writer)
            if session is None:
                return
            while True:
                raw = await self._read_frame(reader)
                if raw is None:
                    break
                try:
                    frame = decode_frame(raw)
                except ProtocolError as exc:
                    await self._send_error(writer, "protocol", str(exc))
                    break
                if frame.msg_type is MsgType.BYE:
                    clean_bye = True
                    break
                await self._dispatch_control(session, frame, writer)
        except ConnectionError:
            pass
        finally:
            if session is not None:
                if clean_bye:
                    self._sessions.pop(session.session_id, None)
                    self._resume.pop(session.resume, None)
                flight.record(EV_NET_DISCONNECT, tenant=session.tenant)
            writer.close()

    async def _control_hello(self, reader, writer) -> Optional[_Session]:
        raw = await self._read_frame(reader)
        if raw is None:
            return None
        try:
            frame = decode_frame(raw)
        except ProtocolError as exc:
            await self._send_error(writer, "protocol", str(exc))
            return None
        if frame.msg_type is not MsgType.HELLO:
            await self._send_error(writer, "protocol", "expected HELLO")
            return None
        if self._draining:
            await self._send_retry_after(writer, "draining")
            return None
        tenant = frame.record["tenant"]
        token = frame.record["token"] or None
        try:
            spec = self.directory.authenticate(tenant, token)
        except AdmissionError as exc:
            await self._send_admission_error(writer, exc)
            return None
        resume_token = frame.record["resume"]
        resumed = False
        session = None
        if resume_token:
            sid = self._resume.get(resume_token)
            if sid is not None:
                candidate = self._sessions.get(sid)
                if candidate is not None and candidate.tenant == tenant:
                    session = candidate
                    resumed = True
        if session is None:
            session = _Session(
                session_id=f"s{next(self._session_counter)}",
                tenant=tenant,
                spec=spec,
                client=frame.record["client"],
                resume=secrets.token_hex(8),
            )
            self._sessions[session.session_id] = session
            self._resume[session.resume] = session.session_id
            self.metrics.counter("net.sessions", labels={"tenant": tenant}).inc()
        else:
            self.metrics.counter("net.resumes", labels={"tenant": tenant}).inc()
            flight.record(
                EV_NET_RESUME, session=session.session_id, tenant=tenant
            )
        flight.record(EV_NET_CONNECT, tenant=tenant, client=session.client)
        await self._write_frame(writer, encode_frame(MsgType.WELCOME, {
            "session": session.session_id,
            "server": SERVER_VERSION,
            "data_port": self.data_port,
            "resume": session.resume,
            "resumed": resumed,
        }))
        return session

    async def _dispatch_control(self, session: _Session, frame: Frame, writer) -> None:
        rec = frame.record
        tenant = session.tenant
        if self._draining and frame.msg_type in (MsgType.OPEN, MsgType.REGISTER):
            # Drain refuses *new* work but still serves lookups, closes
            # and heartbeats so in-flight sessions can wind down.
            await self._send_retry_after(writer, "draining")
            return
        try:
            if frame.msg_type is MsgType.REGISTER:
                info = CoordinatorInfo(
                    program=rec["program"],
                    coordinator_rank=int(rec["rank"]),
                    num_ranks=int(rec["num_ranks"]),
                )
                lease = rec["lease"] if rec["lease"] > 0 else None
                self.directory.register(tenant, rec["stream"], info, lease=lease)
                await self._write_frame(
                    writer, encode_frame(MsgType.OK, {"detail": "registered"})
                )
            elif frame.msg_type is MsgType.LOOKUP:
                info = self.directory.lookup(tenant, rec["stream"])
                await self._write_frame(writer, encode_frame(MsgType.LOOKUP_REPLY, {
                    "program": info.program,
                    "rank": info.coordinator_rank,
                    "num_ranks": info.num_ranks,
                }))
            elif frame.msg_type is MsgType.HEARTBEAT:
                try:
                    self.directory.heartbeat(tenant, rec["stream"])
                    detail = "heartbeat"
                except DirectoryError:
                    # Tolerant: reader-side and already-closed streams
                    # heartbeat too (the client's background thread does
                    # not know which names hold leases).
                    detail = "idle"
                await self._write_frame(
                    writer, encode_frame(MsgType.OK, {"detail": detail})
                )
            elif frame.msg_type is MsgType.OPEN:
                await self._control_open(session, rec, writer)
            elif frame.msg_type is MsgType.CLOSE:
                stream = self._streams.get(rec["stream_id"])
                if stream is None:
                    await self._send_error(writer, "unknown_stream", rec["stream_id"])
                    return
                stream.eos_step = stream.last_step + 1
                stream.closed = True
                try:
                    self.directory.unregister(stream.tenant, stream.name)
                except DirectoryError:
                    pass  # already reaped or never leased-registered
                await self._write_frame(
                    writer, encode_frame(MsgType.OK, {"detail": "closed"})
                )
            else:
                await self._send_error(
                    writer, "protocol", f"unexpected {frame.msg_type.name} on control port"
                )
        except AdmissionError as exc:
            await self._send_admission_error(writer, exc)
        except DirectoryError as exc:
            await self._send_error(writer, "directory", str(exc))

    async def _control_open(self, session: _Session, rec: dict, writer) -> None:
        tenant = session.tenant
        name = rec["stream"]
        mode = rec["mode"]
        stream_id = f"{tenant}/{name}"
        if mode == "w":
            existing = self._streams.get(stream_id)
            if (existing is not None and not existing.closed
                    and stream_id in session.streams):
                # Idempotent re-OPEN: this session already owns the live
                # stream — a retried OPEN (lost reply) or a post-resume
                # re-attach must not hit the duplicate-registration check.
                pass
            else:
                info = CoordinatorInfo(
                    program=rec["program"],
                    coordinator_rank=int(rec["rank"]),
                    num_ranks=int(rec["num_ranks"]),
                )
                lease = rec["lease"] if rec["lease"] > 0 else None
                stream = HostedStream(tenant, name, retain_steps=self.retain_steps)
                info = CoordinatorInfo(
                    info.program, info.coordinator_rank, info.num_ranks, contact=stream
                )
                # Admission (quota + duplicate check) happens before the
                # stream becomes visible to readers.
                self.directory.register(tenant, name, info, lease=lease)
                self._streams[stream_id] = stream
                session.streams.append(stream_id)
        elif mode == "r":
            hosted = self._streams.get(stream_id)
            if hosted is None:
                # Raises the typed not-found the client retry loop expects.
                self.directory.lookup(tenant, name)
                await self._send_error(writer, "unknown_stream", stream_id)
                return
            if not hosted.closed:
                # Live stream: count the reader in the directory.  A
                # closed stream stays openable while steps are retained —
                # late analytics drain the store-and-forward tail to EOS.
                self.directory.lookup(tenant, name)
        else:
            await self._send_error(writer, "protocol", f"bad open mode {mode!r}")
            return
        flight.record(EV_NET_STREAM_OPEN, stream=stream_id, mode=mode, tenant=tenant)
        await self._write_frame(writer, encode_frame(MsgType.OPEN_REPLY, {
            "stream_id": stream_id,
            "data_port": self.data_port,
        }))

    # -- data plane --------------------------------------------------------
    async def _handle_data(self, reader, writer) -> None:
        try:
            raw = await self._read_frame(reader)
            if raw is None:
                return
            try:
                frame = decode_frame(raw)
            except ProtocolError as exc:
                await self._send_error(writer, "protocol", str(exc))
                return
            if frame.msg_type is not MsgType.ATTACH:
                await self._send_error(writer, "protocol", "expected ATTACH")
                return
            session = self._sessions.get(frame.record["session"])
            if session is None:
                await self._send_error(writer, "auth", "unknown session")
                return
            stream = self._streams.get(frame.record["stream_id"])
            if stream is None or stream.tenant != session.tenant:
                await self._send_error(
                    writer, "unknown_stream", frame.record["stream_id"]
                )
                return
            if self._draining:
                await self._send_retry_after(writer, "draining")
                return
            role = frame.record["role"]
            try:
                predicate = parse_predicate(frame.record["predicate"])
            except CodeletError as exc:
                await self._send_error(
                    writer, "protocol", f"bad predicate spec: {exc}"
                )
                return
            await self._write_frame(
                writer, encode_frame(MsgType.OK, {"detail": "attached"})
            )
            self._attached.add(writer)
            reader_key = id(writer)
            try:
                if role == "w":
                    await self._serve_writer(session, stream, reader, writer)
                else:
                    stream.register_reader(reader_key, predicate)
                    await self._serve_reader(stream, reader, writer)
            finally:
                if role != "w":
                    stream.drop_reader(reader_key)
                self._attached.discard(writer)
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _serve_writer(self, session: _Session, stream: HostedStream,
                            reader, writer) -> None:
        while True:
            raw = await self._read_frame(reader)
            if raw is None:
                return
            try:
                frame = decode_frame(raw)
            except ProtocolError as exc:
                await self._send_error(writer, "protocol", str(exc))
                return
            if frame.msg_type is not MsgType.PUBLISH:
                await self._send_error(writer, "protocol", "writer must PUBLISH")
                return
            if self._draining:
                await self._send_retry_after(writer, "draining")
                continue
            try:
                self.directory.charge_bytes(session.tenant, raw.nbytes)
            except AdmissionError as exc:
                await self._send_admission_error(writer, exc)
                continue
            count = int(frame.record["count"])
            predicate = stream.prune_predicate()
            if predicate is not None and count:
                try:
                    count, payload = prune_step_payload(
                        raw, frame.consumed, count, predicate, stream
                    )
                except ProtocolError:
                    # Malformed var run: store verbatim; the reader's
                    # decode surfaces the real error.
                    count = int(frame.record["count"])
                    payload = raw[frame.consumed:].tobytes()  # flexlint: ok(FXL006) brokered steps outlive the receive buffer
            else:
                payload = raw[frame.consumed:].tobytes()  # flexlint: ok(FXL006) brokered steps outlive the receive buffer; this is the store of store-and-forward
            stored = stream.publish(
                int(frame.record["step"]), count,
                payload, bool(frame.record["eos"]),
                seq=int(frame.record["seq"]),
            )
            try:  # publishing is the writer's liveness signal
                self.directory.heartbeat(session.tenant, stream.name)
            except DirectoryError:
                pass  # unleased or already closed registration
            if stored and self.checkpoint_sync and self.checkpoint_path:
                # Durability before acknowledgement: once the writer sees
                # OK, the step survives even a hard daemon kill.  Async so
                # the fsync+rename doesn't stall other sessions' frames.
                await self.checkpoint_async()
            await self._write_frame(
                writer, encode_frame(
                    MsgType.OK, {"detail": "published" if stored else "duplicate"}
                )
            )

    async def _serve_reader(self, stream: HostedStream, reader, writer) -> None:
        while True:
            raw = await self._read_frame(reader)
            if raw is None:
                return
            try:
                frame = decode_frame(raw)
            except ProtocolError as exc:
                await self._send_error(writer, "protocol", str(exc))
                return
            if frame.msg_type is not MsgType.FETCH:
                await self._send_error(writer, "protocol", "reader must FETCH")
                return
            step = int(frame.record["step"])
            got = stream.fetch(step)
            if got is not None:
                count, payload = got
                await self._write_frame(
                    writer,
                    encode_frame(MsgType.STEP_DATA, {"step": step, "count": count}),
                    np.frombuffer(payload, dtype=np.uint8),
                )
            elif stream.ended(step):
                await self._write_frame(
                    writer, encode_frame(MsgType.EOS, {"step": step})
                )
            elif self._draining:
                # No new publishes will land here; tell the reader to
                # back off and retry against the restarted daemon.
                await self._send_retry_after(writer, "draining")
            else:
                await self._write_frame(
                    writer, encode_frame(MsgType.NOT_READY, {"step": step})
                )

    # -- graceful drain ----------------------------------------------------
    def drain(self, delay: float = DEFAULT_RETRY_AFTER_S) -> None:
        """Enter drain mode: refuse new work, tell attached peers to back
        off for ``delay`` seconds.  Thread-safe; idempotent."""
        if self._loop is None or not self._thread:
            self._draining = True
            return
        fut = asyncio.run_coroutine_threadsafe(self._drain_async(delay), self._loop)
        fut.result(timeout=10.0)

    async def _drain_async(self, delay: float) -> None:
        if self._draining:
            return
        self._draining = True
        peers = list(self._attached)
        flight.record(EV_NET_DRAIN, peers=len(peers), delay=delay)
        self.metrics.counter("net.drains").inc()
        frame = encode_frame(
            MsgType.RETRY_AFTER, {"delay": delay, "reason": "draining"}
        )
        for writer in peers:
            try:
                await self._write_frame(writer, frame)
            except (ConnectionError, OSError):
                pass  # peer already gone; nothing to notify

    # -- checkpoint / restore ----------------------------------------------
    def checkpoint(self, path: Optional[str] = None) -> str:
        """Write directory + tenant + broker state to ``path`` atomically.

        Synchronous shape for non-loop callers (the CLI's SIGTERM
        handler, tests).  Coroutines must use :meth:`checkpoint_async`
        instead: the ``fsync``/``os.replace`` here block, and FXL010
        flags any call to this from an ``async def``.
        """
        target = self._checkpoint_target(path)
        blob = self._checkpoint_blob()
        self._write_checkpoint_blob(blob, target)
        self._note_checkpoint(target, len(blob))
        return target

    async def checkpoint_async(self, path: Optional[str] = None) -> str:
        """Checkpoint from a coroutine without stalling the event loop.

        The state walk runs on the loop (so the snapshot is consistent —
        broker dicts are only mutated by the loop); the blocking
        write+fsync+rename runs on a dedicated one-thread executor,
        which also serializes concurrent checkpoints in FIFO order so an
        older snapshot can never overwrite a newer one.
        """
        target = self._checkpoint_target(path)
        blob = self._checkpoint_blob()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._checkpoint_executor(), self._write_checkpoint_blob, blob, target
        )
        self._note_checkpoint(target, len(blob))
        return target

    def _checkpoint_target(self, path: Optional[str]) -> str:
        target = path or self.checkpoint_path
        if not target:
            raise ValueError("no checkpoint path configured")
        return target

    def _checkpoint_executor(self) -> ThreadPoolExecutor:
        if self._ckpt_executor is None:
            self._ckpt_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="flexio-ckpt"
            )
        return self._ckpt_executor

    def _write_checkpoint_blob(self, blob: bytes, target: str) -> None:
        """Blocking half: atomic tmp+fsync+rename.  The tmp name carries
        a sequence number so overlapping checkpoints (sync-on-publish
        racing the interval loop) never share a scratch file."""
        tmp = f"{target}.tmp.{os.getpid()}.{next(self._ckpt_tmp_seq)}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    def _note_checkpoint(self, target: str, nbytes: int) -> None:
        self.metrics.counter("net.checkpoints").inc()
        flight.record(
            EV_NET_CHECKPOINT, path=target, nbytes=nbytes,
            streams=len(self._streams), sessions=len(self._sessions),
        )

    def _checkpoint_blob(self) -> bytes:
        """The state walk: every tenant/session/registration/stream as
        bare codec messages (the same marshal plane the wire uses).
        Pure in-memory work — safe on the event loop."""
        parts: list[np.ndarray] = [encode_record(CKPT_HEAD, {
            "version": CKPT_VERSION, "wall": time.time(), "server": SERVER_VERSION,
        })]
        for spec in self.directory.specs():
            parts.append(encode_record(CKPT_TENANT, {
                "name": spec.name,
                "token": spec.token or "",
                "has_token": spec.token is not None,
                "max_streams": -1 if spec.max_streams is None else spec.max_streams,
                "bytes_per_s": (
                    -1.0 if spec.max_bytes_per_s is None else spec.max_bytes_per_s
                ),
                "max_leases": -1 if spec.max_leases is None else spec.max_leases,
            }))
        for sess in self._sessions.values():
            parts.append(encode_record(CKPT_SESSION, {
                "session": sess.session_id, "tenant": sess.tenant,
                "client": sess.client, "resume": sess.resume,
                "streams": ",".join(sess.streams),
            }))
        for tenant in self.directory.tenants():
            server = self.directory.server_for(tenant)
            for name, info, lease, remaining in server.entries():
                parts.append(encode_record(CKPT_REG, {
                    "tenant": tenant, "stream": name,
                    "program": info.program,
                    "rank": info.coordinator_rank,
                    "num_ranks": info.num_ranks,
                    "lease": 0.0 if lease is None else lease,
                    "remaining": 0.0 if remaining is None else remaining,
                }))
        for stream in self._streams.values():
            steps = sorted(stream._steps.items())
            parts.append(encode_record(CKPT_STREAM, {
                "stream_id": stream.stream_id, "tenant": stream.tenant,
                "name": stream.name, "last_step": stream.last_step,
                "eos_step": -1 if stream.eos_step is None else stream.eos_step,
                "last_seq": stream.last_seq, "closed": stream.closed,
                "retain": stream.retain_steps, "count": len(steps),
            }))
            for step, (count, payload) in steps:
                parts.append(encode_record(CKPT_STEP, {
                    "step": step, "count": count,
                    "payload": np.frombuffer(payload, dtype=np.uint8),
                }))
        return b"".join(p.tobytes() for p in parts)

    def restore(self, path: Optional[str] = None) -> None:
        """Load a checkpoint written by :meth:`checkpoint`.

        Call before :meth:`start`.  Tenants already configured keep
        their (possibly newer) specs; checkpointed sessions become
        resumable again; leased registrations resume with their
        *remaining* TTL, not a fresh lease period.
        """
        source = path or self.checkpoint_path
        if not source:
            raise ValueError("no checkpoint path configured")
        with open(source, "rb") as fh:
            data = np.frombuffer(fh.read(), dtype=np.uint8)
        fmt, head, offset = decode_record(data, 0)
        if fmt.name != CKPT_HEAD.name or int(head["version"]) != CKPT_VERSION:
            raise ProtocolError(
                f"bad checkpoint head {fmt.name!r} v{head.get('version')}"
            )
        regs: list[dict] = []
        max_sid = 0
        while offset < data.nbytes:
            fmt, rec, offset = decode_record(data, offset)
            if fmt.name == CKPT_TENANT.name:
                if rec["name"] in self.directory.tenants():
                    continue  # live config wins over the checkpointed spec
                self.directory.add_tenant(TenantSpec(
                    rec["name"],
                    token=rec["token"] if rec["has_token"] else None,
                    max_streams=(
                        None if rec["max_streams"] < 0 else int(rec["max_streams"])
                    ),
                    max_bytes_per_s=(
                        None if rec["bytes_per_s"] < 0 else float(rec["bytes_per_s"])
                    ),
                    max_leases=(
                        None if rec["max_leases"] < 0 else int(rec["max_leases"])
                    ),
                ))
            elif fmt.name == CKPT_SESSION.name:
                sess = _Session(
                    session_id=rec["session"], tenant=rec["tenant"],
                    spec=self.directory.spec(rec["tenant"]),
                    client=rec["client"], resume=rec["resume"],
                    streams=[s for s in rec["streams"].split(",") if s],
                )
                self._sessions[sess.session_id] = sess
                if sess.resume:
                    self._resume[sess.resume] = sess.session_id
                sid = sess.session_id
                if sid.startswith("s") and sid[1:].isdigit():
                    max_sid = max(max_sid, int(sid[1:]))
            elif fmt.name == CKPT_REG.name:
                regs.append(dict(rec))  # applied after streams exist
            elif fmt.name == CKPT_STREAM.name:
                stream = HostedStream(
                    rec["tenant"], rec["name"], retain_steps=int(rec["retain"])
                )
                stream.last_step = int(rec["last_step"])
                stream.last_seq = int(rec["last_seq"])
                stream.eos_step = (
                    None if rec["eos_step"] < 0 else int(rec["eos_step"])
                )
                stream.closed = bool(rec["closed"])
                for _ in range(int(rec["count"])):
                    sfmt, srec, offset = decode_record(data, offset)
                    if sfmt.name != CKPT_STEP.name:
                        raise ProtocolError(
                            f"expected {CKPT_STEP.name}, got {sfmt.name}"
                        )
                    stream._steps[int(srec["step"])] = (
                        int(srec["count"]),
                        np.asarray(srec["payload"], dtype=np.uint8).tobytes(),
                    )
                self._streams[stream.stream_id] = stream
            else:
                raise ProtocolError(f"unknown checkpoint record {fmt.name!r}")
        for rec in regs:
            contact = self._streams.get(f"{rec['tenant']}/{rec['stream']}")
            info = CoordinatorInfo(
                rec["program"], int(rec["rank"]), int(rec["num_ranks"]),
                contact=contact,
            )
            self.directory.register(
                rec["tenant"], rec["stream"], info,
                lease=rec["lease"] if rec["lease"] > 0 else None,
                remaining=rec["remaining"] if rec["lease"] > 0 else None,
            )
        self._session_counter = itertools.count(max_sid + 1)
        self.metrics.counter("net.restores").inc()
        flight.record(
            EV_NET_RESTORE, path=source,
            streams=len(self._streams), sessions=len(self._sessions),
        )


class _DaemonState:
    """Process-level pseudo-stream so daemon-wide series (sessions,
    admission rejections, lease evictions) render without a stream label."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.monitor = _MetricsOnly(metrics)
        self.closed = False
        self.error = None
        self.active_transport = ""


class _MetricsOnly:
    __slots__ = ("metrics",)

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def parse_tenant_arg(arg: str) -> TenantSpec:
    """Parse ``name[,token=...][,max_streams=N][,bytes_per_s=R][,max_leases=N]``."""
    name, _, rest = arg.partition(",")
    if not name:
        raise ValueError("tenant spec needs a name")
    token = None
    max_streams = None
    max_bytes = None
    max_leases = None
    for piece in rest.split(","):
        piece = piece.strip()
        if not piece:
            continue
        key, sep, value = piece.partition("=")
        if not sep:
            raise ValueError(f"bad tenant spec piece {piece!r} (expected key=value)")
        key = key.strip()
        if key == "token":
            token = value
        elif key == "max_streams":
            max_streams = int(value)
        elif key == "bytes_per_s":
            max_bytes = float(value)
        elif key == "max_leases":
            max_leases = int(value)
        else:
            raise ValueError(f"unknown tenant spec key {key!r}")
    return TenantSpec(name, token=token, max_streams=max_streams,
                      max_bytes_per_s=max_bytes, max_leases=max_leases)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.net.server", description="FlexIO directory daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--control-port", type=int, default=0)
    parser.add_argument("--data-port", type=int, default=0)
    parser.add_argument(
        "--tenant", action="append", default=[],
        help="tenant spec: name[,token=...][,max_streams=N]"
             "[,bytes_per_s=R][,max_leases=N]; repeatable",
    )
    parser.add_argument("--lease-interval", type=float, default=0.2)
    parser.add_argument("--retain-steps", type=int, default=DEFAULT_RETAIN_STEPS)
    parser.add_argument("--no-telemetry", action="store_true")
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file for durability (written on SIGTERM drain)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=0.0, metavar="S",
        help="also checkpoint every S seconds (0 = only on drain)",
    )
    parser.add_argument(
        "--checkpoint-sync", action="store_true",
        help="checkpoint before acking every PUBLISH (hard-kill durability)",
    )
    parser.add_argument(
        "--restore", action="store_true",
        help="restore state from --checkpoint at startup if the file exists",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=DEFAULT_RETRY_AFTER_S, metavar="S",
        help="RETRY_AFTER delay broadcast to peers during SIGTERM drain",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults on outbound frames: rate=R,seed=N,kinds=a|b",
    )
    args = parser.parse_args(argv)

    tenants = [parse_tenant_arg(a) for a in args.tenant] or None
    daemon = DirectoryDaemon(
        host=args.host,
        control_port=args.control_port,
        data_port=args.data_port,
        tenants=tenants,
        lease_interval=args.lease_interval,
        retain_steps=args.retain_steps,
        telemetry=not args.no_telemetry,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_sync=args.checkpoint_sync,
        injector=parse_fault_spec(args.faults),
    )
    if args.restore and args.checkpoint and os.path.exists(args.checkpoint):
        daemon.restore(args.checkpoint)
    daemon.start()
    telemetry_url = daemon.telemetry.url if daemon.telemetry is not None else "-"
    # Machine-parseable ready line: subprocess harnesses block on it.
    print(
        f"FLEXIO-DAEMON READY control={daemon.host}:{daemon.control_port} "
        f"data={daemon.host}:{daemon.data_port} telemetry={telemetry_url}",
        flush=True,
    )
    stop = threading.Event()
    drain_requested = threading.Event()

    def on_sigterm(*_):
        drain_requested.set()
        stop.set()

    try:
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    try:
        stop.wait()
    finally:
        if drain_requested.is_set():
            # Graceful SIGTERM: tell peers to back off, persist state,
            # then go down — a restarted daemon with --restore resumes.
            try:
                daemon.drain(args.drain_grace)
                if args.checkpoint:
                    daemon.checkpoint()
            except (OSError, RuntimeError) as exc:  # pragma: no cover
                print(f"FLEXIO-DAEMON DRAIN-ERROR {exc!r}", flush=True)
        daemon.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
