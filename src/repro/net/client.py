"""``connect()``: the client face of the FlexIO service.

One entry point covers both deployment shapes the paper's
location-flexible placement implies:

* ``connect("local://")`` — everything in-process.  The returned
  :class:`LocalClient` wraps the :class:`~repro.core.api.FlexIO`
  façade with a stream-mode configuration, so ``open(name, "w")`` /
  ``open(name, "r")`` hand back the familiar step-API handles backed
  by the in-process data plane (shm/rdma models, drainer, plan cache).

* ``connect("flexio://host:port/tenant", token=...)`` — a
  :class:`RemoteClient` session against a running
  :class:`~repro.net.server.DirectoryDaemon`.  The control socket
  authenticates the tenant (HELLO → WELCOME) and opens named streams;
  each open dials the daemon's data port through a
  :class:`~repro.transport.tcp.TcpChannel` and exchanges steps with
  the store-and-forward broker (PUBLISH / FETCH frames).  Admission
  rejections — bad token, unknown tenant, quota exceeded — come back
  as the *same* typed :class:`~repro.core.directory.AdmissionError`
  values the daemon raised, rebuilt from the wire kind.

Either way the handles subclass the redesigned
:class:`~repro.adios.api.WriteHandle` / :class:`~repro.adios.api.ReadHandle`
ABCs, so application step loops are identical in-process and over the
network::

    import repro as flexio

    with flexio.connect("flexio://127.0.0.1:7700/acme", token="s3cret") as c:
        with c.open("gts.stream", "w") as w:
            w.begin_step()
            w.write("temperature", field, box=box, global_shape=shape)
            w.end_step()
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional
from urllib.parse import urlsplit

import numpy as np

from repro.adios.api import (
    AdiosError,
    EndOfStream,
    RankContext,
    ReadHandle,
    StepNotReady,
    VariableNotFound,
    WriteHandle,
    resolve_read_args,
)
from repro.adios.selection import (
    BoundingBox,
    assemble,
    intersect,
    resolve_selection,
)
from repro.core.directory import admission_exception
from repro.core.monitoring import PerfMonitor
from repro.core.plugins import PluginManager, PluginSide
from repro.core.resilience import RetryPolicy, retry_call
from repro.net.protocol import (
    Frame,
    MsgType,
    ProtocolError,
    decode_frame,
    decode_var,
    encode_frame,
    encode_var,
)
from repro.obs import recorder as flight
from repro.obs.events import (
    EV_NET_CONNECT,
    EV_NET_DISCONNECT,
    EV_NET_RECONNECT,
    EV_NET_RESUME,
    EV_NET_SESSION_LOST,
    EV_NET_STREAM_OPEN,
)
from repro.transport.faults import (
    PeerDisconnected,
    SessionLost,
    TornSend,
    TransportFault,
    TransportFaultInjector,
    TransportTimeout,
)
from repro.transport.tcp import TcpChannel, recv_frame, send_frame
from repro.util import rng

__all__ = [
    "connect",
    "parse_flexio_uri",
    "ParsedUri",
    "NetError",
    "RetryAfter",
    "SessionLost",
    "Client",
    "LocalClient",
    "RemoteClient",
]


class NetError(TransportFault):
    """A non-admission ERROR frame from the daemon (kind + message).

    Subclasses :class:`~repro.transport.faults.TransportFault` (itself a
    ``RuntimeError``), so daemon-side failures sit in the same typed
    family as socket-level faults — one ``except TransportFault`` covers
    the whole client path, satisfying the FXL001 discipline.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.error_kind = kind

    # Back-compat alias: earlier releases exposed the wire kind as .kind,
    # which TransportFault now uses for its FaultKind slot.
    @property
    def kind(self):  # type: ignore[override]
        return self.error_kind


class RetryAfter(NetError):
    """The daemon asked us to back off (drain/restart in progress)."""

    def __init__(self, delay: float, reason: str) -> None:
        super().__init__("retry_after", f"retry in {delay}s: {reason}")
        self.delay = float(delay)
        self.reason = reason


#: Faults a reconnect-and-retry attempt can cure: socket-level faults
#: and explicit daemon back-pressure.  Application-level errors (bad
#: mode, unknown stream, admission rejections, protocol bugs) are NOT
#: retried — they would fail identically on a fresh connection.
RECONNECT_FAULTS = (PeerDisconnected, TransportTimeout, TornSend, RetryAfter)

#: Wire error kinds that rebuild as typed AdmissionError subclasses.
_ADMISSION_KINDS = frozenset(
    {"unknown_tenant", "auth", "streams", "bytes_per_s", "leases"}
)


def raise_wire_error(frame: Frame) -> None:
    """Re-raise an ERROR or RETRY_AFTER frame as its typed exception."""
    if frame.msg_type is MsgType.RETRY_AFTER:
        raise RetryAfter(float(frame.record["delay"]), frame.record["reason"])
    kind = frame.record["kind"]
    message = frame.record["message"]
    if kind in _ADMISSION_KINDS:
        raise admission_exception(kind, message)
    if kind == "protocol":
        raise ProtocolError(message)
    raise NetError(kind, message)


# ---------------------------------------------------------------------------
# URI grammar:  flexio://host:port/tenant   |   local://
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParsedUri:
    """One parsed ``flexio://`` / ``local://`` service URI."""

    scheme: str
    host: str = ""
    port: int = 0
    tenant: str = "public"


def parse_flexio_uri(uri: str) -> ParsedUri:
    """Parse a service URI.

    Grammar::

        uri    := "local://" | "flexio://" host ":" port [ "/" tenant ]
        tenant := path segment (defaults to "public")

    Rejections are always ``ValueError`` (never a raw parsing artifact):
    userinfo (``user@host``) is refused — authentication travels in the
    HELLO token, not the URI — and an out-of-range or non-numeric port
    is reported with the offending URI.  A trailing slash after the
    tenant is tolerated.
    """
    parts = urlsplit(uri)
    if parts.scheme == "local":
        return ParsedUri(scheme="local")
    if parts.scheme != "flexio":
        raise ValueError(
            f"unsupported URI scheme {parts.scheme!r} (expected flexio:// or local://)"
        )
    if parts.username is not None or parts.password is not None:
        raise ValueError(
            f"flexio:// URIs carry no userinfo (use token=...), got {uri!r}"
        )
    try:
        port = parts.port
    except ValueError as exc:
        raise ValueError(f"bad port in flexio:// URI {uri!r}: {exc}") from exc
    if not parts.hostname or port is None:
        raise ValueError(f"flexio:// URI needs host:port, got {uri!r}")
    tenant = parts.path.strip("/") or "public"
    if "/" in tenant:
        raise ValueError(f"tenant must be one path segment, got {parts.path!r}")
    return ParsedUri(
        scheme="flexio", host=parts.hostname, port=port, tenant=tenant
    )


# ---------------------------------------------------------------------------
# Local client
# ---------------------------------------------------------------------------

#: Group the local client binds stream opens to; variables are declared
#: at write time (the stream method needs no static var list).
LOCAL_GROUP = "flexio"

_LOCAL_CONFIG = """
<adios-config>
  <adios-group name="flexio"/>
  <method group="flexio" method="FLEXPATH">{params}</method>
</adios-config>
"""


class Client:
    """Common context-manager surface of both client kinds."""

    def open(self, name: str, mode: str, **kwargs: Any):
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - overridden
        pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class LocalClient(Client):
    """``local://``: the in-process service, same ``open()`` surface.

    ``config`` overrides the generated single-group stream
    configuration (an :class:`~repro.adios.config.AdiosConfig` or XML
    text); ``params`` sets the stream method's hint string when the
    default configuration is used.
    """

    def __init__(self, config=None, machine=None, params: str = "") -> None:
        from repro.adios.config import AdiosConfig
        from repro.core.api import FlexIO

        if config is None:
            config = _LOCAL_CONFIG.format(params=params)
        if isinstance(config, str):
            config = AdiosConfig.from_xml(config)
        self.flexio = FlexIO(config, machine=machine)
        self._group_default = next(iter(config.groups), LOCAL_GROUP)

    def open(
        self,
        name: str,
        mode: str,
        *,
        group: Optional[str] = None,
        rank: int = 0,
        num_ranks: int = 1,
        **_ignored: Any,
    ):
        ctx = RankContext(rank, num_ranks)
        group = group or self._group_default
        if mode == "w":
            return self.flexio.open_write(group, name, ctx)
        if mode == "r":
            return self.flexio.open_read(group, name, ctx)
        raise ValueError(f"bad open mode {mode!r} (expected 'w' or 'r')")


# ---------------------------------------------------------------------------
# Remote client
# ---------------------------------------------------------------------------

#: Default reconnect schedule: 4 attempts, short exponential backoff
#: with seeded jitter (the backoff base is ``timeout``, NOT the socket
#: timeout — reconnects should hammer fast, then give up fast).
DEFAULT_RETRY = RetryPolicy(max_retries=3, timeout=0.05, backoff_factor=2.0,
                            jitter=0.25)


class RemoteClient(Client):
    """One authenticated control-plane session against the daemon.

    The session is *resumable*: the daemon's WELCOME carries a resume
    token, and every RPC and data exchange runs inside a bounded
    reconnect loop (``retry`` policy, seeded jitter via ``seed``) that
    re-dials, re-HELLOs with the token, and replays the frame.  Only
    when the whole schedule is exhausted does a typed
    :class:`~repro.transport.faults.SessionLost` escape.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        token: Optional[str] = None,
        client_name: str = "",
        timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        faults: Optional[TransportFaultInjector] = None,
        heartbeat_interval: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self._token = token
        self._client_name = client_name
        self.timeout = timeout
        self.retry = retry or DEFAULT_RETRY
        self.faults = faults
        self.monitor = PerfMonitor()
        self._rng = rng(seed)
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        self._closed = False
        self._sock: Optional[socket.socket] = None
        self._lock = threading.RLock()
        self._frame_seq = itertools.count(1)
        self.resume_token = ""
        self.resumed = False
        self._retry_exhausted(self._dial, "connect")
        flight.record(EV_NET_CONNECT, tenant=tenant, client=client_name)
        # -- background heartbeat (writer leases + reader liveness) --------
        self._hb_interval = float(heartbeat_interval)
        self._hb_streams: set[str] = set()
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        if self._hb_interval > 0:
            self._hb_thread = threading.Thread(
                target=self._hb_loop, name="flexio-heartbeat", daemon=True
            )
            self._hb_thread.start()

    # -- connection management ---------------------------------------------
    def _dial(self) -> None:
        """(Re)build the control socket and HELLO, resuming if we can."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except socket.timeout as exc:
            raise TransportTimeout(
                f"connect to flexio daemon at {self.host}:{self.port} "
                f"timed out after {self.timeout}s"
            ) from exc
        except OSError as exc:
            raise PeerDisconnected(
                f"cannot reach flexio daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        welcome = self._rpc_once(MsgType.HELLO, {
            "tenant": self.tenant, "token": self._token or "",
            "client": self._client_name, "resume": self.resume_token,
        }, MsgType.WELCOME)
        self.session_id = welcome.record["session"]
        self.server_version = welcome.record["server"]
        self.data_port = int(welcome.record["data_port"])
        self.resumed = bool(welcome.record["resumed"])
        self.resume_token = welcome.record["resume"]
        if self.resumed:
            self.monitor.metrics.counter("net.resume").inc()
            flight.record(
                EV_NET_RESUME, session=self.session_id, tenant=self.tenant
            )

    def _reconnect(self, attempt: int, exc: Exception) -> None:
        """One reconnect: honor daemon back-pressure, re-dial, re-HELLO.

        The socket may be desynced (a reply half-read, a frame half
        sent), so a retried RPC must never reuse it — every retry runs
        on a fresh connection.
        """
        if isinstance(exc, RetryAfter) and exc.delay > 0:
            self._sleep(exc.delay)
        self.monitor.metrics.counter("net.reconnects").inc()
        flight.record(
            EV_NET_RECONNECT, attempt=attempt, tenant=self.tenant,
            cause=type(exc).__name__,
        )
        self._dial()

    def _retry_exhausted(self, op: Callable[[], Any], what: str,
                         on_retry: Optional[Callable] = None) -> Any:
        """Run ``op`` under the reconnect schedule; exhaustion raises the
        typed :class:`SessionLost` (itself a ``TransportFault``)."""
        try:
            return retry_call(
                op, self.retry, RECONNECT_FAULTS,
                on_retry=on_retry, rng=self._rng, sleep=self._sleep,
            )
        except RECONNECT_FAULTS as exc:
            self.monitor.metrics.counter("net.sessions_lost").inc()
            flight.record(
                EV_NET_SESSION_LOST, tenant=self.tenant, what=what,
                cause=type(exc).__name__,
            )
            raise SessionLost(
                f"{what} against {self.host}:{self.port} failed after "
                f"{self.retry.max_retries + 1} attempts: {exc}"
            ) from exc

    # -- control-plane RPC -------------------------------------------------
    def _rpc_once(self, msg_type: MsgType, record: dict, expect: MsgType) -> Frame:
        """One attempt on the current socket; raw socket errors are
        already mapped to typed faults inside send_frame/recv_frame."""
        if self._sock is None:
            # A previous reconnect died mid-dial; retriable — the retry
            # loop's on_retry re-dials before the next attempt.
            raise PeerDisconnected("control socket is down")
        send_frame(
            self._sock,
            encode_frame(msg_type, record, seq=next(self._frame_seq)),
            timeout=self.timeout,
        )
        raw = recv_frame(self._sock, timeout=self.timeout)
        if raw is None:
            raise PeerDisconnected("daemon closed the control connection")
        frame = decode_frame(raw)
        if frame.msg_type in (MsgType.ERROR, MsgType.RETRY_AFTER):
            raise_wire_error(frame)
        if frame.msg_type is not expect:
            raise ProtocolError(
                f"expected {expect.name}, daemon sent {frame.msg_type.name}"
            )
        return frame

    def _rpc(self, msg_type: MsgType, record: dict, expect: MsgType) -> Frame:
        if self._closed:
            raise PeerDisconnected("rpc on closed client session")
        with self._lock:
            return self._retry_exhausted(
                lambda: self._rpc_once(msg_type, record, expect),
                msg_type.name, on_retry=self._reconnect,
            )

    # -- directory surface -------------------------------------------------
    def register(self, stream: str, *, program: str = "writer", rank: int = 0,
                 num_ranks: int = 1, lease: float = 0.0) -> None:
        self._rpc(MsgType.REGISTER, {
            "stream": stream, "program": program, "rank": rank,
            "num_ranks": num_ranks, "lease": float(lease),
        }, MsgType.OK)

    def lookup(self, stream: str) -> dict:
        return self._rpc(MsgType.LOOKUP, {"stream": stream}, MsgType.LOOKUP_REPLY).record

    def heartbeat(self, stream: str) -> None:
        self._rpc(MsgType.HEARTBEAT, {"stream": stream}, MsgType.OK)

    # -- background heartbeat ----------------------------------------------
    def heartbeat_tick(self) -> int:
        """One heartbeat round over every open stream (writer leases AND
        reader liveness — the daemon answers ``idle`` for unleased
        names).  The background thread calls this; tests drive it
        directly for determinism.  Returns the number of beats sent."""
        sent = 0
        for name in sorted(self._hb_streams):
            if self._closed:
                break
            try:
                self.heartbeat(name)
                sent += 1
            except (TransportFault, ProtocolError):
                # The next RPC on this stream surfaces the real failure;
                # liveness pings must never kill the session themselves.
                break
        if sent:
            self.monitor.metrics.counter("net.heartbeats").inc(sent)
        return sent

    def _hb_loop(self) -> None:
        while not self._hb_stop.wait(self._hb_interval):
            if self._closed:
                return
            self.heartbeat_tick()

    # -- streams -----------------------------------------------------------
    def open(
        self,
        name: str,
        mode: str,
        *,
        rank: int = 0,
        num_ranks: int = 1,
        lease: float = 0.0,
        timeout: Optional[float] = None,
        **_ignored: Any,
    ):
        """Open a named stream for write or read.

        Readers may race the writer's open: with ``timeout`` (seconds)
        the open retries until the name resolves or the deadline
        passes; without it an unknown name raises immediately.
        """
        if mode not in ("w", "r"):
            raise ValueError(f"bad open mode {mode!r} (expected 'w' or 'r')")
        pushdown = bool(_ignored.pop("pushdown", False))
        record = {
            "stream": name, "mode": mode,
            "program": "writer" if mode == "w" else "reader",
            "rank": rank, "num_ranks": num_ranks, "lease": float(lease),
        }
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            try:
                reply = self._rpc(MsgType.OPEN, record, MsgType.OPEN_REPLY)
                break
            except NetError:
                if deadline is None or self._clock() >= deadline:
                    raise
                self._sleep(0.02)
        stream_id = reply.record["stream_id"]
        channel = self._attach(stream_id, mode)
        self._hb_streams.add(name)
        flight.record(EV_NET_STREAM_OPEN, stream=stream_id, mode=mode,
                      tenant=self.tenant)
        if mode == "w":
            return NetWriteHandle(self, stream_id, channel, rank=rank, name=name)
        return NetReadHandle(self, stream_id, channel, name=name,
                             pushdown=pushdown)

    def _attach(self, stream_id: str, role: str,
                predicate: str = "") -> TcpChannel:
        channel = TcpChannel.connect(
            self.host, self.data_port, monitor=self.monitor,
            injector=self.faults, timeout=self.timeout,
        )
        try:
            channel.sendv([encode_frame(MsgType.ATTACH, {
                "session": self.session_id, "stream_id": stream_id, "role": role,
                "predicate": predicate,
            }, seq=next(self._frame_seq))], timeout=self.timeout)
            frame = decode_frame(channel.recv(timeout=self.timeout))
        except (TransportFault, ProtocolError, OSError):
            # A half-attached socket is a leak: the daemon holds the
            # accept side until its idle reaper fires, and the client
            # would dial a fresh one on retry anyway.
            channel.close()
            raise
        if frame.msg_type in (MsgType.ERROR, MsgType.RETRY_AFTER):
            channel.close()
            raise_wire_error(frame)
        if frame.msg_type is not MsgType.OK:
            channel.close()
            raise ProtocolError(f"expected OK after ATTACH, got {frame.msg_type.name}")
        return channel

    def _reattach(self, attempt: int, exc: Exception, stream_id: str,
                  role: str, old: TcpChannel,
                  predicate: str = "") -> TcpChannel:
        """Data-path recovery: reconnect the control session (fresh
        socket + resume HELLO), then re-ATTACH the data channel."""
        try:
            old.close()
        except (TransportFault, OSError):
            pass
        self._reconnect(attempt, exc)
        return self._attach(stream_id, role, predicate=predicate)

    def _close_stream(self, stream_id: str, name: str) -> None:
        self._hb_streams.discard(name)
        self._rpc(MsgType.CLOSE, {"stream_id": stream_id}, MsgType.OK)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
            self._hb_thread = None
        if self._sock is not None:
            try:
                send_frame(
                    self._sock,
                    encode_frame(MsgType.BYE, {"reason": "client close"},
                                 seq=next(self._frame_seq)),
                    timeout=self.timeout,
                )
            except TransportFault:
                pass  # daemon already gone: nothing to say goodbye to
            try:
                self._sock.close()
            except OSError:
                pass
        flight.record(EV_NET_DISCONNECT, tenant=self.tenant)


# ---------------------------------------------------------------------------
# Network step handles
# ---------------------------------------------------------------------------

def _stamp_stats(rec: dict, arr: np.ndarray) -> None:
    """Writer-stamped whole-block bounds (the ADIOS per-block statistics
    idiom) — what the broker's predicate pushdown prunes against.  Empty
    and non-numeric payloads carry no stats and are never pruned."""
    if arr.size and arr.dtype.kind in "fiu":
        rec["vmin"] = float(arr.min())
        rec["vmax"] = float(arr.max())
        rec["has_stats"] = True
    else:
        rec["vmin"] = 0.0
        rec["vmax"] = 0.0
        rec["has_stats"] = False


class NetWriteHandle(WriteHandle):
    """Writer side of one remote stream: steps become PUBLISH frames.

    ``write`` buffers this rank's variables; ``end_step`` gathers the
    PUBLISH header and one ``net.var`` message per variable into a
    single vectored frame (no client-side join) and waits for the
    broker's acknowledgement — a quota rejection surfaces as the typed
    :class:`~repro.core.directory.QuotaExceeded` right at the step
    boundary that exceeded it.
    """

    def __init__(self, client: RemoteClient, stream_id: str,
                 channel: TcpChannel, rank: int = 0, name: str = "") -> None:
        self._client = client
        self.stream_id = stream_id
        self.name = name or stream_id.rsplit("/", 1)[-1]
        self._channel = channel
        self._rank = rank
        self._step = 0
        #: Monotonic per-stream publish sequence: the daemon suppresses
        #: any republished seq it has already applied, so a retried
        #: PUBLISH (lost ack) never duplicates a step.
        self._publish_seq = 0
        self._pending: list[dict] = []
        self._closed = False
        #: Writer-side plug-in chain: codelets deployed here condition
        #: each variable before the step leaves the client (the paper's
        #: writer-placed analytics for the network deployment shape).
        self.plugins = PluginManager(client.monitor)

    @property
    def current_step(self) -> int:
        return self._step

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise AdiosError("write after close")
        arr = np.ascontiguousarray(data)
        if box is not None and tuple(arr.shape) != tuple(box.count):
            raise ValueError(f"data shape {arr.shape} != box count {box.count}")
        rec = {
            "name": name,
            "writer_rank": self._rank,
            "start": list(box.start) if box is not None else [],
            "shape": list(arr.shape),
            "gshape": list(global_shape) if global_shape is not None else [],
            "data": arr,
        }
        _stamp_stats(rec, arr)
        self._pending.append(rec)

    def _condition_pending(self) -> None:
        """Run the writer-side chain over every buffered variable,
        re-stamping shape and stats for whatever comes out."""
        for rec in self._pending:
            out = self.plugins.apply_side(
                PluginSide.WRITER, {rec["name"]: rec["data"]}
            )
            arr = np.ascontiguousarray(out[rec["name"]])
            rec["data"] = arr
            rec["shape"] = list(arr.shape)
            _stamp_stats(rec, arr)

    def _publish_once(self, record: dict) -> None:
        parts = [encode_frame(MsgType.PUBLISH, record,
                              seq=next(self._client._frame_seq))]
        parts.extend(encode_var(rec) for rec in self._pending)
        self._channel.sendv(parts, timeout=self._client.timeout)
        frame = decode_frame(self._channel.recv(timeout=self._client.timeout))
        if frame.msg_type in (MsgType.ERROR, MsgType.RETRY_AFTER):
            raise_wire_error(frame)
        if frame.msg_type is not MsgType.OK:
            raise ProtocolError(
                f"expected OK after PUBLISH, got {frame.msg_type.name}"
            )

    def _advance(self, eos: bool = False):
        if self._closed:
            raise AdiosError("end_step after close")
        if self.plugins.has_side(PluginSide.WRITER):
            self._condition_pending()
        seq = self._publish_seq + 1
        record = {
            "step": self._step, "count": len(self._pending), "eos": eos,
            "seq": seq,
        }

        def reattach(attempt: int, exc: Exception) -> None:
            self._channel = self._client._reattach(
                attempt, exc, self.stream_id, "w", self._channel
            )

        self._client._retry_exhausted(
            lambda: self._publish_once(record),
            f"PUBLISH step {self._step}", on_retry=reattach,
        )
        self._publish_seq = seq
        self._pending = []
        self._step += 1

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._channel.close()
        self._client._close_stream(self.stream_id, self.name)


class _CachedStep:
    """One fetched step, decoded lazily-ish: var records + backing span."""

    __slots__ = ("step", "vars", "_wb")

    def __init__(self, step: int, count: int, wb, offset: int) -> None:
        self.step = step
        self.vars: list[dict] = []
        # Keep the receive span alive: every array below views into it.
        self._wb = wb
        for _ in range(count):
            rec, offset = decode_var(wb, offset)
            self.vars.append(rec)

    def var_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.vars:
            seen.setdefault(rec["name"], None)
        return list(seen)


class NetReadHandle(ReadHandle):
    """Reader side of one remote stream: FETCH → assemble locally.

    ``begin_step`` polls the broker (NOT_READY maps to
    :attr:`~repro.adios.api.StepStatus.NotReady`, EOS to
    :attr:`~repro.adios.api.StepStatus.EndOfStream`); global-array
    reads reassemble the writers' blocks with the same selection
    machinery the in-process reader uses, so MxN redistribution works
    across the network hop unchanged.
    """

    def __init__(self, client: RemoteClient, stream_id: str,
                 channel: TcpChannel, name: str = "",
                 pushdown: bool = False) -> None:
        self._client = client
        self.stream_id = stream_id
        self.name = name or stream_id.rsplit("/", 1)[-1]
        self._channel = channel
        self._cursor = 0
        self._cache: dict[int, _CachedStep] = {}
        self._closed = False
        #: Reader-side plug-in chain: compilable chains run fused per
        #: block (single pass, no assembled intermediate); free-form
        #: codelets keep the interpreted assemble-then-apply path.
        self.plugins = PluginManager(client.monitor)
        self._pushdown = bool(pushdown)
        #: Predicate spec the current data channel ATTACHed with; the
        #: channel is re-ATTACHed whenever the chain's predicate changes.
        self._attached_pred = ""

    @property
    def current_step(self) -> int:
        return self._cursor

    # -- step movement -----------------------------------------------------
    def _fetch_once(self, step: int) -> _CachedStep:
        self._channel.sendv(
            [encode_frame(MsgType.FETCH, {"step": step},
                          seq=next(self._client._frame_seq))],
            timeout=self._client.timeout,
        )
        wb = self._channel.recv(timeout=self._client.timeout)
        frame = decode_frame(wb)
        if frame.msg_type is MsgType.STEP_DATA:
            got = _CachedStep(
                step, int(frame.record["count"]), wb, frame.consumed
            )
            # Retain only the current neighborhood; old steps are gone.
            self._cache = {k: v for k, v in self._cache.items() if k >= step - 1}
            self._cache[step] = got
            return got
        if frame.msg_type is MsgType.NOT_READY:
            raise StepNotReady(f"step {step} of {self.stream_id} not yet published")
        if frame.msg_type is MsgType.EOS:
            raise EndOfStream(self.stream_id)
        if frame.msg_type in (MsgType.ERROR, MsgType.RETRY_AFTER):
            raise_wire_error(frame)
        raise ProtocolError(f"unexpected {frame.msg_type.name} after FETCH")

    def _fetch(self, step: int) -> _CachedStep:
        cached = self._cache.get(step)
        if cached is not None:
            return cached
        self._sync_predicate()

        def reattach(attempt: int, exc: Exception) -> None:
            self._channel = self._client._reattach(
                attempt, exc, self.stream_id, "r", self._channel,
                predicate=self._attached_pred,
            )

        return self._client._retry_exhausted(
            lambda: self._fetch_once(step),
            f"FETCH step {step}", on_retry=reattach,
        )

    # -- predicate pushdown ------------------------------------------------
    def _pred_spec(self) -> str:
        if not self._pushdown:
            return ""
        pred = self.plugins.block_predicate(PluginSide.READER)
        return pred.spec() if pred is not None else ""

    def _sync_predicate(self) -> None:
        """Keep the broker's view of this reader's predicate current.

        The chain can change between steps (deploy/undeploy), and the
        predicate rides the ATTACH frame — so a change re-ATTACHes the
        data channel with the new spec before the next FETCH."""
        spec = self._pred_spec()
        if spec == self._attached_pred:
            return
        channel = self._client._attach(self.stream_id, "r", predicate=spec)
        old, self._channel = self._channel, channel
        self._attached_pred = spec
        try:
            old.close()
        except (TransportFault, OSError):
            pass

    def _probe_step(self):
        self._fetch(self._cursor)

    def _advance(self):
        self._fetch(self._cursor + 1)
        self._cursor += 1

    # -- reads -------------------------------------------------------------
    def available_vars(self):
        return self._fetch(self._cursor).var_names()

    def _blocks(self, name: str):
        blocks = []
        gshape = None
        dtype = None
        for rec in self._fetch(self._cursor).vars:
            if rec["name"] != name:
                continue
            data = rec["data"]
            dtype = data.dtype
            if rec["gshape"]:
                gshape = tuple(rec["gshape"])
            if rec["start"]:
                box = BoundingBox(tuple(rec["start"]), tuple(data.shape))
                blocks.append((box, data))
        if dtype is None:
            raise VariableNotFound(
                f"no variable {name!r} at step {self._cursor}"
            )
        return blocks, gshape, dtype

    def _fusable_chain(self, name: str):
        if not self.plugins.has_side(PluginSide.READER):
            return None
        chain = self.plugins.compiled_chain(PluginSide.READER)
        if chain is None or not chain.supports(name):
            return None
        return chain

    def _read_fused(self, name, chain, blocks, target, dtype):
        """Single-pass read: slice each writer block to the selection,
        run the chain's cursor per block in ascending row order, and
        concatenate the survivors — no assembled intermediate array.

        Returns None when the blocks do not row-tile the selection (the
        fused contract: full trailing dims, leading-axis tiling).  Gaps
        are tolerated only when this reader registered a pushdown
        predicate — then a missing block is exactly one the broker
        proved the chain drops, so it contributes zero rows either way.
        """
        ndim = len(target.count)
        pieces = []
        for box, data in blocks:
            inter = intersect(target, box)
            if inter is None:
                continue
            if tuple(inter.count[1:]) != tuple(target.count[1:]):
                return None  # partial trailing dims: not a row tiling
            sl = tuple(
                slice(inter.start[d] - box.start[d],
                      inter.start[d] - box.start[d] + inter.count[d])
                for d in range(ndim)
            )
            pieces.append((inter.start[0], inter.count[0], data[sl]))
        pieces.sort(key=lambda p: p[0])
        row = target.start[0]
        for at, n, _ in pieces:
            if at < row:
                return None  # overlapping writer blocks: order ambiguous
            if at > row and not self._attached_pred:
                return None  # gap: assemble() would fill — keep that path
            row = at + n
        if row != target.start[0] + target.count[0] and not self._attached_pred:
            return None
        cursor = chain.cursor(name)
        out_pieces = []
        for _, _, piece in pieces:
            got = cursor.apply_block(np.ascontiguousarray(piece))
            if got.shape[0]:
                out_pieces.append(got)
        cursor.finish(self._client.monitor)
        self.plugins.count_fused_read()
        if not out_pieces:
            return np.empty((0, *target.count[1:]), dtype=dtype)
        if len(out_pieces) == 1:
            return np.ascontiguousarray(out_pieces[0])
        return np.concatenate(out_pieces, axis=0)

    def read(self, name, *, start=None, count=None, selection=None):
        start, count = resolve_read_args(selection, start, count)
        blocks, gshape, dtype = self._blocks(name)
        if gshape is None:
            raise AdiosError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        target = resolve_selection(start, count, gshape)
        out = None
        chain = self._fusable_chain(name)
        if chain is not None:
            out = self._read_fused(name, chain, blocks, target, dtype)
        if out is None:
            if self._attached_pred:
                # The broker may have pruned blocks of this step; only
                # the fused per-block path reads a pruned step soundly
                # (assemble() would put fill values where pruned rows
                # were, and the interpreted chain could select them).
                raise AdiosError(
                    f"pushdown is active but the blocks of {name!r} do not "
                    f"row-tile the selection; re-open without pushdown for "
                    f"this access pattern"
                )
            out = assemble(
                target,
                ((b, d) for b, d in blocks if intersect(target, b) is not None),
                dtype=dtype,
            )
            if self.plugins.has_side(PluginSide.READER):
                self.plugins.count_interpreted_read()
                out = self.plugins.apply_side(
                    PluginSide.READER, {name: out}
                )[name]
        self._client.monitor.record(
            "stream_read", name, start=0.0, duration=0.0, nbytes=int(out.nbytes)
        )
        return out

    def read_block(self, name, writer_rank):
        for rec in self._fetch(self._cursor).vars:
            if rec["name"] == name and int(rec["writer_rank"]) == writer_rank:
                data = np.asarray(rec["data"])
                if self.plugins.has_side(PluginSide.READER):
                    data = self.plugins.apply_side(
                        PluginSide.READER, {name: data}
                    )[name]
                return data
        raise VariableNotFound(
            f"no block for var {name!r} from writer {writer_rank} "
            f"at step {self._cursor}"
        )

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._client._hb_streams.discard(self.name)
        self._channel.close()


# ---------------------------------------------------------------------------
# The front door
# ---------------------------------------------------------------------------

def connect(
    uri: str,
    *,
    token: Optional[str] = None,
    config=None,
    machine=None,
    params: str = "",
    client_name: str = "",
    timeout: float = 5.0,
    retry: Optional[RetryPolicy] = None,
    seed: int = 0,
    faults: Optional[TransportFaultInjector] = None,
    heartbeat_interval: float = 0.0,
) -> Client:
    """Connect to a FlexIO service and return a :class:`Client`.

    ``local://`` builds an in-process :class:`LocalClient` (``config``,
    ``machine`` and ``params`` configure it); ``flexio://host:port/tenant``
    dials a directory daemon and authenticates with the bearer
    ``token``, returning a :class:`RemoteClient` session.

    Remote resilience knobs: ``retry`` bounds the reconnect loop every
    RPC and data exchange runs under (``seed`` feeds its jitter),
    ``heartbeat_interval`` > 0 starts a background thread that beats
    every open stream, and ``faults`` installs a seeded injector on the
    data channels for chaos runs.
    """
    parsed = parse_flexio_uri(uri)
    if parsed.scheme == "local":
        return LocalClient(config=config, machine=machine, params=params)
    return RemoteClient(
        parsed.host, parsed.port, parsed.tenant,
        token=token, client_name=client_name, timeout=timeout,
        retry=retry, seed=seed, faults=faults,
        heartbeat_interval=heartbeat_interval,
    )
