"""``connect()``: the client face of the FlexIO service.

One entry point covers both deployment shapes the paper's
location-flexible placement implies:

* ``connect("local://")`` — everything in-process.  The returned
  :class:`LocalClient` wraps the :class:`~repro.core.api.FlexIO`
  façade with a stream-mode configuration, so ``open(name, "w")`` /
  ``open(name, "r")`` hand back the familiar step-API handles backed
  by the in-process data plane (shm/rdma models, drainer, plan cache).

* ``connect("flexio://host:port/tenant", token=...)`` — a
  :class:`RemoteClient` session against a running
  :class:`~repro.net.server.DirectoryDaemon`.  The control socket
  authenticates the tenant (HELLO → WELCOME) and opens named streams;
  each open dials the daemon's data port through a
  :class:`~repro.transport.tcp.TcpChannel` and exchanges steps with
  the store-and-forward broker (PUBLISH / FETCH frames).  Admission
  rejections — bad token, unknown tenant, quota exceeded — come back
  as the *same* typed :class:`~repro.core.directory.AdmissionError`
  values the daemon raised, rebuilt from the wire kind.

Either way the handles subclass the redesigned
:class:`~repro.adios.api.WriteHandle` / :class:`~repro.adios.api.ReadHandle`
ABCs, so application step loops are identical in-process and over the
network::

    import repro as flexio

    with flexio.connect("flexio://127.0.0.1:7700/acme", token="s3cret") as c:
        with c.open("gts.stream", "w") as w:
            w.begin_step()
            w.write("temperature", field, box=box, global_shape=shape)
            w.end_step()
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Optional
from urllib.parse import urlsplit

import numpy as np

from repro.adios.api import (
    AdiosError,
    EndOfStream,
    RankContext,
    ReadHandle,
    StepNotReady,
    VariableNotFound,
    WriteHandle,
    resolve_read_args,
)
from repro.adios.selection import (
    BoundingBox,
    assemble,
    intersect,
    resolve_selection,
)
from repro.core.directory import admission_exception
from repro.core.monitoring import PerfMonitor
from repro.net.protocol import (
    Frame,
    MsgType,
    ProtocolError,
    decode_frame,
    decode_var,
    encode_frame,
    encode_var,
)
from repro.obs import recorder as flight
from repro.obs.events import EV_NET_CONNECT, EV_NET_DISCONNECT, EV_NET_STREAM_OPEN
from repro.transport.faults import PeerDisconnected
from repro.transport.tcp import TcpChannel, recv_frame, send_frame

__all__ = [
    "connect",
    "parse_flexio_uri",
    "ParsedUri",
    "NetError",
    "Client",
    "LocalClient",
    "RemoteClient",
]


class NetError(RuntimeError):
    """A non-admission ERROR frame from the daemon (kind + message)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


#: Wire error kinds that rebuild as typed AdmissionError subclasses.
_ADMISSION_KINDS = frozenset(
    {"unknown_tenant", "auth", "streams", "bytes_per_s", "leases"}
)


def raise_wire_error(frame: Frame) -> None:
    """Re-raise an ERROR frame as its typed Python exception."""
    kind = frame.record["kind"]
    message = frame.record["message"]
    if kind in _ADMISSION_KINDS:
        raise admission_exception(kind, message)
    if kind == "protocol":
        raise ProtocolError(message)
    raise NetError(kind, message)


# ---------------------------------------------------------------------------
# URI grammar:  flexio://host:port/tenant   |   local://
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParsedUri:
    """One parsed ``flexio://`` / ``local://`` service URI."""

    scheme: str
    host: str = ""
    port: int = 0
    tenant: str = "public"


def parse_flexio_uri(uri: str) -> ParsedUri:
    """Parse a service URI.

    Grammar::

        uri    := "local://" | "flexio://" host ":" port [ "/" tenant ]
        tenant := path segment (defaults to "public")
    """
    parts = urlsplit(uri)
    if parts.scheme == "local":
        return ParsedUri(scheme="local")
    if parts.scheme != "flexio":
        raise ValueError(
            f"unsupported URI scheme {parts.scheme!r} (expected flexio:// or local://)"
        )
    if not parts.hostname or parts.port is None:
        raise ValueError(f"flexio:// URI needs host:port, got {uri!r}")
    tenant = parts.path.strip("/") or "public"
    if "/" in tenant:
        raise ValueError(f"tenant must be one path segment, got {parts.path!r}")
    return ParsedUri(
        scheme="flexio", host=parts.hostname, port=parts.port, tenant=tenant
    )


# ---------------------------------------------------------------------------
# Local client
# ---------------------------------------------------------------------------

#: Group the local client binds stream opens to; variables are declared
#: at write time (the stream method needs no static var list).
LOCAL_GROUP = "flexio"

_LOCAL_CONFIG = """
<adios-config>
  <adios-group name="flexio"/>
  <method group="flexio" method="FLEXPATH">{params}</method>
</adios-config>
"""


class Client:
    """Common context-manager surface of both client kinds."""

    def open(self, name: str, mode: str, **kwargs: Any):
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - overridden
        pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class LocalClient(Client):
    """``local://``: the in-process service, same ``open()`` surface.

    ``config`` overrides the generated single-group stream
    configuration (an :class:`~repro.adios.config.AdiosConfig` or XML
    text); ``params`` sets the stream method's hint string when the
    default configuration is used.
    """

    def __init__(self, config=None, machine=None, params: str = "") -> None:
        from repro.adios.config import AdiosConfig
        from repro.core.api import FlexIO

        if config is None:
            config = _LOCAL_CONFIG.format(params=params)
        if isinstance(config, str):
            config = AdiosConfig.from_xml(config)
        self.flexio = FlexIO(config, machine=machine)
        self._group_default = next(iter(config.groups), LOCAL_GROUP)

    def open(
        self,
        name: str,
        mode: str,
        *,
        group: Optional[str] = None,
        rank: int = 0,
        num_ranks: int = 1,
        **_ignored: Any,
    ):
        ctx = RankContext(rank, num_ranks)
        group = group or self._group_default
        if mode == "w":
            return self.flexio.open_write(group, name, ctx)
        if mode == "r":
            return self.flexio.open_read(group, name, ctx)
        raise ValueError(f"bad open mode {mode!r} (expected 'w' or 'r')")


# ---------------------------------------------------------------------------
# Remote client
# ---------------------------------------------------------------------------

class RemoteClient(Client):
    """One authenticated control-plane session against the daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        token: Optional[str] = None,
        client_name: str = "",
        timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.tenant = tenant
        self.timeout = timeout
        self.monitor = PerfMonitor()
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise PeerDisconnected(
                f"cannot reach flexio daemon at {host}:{port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        welcome = self._rpc(MsgType.HELLO, {
            "tenant": tenant, "token": token or "", "client": client_name,
        }, MsgType.WELCOME)
        self.session_id = welcome.record["session"]
        self.server_version = welcome.record["server"]
        self.data_port = int(welcome.record["data_port"])
        flight.record(EV_NET_CONNECT, tenant=tenant, client=client_name)

    # -- control-plane RPC -------------------------------------------------
    def _rpc(self, msg_type: MsgType, record: dict, expect: MsgType) -> Frame:
        if self._closed:
            raise PeerDisconnected("rpc on closed client session")
        send_frame(self._sock, encode_frame(msg_type, record), timeout=self.timeout)
        raw = recv_frame(self._sock, timeout=self.timeout)
        if raw is None:
            raise PeerDisconnected("daemon closed the control connection")
        frame = decode_frame(raw)
        if frame.msg_type is MsgType.ERROR:
            raise_wire_error(frame)
        if frame.msg_type is not expect:
            raise ProtocolError(
                f"expected {expect.name}, daemon sent {frame.msg_type.name}"
            )
        return frame

    # -- directory surface -------------------------------------------------
    def register(self, stream: str, *, program: str = "writer", rank: int = 0,
                 num_ranks: int = 1, lease: float = 0.0) -> None:
        self._rpc(MsgType.REGISTER, {
            "stream": stream, "program": program, "rank": rank,
            "num_ranks": num_ranks, "lease": float(lease),
        }, MsgType.OK)

    def lookup(self, stream: str) -> dict:
        return self._rpc(MsgType.LOOKUP, {"stream": stream}, MsgType.LOOKUP_REPLY).record

    def heartbeat(self, stream: str) -> None:
        self._rpc(MsgType.HEARTBEAT, {"stream": stream}, MsgType.OK)

    # -- streams -----------------------------------------------------------
    def open(
        self,
        name: str,
        mode: str,
        *,
        rank: int = 0,
        num_ranks: int = 1,
        lease: float = 0.0,
        timeout: Optional[float] = None,
        **_ignored: Any,
    ):
        """Open a named stream for write or read.

        Readers may race the writer's open: with ``timeout`` (seconds)
        the open retries until the name resolves or the deadline
        passes; without it an unknown name raises immediately.
        """
        if mode not in ("w", "r"):
            raise ValueError(f"bad open mode {mode!r} (expected 'w' or 'r')")
        record = {
            "stream": name, "mode": mode,
            "program": "writer" if mode == "w" else "reader",
            "rank": rank, "num_ranks": num_ranks, "lease": float(lease),
        }
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                reply = self._rpc(MsgType.OPEN, record, MsgType.OPEN_REPLY)
                break
            except NetError:
                if deadline is None or time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
        stream_id = reply.record["stream_id"]
        channel = self._attach(stream_id, mode)
        flight.record(EV_NET_STREAM_OPEN, stream=stream_id, mode=mode,
                      tenant=self.tenant)
        if mode == "w":
            return NetWriteHandle(self, stream_id, channel, rank=rank)
        return NetReadHandle(self, stream_id, channel)

    def _attach(self, stream_id: str, role: str) -> TcpChannel:
        channel = TcpChannel.connect(
            self.host, self.data_port, monitor=self.monitor, timeout=self.timeout
        )
        channel.sendv([encode_frame(MsgType.ATTACH, {
            "session": self.session_id, "stream_id": stream_id, "role": role,
        })], timeout=self.timeout)
        frame = decode_frame(channel.recv(timeout=self.timeout))
        if frame.msg_type is MsgType.ERROR:
            channel.close()
            raise_wire_error(frame)
        if frame.msg_type is not MsgType.OK:
            channel.close()
            raise ProtocolError(f"expected OK after ATTACH, got {frame.msg_type.name}")
        return channel

    def _close_stream(self, stream_id: str) -> None:
        self._rpc(MsgType.CLOSE, {"stream_id": stream_id}, MsgType.OK)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            send_frame(
                self._sock, encode_frame(MsgType.BYE, {"reason": "client close"}),
                timeout=self.timeout,
            )
        except PeerDisconnected:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        flight.record(EV_NET_DISCONNECT, tenant=self.tenant)


# ---------------------------------------------------------------------------
# Network step handles
# ---------------------------------------------------------------------------

class NetWriteHandle(WriteHandle):
    """Writer side of one remote stream: steps become PUBLISH frames.

    ``write`` buffers this rank's variables; ``end_step`` gathers the
    PUBLISH header and one ``net.var`` message per variable into a
    single vectored frame (no client-side join) and waits for the
    broker's acknowledgement — a quota rejection surfaces as the typed
    :class:`~repro.core.directory.QuotaExceeded` right at the step
    boundary that exceeded it.
    """

    def __init__(self, client: RemoteClient, stream_id: str,
                 channel: TcpChannel, rank: int = 0) -> None:
        self._client = client
        self.stream_id = stream_id
        self._channel = channel
        self._rank = rank
        self._step = 0
        self._pending: list[dict] = []
        self._closed = False

    @property
    def current_step(self) -> int:
        return self._step

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise AdiosError("write after close")
        arr = np.ascontiguousarray(data)
        if box is not None and tuple(arr.shape) != tuple(box.count):
            raise ValueError(f"data shape {arr.shape} != box count {box.count}")
        self._pending.append({
            "name": name,
            "writer_rank": self._rank,
            "start": list(box.start) if box is not None else [],
            "shape": list(arr.shape),
            "gshape": list(global_shape) if global_shape is not None else [],
            "data": arr,
        })

    def _advance(self, eos: bool = False):
        if self._closed:
            raise AdiosError("end_step after close")
        parts = [encode_frame(MsgType.PUBLISH, {
            "step": self._step, "count": len(self._pending), "eos": eos,
        })]
        parts.extend(encode_var(rec) for rec in self._pending)
        self._channel.sendv(parts, timeout=self._client.timeout)
        frame = decode_frame(self._channel.recv(timeout=self._client.timeout))
        if frame.msg_type is MsgType.ERROR:
            raise_wire_error(frame)
        if frame.msg_type is not MsgType.OK:
            raise ProtocolError(
                f"expected OK after PUBLISH, got {frame.msg_type.name}"
            )
        self._pending = []
        self._step += 1

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._channel.close()
        self._client._close_stream(self.stream_id)


class _CachedStep:
    """One fetched step, decoded lazily-ish: var records + backing span."""

    __slots__ = ("step", "vars", "_wb")

    def __init__(self, step: int, count: int, wb, offset: int) -> None:
        self.step = step
        self.vars: list[dict] = []
        # Keep the receive span alive: every array below views into it.
        self._wb = wb
        for _ in range(count):
            rec, offset = decode_var(wb, offset)
            self.vars.append(rec)

    def var_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.vars:
            seen.setdefault(rec["name"], None)
        return list(seen)


class NetReadHandle(ReadHandle):
    """Reader side of one remote stream: FETCH → assemble locally.

    ``begin_step`` polls the broker (NOT_READY maps to
    :attr:`~repro.adios.api.StepStatus.NotReady`, EOS to
    :attr:`~repro.adios.api.StepStatus.EndOfStream`); global-array
    reads reassemble the writers' blocks with the same selection
    machinery the in-process reader uses, so MxN redistribution works
    across the network hop unchanged.
    """

    def __init__(self, client: RemoteClient, stream_id: str,
                 channel: TcpChannel) -> None:
        self._client = client
        self.stream_id = stream_id
        self._channel = channel
        self._cursor = 0
        self._cache: dict[int, _CachedStep] = {}
        self._closed = False

    @property
    def current_step(self) -> int:
        return self._cursor

    # -- step movement -----------------------------------------------------
    def _fetch(self, step: int) -> _CachedStep:
        cached = self._cache.get(step)
        if cached is not None:
            return cached
        self._channel.sendv(
            [encode_frame(MsgType.FETCH, {"step": step})],
            timeout=self._client.timeout,
        )
        wb = self._channel.recv(timeout=self._client.timeout)
        frame = decode_frame(wb)
        if frame.msg_type is MsgType.STEP_DATA:
            got = _CachedStep(
                step, int(frame.record["count"]), wb, frame.consumed
            )
            # Retain only the current neighborhood; old steps are gone.
            self._cache = {k: v for k, v in self._cache.items() if k >= step - 1}
            self._cache[step] = got
            return got
        if frame.msg_type is MsgType.NOT_READY:
            raise StepNotReady(f"step {step} of {self.stream_id} not yet published")
        if frame.msg_type is MsgType.EOS:
            raise EndOfStream(self.stream_id)
        if frame.msg_type is MsgType.ERROR:
            raise_wire_error(frame)
        raise ProtocolError(f"unexpected {frame.msg_type.name} after FETCH")

    def _probe_step(self):
        self._fetch(self._cursor)

    def _advance(self):
        self._fetch(self._cursor + 1)
        self._cursor += 1

    # -- reads -------------------------------------------------------------
    def available_vars(self):
        return self._fetch(self._cursor).var_names()

    def _blocks(self, name: str):
        blocks = []
        gshape = None
        dtype = None
        for rec in self._fetch(self._cursor).vars:
            if rec["name"] != name:
                continue
            data = rec["data"]
            dtype = data.dtype
            if rec["gshape"]:
                gshape = tuple(rec["gshape"])
            if rec["start"]:
                box = BoundingBox(tuple(rec["start"]), tuple(data.shape))
                blocks.append((box, data))
        if dtype is None:
            raise VariableNotFound(
                f"no variable {name!r} at step {self._cursor}"
            )
        return blocks, gshape, dtype

    def read(self, name, *, start=None, count=None, selection=None):
        start, count = resolve_read_args(selection, start, count)
        blocks, gshape, dtype = self._blocks(name)
        if gshape is None:
            raise AdiosError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        target = resolve_selection(start, count, gshape)
        out = assemble(
            target,
            ((b, d) for b, d in blocks if intersect(target, b) is not None),
            dtype=dtype,
        )
        self._client.monitor.record(
            "stream_read", name, start=0.0, duration=0.0, nbytes=int(out.nbytes)
        )
        return out

    def read_block(self, name, writer_rank):
        for rec in self._fetch(self._cursor).vars:
            if rec["name"] == name and int(rec["writer_rank"]) == writer_rank:
                return np.asarray(rec["data"])
        raise VariableNotFound(
            f"no block for var {name!r} from writer {writer_rank} "
            f"at step {self._cursor}"
        )

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._channel.close()


# ---------------------------------------------------------------------------
# The front door
# ---------------------------------------------------------------------------

def connect(
    uri: str,
    *,
    token: Optional[str] = None,
    config=None,
    machine=None,
    params: str = "",
    client_name: str = "",
    timeout: float = 5.0,
) -> Client:
    """Connect to a FlexIO service and return a :class:`Client`.

    ``local://`` builds an in-process :class:`LocalClient` (``config``,
    ``machine`` and ``params`` configure it); ``flexio://host:port/tenant``
    dials a directory daemon and authenticates with the bearer
    ``token``, returning a :class:`RemoteClient` session.
    """
    parsed = parse_flexio_uri(uri)
    if parsed.scheme == "local":
        return LocalClient(config=config, machine=machine, params=params)
    return RemoteClient(
        parsed.host, parsed.port, parsed.tenant,
        token=token, client_name=client_name, timeout=timeout,
    )
