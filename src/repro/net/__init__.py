"""Network plane: the directory daemon, its frame protocol, and clients.

Everything before this package lived in one process; :mod:`repro.net`
is where FlexIO becomes a *service*.  Three modules:

* :mod:`repro.net.protocol` — the small length-prefixed, versioned
  frame protocol both planes speak, built on the marshal codec's
  ``encode_into``/``decode_view`` over ``WireBuffer`` spans;
* :mod:`repro.net.server` — the asyncio directory daemon: a control
  port (hello/auth, register, lookup, lease heartbeats, named-stream
  open) and a data port (step publish/fetch broker) with per-tenant
  admission control and labeled telemetry;
* :mod:`repro.net.client` — ``connect("flexio://host:port/tenant")``
  and the remote step-API handles behind it.
"""

from repro.net.protocol import (  # noqa: F401
    PROTOCOL_VERSION,
    Frame,
    MsgType,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.net.client import (  # noqa: F401
    Client,
    LocalClient,
    NetError,
    RemoteClient,
    connect,
    parse_flexio_uri,
)
