"""The daemon's frame protocol: length-prefixed, versioned, codec-bodied.

Every message between a client and the directory daemon — on either
the control port or the data port — is one **frame** inside a ``u64``
length-prefixed socket record (the framing
:func:`repro.transport.tcp.send_frame` / ``TcpChannel`` already
provide):

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       4     magic ``0xF1EC0107``
4       1     protocol version (:data:`PROTOCOL_VERSION`)
5       1     message type (:class:`MsgType`)
6       2     reserved, must be zero
8       ...   body: one marshal-codec message (per-type format)
======  ====  =====================================================

The body reuses :func:`repro.marshal.codec.encode_into` and
:func:`~repro.marshal.codec.decode_view` over
:class:`~repro.transport.buffers.WireBuffer` spans, so a frame is
encoded with exactly one copy (fields packed straight into the span)
and decoded with zero (BYTES/ARRAY fields come back as views over the
receive buffer).  Both sides share :data:`PROTOCOL_REGISTRY`, so
schemas never ride along in steady state.

Multi-part frames: a :data:`MsgType.PUBLISH` body carries a variable
*count*, and the frame continues with that many back-to-back codec
``net.var`` messages — the step payload is scatter-gathered by the
sender (``sendv``) and decoded in place by the receiver via the
``consumed`` offsets :func:`decode_frame` and
:func:`decode_var` return.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.marshal.codec import MarshalError, decode_view, encode_into, encoded_size
from repro.marshal.format import FieldKind, Format, FormatRegistry
from repro.transport.buffers import Ownership, WireBuffer

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "HEADER",
    "MsgType",
    "ProtocolError",
    "Frame",
    "PROTOCOL_REGISTRY",
    "encode_frame",
    "decode_frame",
    "encode_var",
    "decode_var",
    "CKPT_VERSION",
    "CKPT_HEAD",
    "CKPT_TENANT",
    "CKPT_SESSION",
    "CKPT_REG",
    "CKPT_STREAM",
    "CKPT_STEP",
    "encode_record",
    "decode_record",
]

#: Frame magic ("FlexIO net, 01").
MAGIC = 0xF1EC0107

#: Bump on any incompatible header or format change.  v2: the header
#: grew a u64 per-connection sequence number and the HELLO/WELCOME/
#: PUBLISH bodies grew resume/sequence fields (PR 8, network resilience).
#: v3: ATTACH carries the reader chain's pushdown predicate spec and
#: ``net.var`` carries per-block min/max statistics, so the broker can
#: prune provably-dropped blocks from PUBLISH payloads (PR 10, fused
#: analytics).
PROTOCOL_VERSION = 3

#: magic u32, version u8, msg type u8, reserved u16, sequence u64.
#: The sequence is per-connection and monotone; receivers use it to
#: spot duplicated or reordered frames after a reconnect.
HEADER = struct.Struct("<IBBHQ")


class ProtocolError(MarshalError):
    """Malformed frame, bad magic, version skew, or unknown type."""


class MsgType(enum.IntEnum):
    """Every frame's type tag (control plane and data plane)."""

    # control plane ----------------------------------------------------
    HELLO = 1          # client → daemon: tenant + bearer token
    WELCOME = 2        # daemon → client: session id + data port
    ERROR = 3          # daemon → client: typed failure (kind + message)
    REGISTER = 4       # writer coordinator publishes a stream name
    OK = 5             # generic success acknowledgement
    LOOKUP = 6         # reader coordinator resolves a stream name
    LOOKUP_REPLY = 7   # daemon → client: writer coordinator info
    HEARTBEAT = 8      # writer lease refresh
    OPEN = 9           # open a named stream for write or read
    OPEN_REPLY = 10    # daemon → client: stream id + data port
    CLOSE = 11         # writer closes a stream (end of stream)
    BYE = 12           # client ends the session
    # data plane -------------------------------------------------------
    ATTACH = 16        # bind a data connection to (session, stream, role)
    PUBLISH = 17       # writer → daemon: one step (vars follow in-frame)
    FETCH = 18         # reader → daemon: request one step
    STEP_DATA = 19     # daemon → reader: the step (vars follow in-frame)
    NOT_READY = 20     # daemon → reader: step not yet published
    EOS = 21           # daemon → reader: stream ended (no more steps)
    RETRY_AFTER = 22   # daemon → peer: draining/restarting, come back later


#: The shared format vocabulary — registered once, known to both sides.
PROTOCOL_REGISTRY = FormatRegistry()

_S, _I, _F, _B, _L = (
    FieldKind.STRING,
    FieldKind.INT64,
    FieldKind.FLOAT64,
    FieldKind.BOOL,
    FieldKind.LIST_INT64,
)

_BODY_FORMATS: dict[MsgType, Format] = {
    MsgType.HELLO: PROTOCOL_REGISTRY.define(
        "net.hello",
        [("tenant", _S), ("token", _S), ("client", _S), ("resume", _S)],
    ),
    MsgType.WELCOME: PROTOCOL_REGISTRY.define(
        "net.welcome",
        [("session", _S), ("server", _S), ("data_port", _I),
         ("resume", _S), ("resumed", _B)],
    ),
    MsgType.ERROR: PROTOCOL_REGISTRY.define(
        "net.error", [("kind", _S), ("message", _S)]
    ),
    MsgType.REGISTER: PROTOCOL_REGISTRY.define(
        "net.register",
        [("stream", _S), ("program", _S), ("rank", _I), ("num_ranks", _I),
         ("lease", _F)],
    ),
    MsgType.OK: PROTOCOL_REGISTRY.define("net.ok", [("detail", _S)]),
    MsgType.LOOKUP: PROTOCOL_REGISTRY.define("net.lookup", [("stream", _S)]),
    MsgType.LOOKUP_REPLY: PROTOCOL_REGISTRY.define(
        "net.lookup_reply",
        [("program", _S), ("rank", _I), ("num_ranks", _I)],
    ),
    MsgType.HEARTBEAT: PROTOCOL_REGISTRY.define("net.heartbeat", [("stream", _S)]),
    MsgType.OPEN: PROTOCOL_REGISTRY.define(
        "net.open",
        [("stream", _S), ("mode", _S), ("program", _S), ("rank", _I),
         ("num_ranks", _I), ("lease", _F)],
    ),
    MsgType.OPEN_REPLY: PROTOCOL_REGISTRY.define(
        "net.open_reply", [("stream_id", _S), ("data_port", _I)]
    ),
    MsgType.CLOSE: PROTOCOL_REGISTRY.define("net.close", [("stream_id", _S)]),
    MsgType.BYE: PROTOCOL_REGISTRY.define("net.bye", [("reason", _S)]),
    MsgType.ATTACH: PROTOCOL_REGISTRY.define(
        "net.attach",
        [("session", _S), ("stream_id", _S), ("role", _S),
         # Reader-role pushdown: the serialized BlockPredicate of the
         # reader's compiled plug-in chain ("" = none — disables any
         # broker-side pruning for the stream while this peer is attached).
         ("predicate", _S)],
    ),
    MsgType.PUBLISH: PROTOCOL_REGISTRY.define(
        "net.publish", [("step", _I), ("count", _I), ("eos", _B), ("seq", _I)]
    ),
    MsgType.FETCH: PROTOCOL_REGISTRY.define("net.fetch", [("step", _I)]),
    MsgType.STEP_DATA: PROTOCOL_REGISTRY.define(
        "net.step_data", [("step", _I), ("count", _I)]
    ),
    MsgType.NOT_READY: PROTOCOL_REGISTRY.define("net.not_ready", [("step", _I)]),
    MsgType.EOS: PROTOCOL_REGISTRY.define("net.eos", [("step", _I)]),
    MsgType.RETRY_AFTER: PROTOCOL_REGISTRY.define(
        "net.retry_after", [("delay", _F), ("reason", _S)]
    ),
}

#: One variable of a published step: box metadata + the payload array.
#: ``vmin``/``vmax`` are writer-stamped whole-block bounds (the ADIOS
#: per-block statistics idiom); ``has_stats`` is False for empty or
#: non-numeric payloads, and a block without stats is never pruned.
VAR_FORMAT = PROTOCOL_REGISTRY.define(
    "net.var",
    [("name", _S), ("writer_rank", _I), ("start", _L), ("shape", _L),
     ("gshape", _L), ("vmin", _F), ("vmax", _F), ("has_stats", _B),
     ("data", FieldKind.ARRAY)],
)


def body_format(msg_type: MsgType) -> Format:
    """The codec format of one message type's body."""
    try:
        return _BODY_FORMATS[MsgType(msg_type)]
    except (ValueError, KeyError):
        raise ProtocolError(f"unknown message type {msg_type!r}")


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type, body record, and bytes consumed."""

    version: int
    msg_type: MsgType
    record: dict
    #: Offset one past the body — where in-frame follow-on messages
    #: (``net.var`` runs after PUBLISH/STEP_DATA) begin.
    consumed: int
    #: Per-connection monotone frame sequence number (v2 header field).
    seq: int = 0


def encode_frame(msg_type: MsgType, record: dict, seq: int = 0) -> WireBuffer:
    """Encode one frame into a fresh heap :class:`WireBuffer` span.

    Header and body are packed straight into the span (one copy of the
    field values, none of the span itself); the result feeds
    ``Channel.send``/``sendv`` or :func:`repro.transport.tcp.send_frame`
    without further materialization.  ``seq`` stamps the header's
    per-connection sequence number.
    """
    fmt = body_format(msg_type)
    size = HEADER.size + encoded_size(fmt, record, PROTOCOL_REGISTRY)
    wb = WireBuffer(np.empty(size, dtype=np.uint8), ownership=Ownership.HEAP)
    mv = memoryview(wb.as_array())
    HEADER.pack_into(mv, 0, MAGIC, PROTOCOL_VERSION, int(msg_type), 0, int(seq))
    encode_into(fmt, record, mv[HEADER.size:], PROTOCOL_REGISTRY)
    return wb


def _as_flat(data: Union[bytes, bytearray, memoryview, np.ndarray, WireBuffer]) -> np.ndarray:
    if hasattr(data, "as_array"):
        return data.as_array()
    if isinstance(data, np.ndarray):
        return data.reshape(-1).view(np.uint8)
    return np.frombuffer(data, dtype=np.uint8)


#: What a corrupted body can raise out of the codec.  The daemon reads
#: frames off the public network, so every malformed-input failure must
#: surface as the one typed ProtocolError, never a codec internal.
_DECODE_FAULTS = (
    MarshalError, struct.error, UnicodeDecodeError, ValueError,
    IndexError, OverflowError, MemoryError,
)


def _decode_body(arr: np.ndarray, what: str):
    try:
        return decode_view(arr, PROTOCOL_REGISTRY)
    except ProtocolError:
        raise
    except _DECODE_FAULTS as exc:
        raise ProtocolError(f"malformed {what} body: {exc}") from exc


def decode_frame(
    data: Union[bytes, bytearray, memoryview, np.ndarray, WireBuffer],
    offset: int = 0,
) -> Frame:
    """Decode the frame starting at ``offset``; zero-copy for BYTES and
    ARRAY body fields (views over the receive span)."""
    arr = _as_flat(data)
    if arr.nbytes - offset < HEADER.size:
        raise ProtocolError(
            f"frame truncated ({arr.nbytes - offset} bytes, need {HEADER.size})"
        )
    magic, version, type_code, reserved, seq = HEADER.unpack_from(arr, offset)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic:#x}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version skew: peer speaks v{version}, "
            f"this build speaks v{PROTOCOL_VERSION}"
        )
    if reserved != 0:
        raise ProtocolError(f"nonzero reserved field {reserved:#x}")
    try:
        msg_type = MsgType(type_code)
    except ValueError:
        raise ProtocolError(f"unknown message type {type_code}")
    fmt, record, consumed = _decode_body(arr[offset + HEADER.size:], msg_type.name)
    expected = body_format(msg_type)
    if fmt.format_id != expected.format_id:
        raise ProtocolError(
            f"body format {fmt.name!r} does not match message type "
            f"{msg_type.name} (expected {expected.name!r})"
        )
    return Frame(version, msg_type, record, offset + HEADER.size + consumed, seq)


def encode_var(record: dict) -> WireBuffer:
    """Encode one ``net.var`` follow-on message into a heap span."""
    size = encoded_size(VAR_FORMAT, record, PROTOCOL_REGISTRY)
    wb = WireBuffer(np.empty(size, dtype=np.uint8), ownership=Ownership.HEAP)
    encode_into(VAR_FORMAT, record, memoryview(wb.as_array()), PROTOCOL_REGISTRY)
    return wb


def decode_var(
    data: Union[bytes, bytearray, memoryview, np.ndarray, WireBuffer],
    offset: int,
) -> tuple[dict, int]:
    """Decode one ``net.var`` message at ``offset``; the array payload is
    a view over ``data``.  Returns (record, next offset)."""
    arr = _as_flat(data)
    fmt, record, consumed = _decode_body(arr[offset:], "net.var")
    if fmt.format_id != VAR_FORMAT.format_id:
        raise ProtocolError(f"expected net.var, got {fmt.name!r}")
    return record, offset + consumed


def error_frame(kind: str, message: str) -> WireBuffer:
    """Convenience: an ERROR frame with a taxonomy kind + human text."""
    return encode_frame(MsgType.ERROR, {"kind": kind, "message": message})


# ---------------------------------------------------------------------------
# Checkpoint records: the daemon's durability format (DESIGN.md section 14)
# ---------------------------------------------------------------------------
#
# A checkpoint file is a plain concatenation of codec messages — no frame
# headers — walked by the ``consumed`` offsets the codec returns, exactly
# like a PUBLISH frame's ``net.var`` run.  The first record is always
# ``net.ckpt.head``; each ``net.ckpt.stream`` is followed by ``count``
# ``net.ckpt.step`` records whose BYTES payload is the stream's retained
# step (the raw net.var run), spilled via the codec's ``encode_into``.
# ``None`` quotas ride as -1 sentinels (the codec has no null type).

#: Bump on any incompatible checkpoint-record change.
CKPT_VERSION = 1

CKPT_HEAD = PROTOCOL_REGISTRY.define(
    "net.ckpt.head", [("version", _I), ("wall", _F), ("server", _S)]
)
CKPT_TENANT = PROTOCOL_REGISTRY.define(
    "net.ckpt.tenant",
    [("name", _S), ("token", _S), ("has_token", _B), ("max_streams", _I),
     ("bytes_per_s", _F), ("max_leases", _I)],
)
CKPT_SESSION = PROTOCOL_REGISTRY.define(
    "net.ckpt.session",
    [("session", _S), ("tenant", _S), ("client", _S), ("resume", _S),
     ("streams", _S)],  # comma-joined stream ids
)
CKPT_REG = PROTOCOL_REGISTRY.define(
    "net.ckpt.reg",
    [("tenant", _S), ("stream", _S), ("program", _S), ("rank", _I),
     ("num_ranks", _I), ("lease", _F), ("remaining", _F)],  # 0 lease = none
)
CKPT_STREAM = PROTOCOL_REGISTRY.define(
    "net.ckpt.stream",
    [("stream_id", _S), ("tenant", _S), ("name", _S), ("last_step", _I),
     ("eos_step", _I), ("last_seq", _I), ("closed", _B), ("retain", _I),
     ("count", _I)],  # eos_step -1 = still open; count net.ckpt.step follow
)
CKPT_STEP = PROTOCOL_REGISTRY.define(
    "net.ckpt.step",
    [("step", _I), ("count", _I), ("payload", FieldKind.BYTES)],
)


def encode_record(fmt: Format, record: dict) -> np.ndarray:
    """Encode one bare codec message (no frame header) into a fresh
    uint8 array — the unit a checkpoint file concatenates."""
    size = encoded_size(fmt, record, PROTOCOL_REGISTRY)
    out = np.empty(size, dtype=np.uint8)
    encode_into(fmt, record, memoryview(out), PROTOCOL_REGISTRY)
    return out


def decode_record(
    data: Union[bytes, bytearray, memoryview, np.ndarray, WireBuffer],
    offset: int,
) -> tuple[Format, dict, int]:
    """Decode the bare codec message at ``offset``; returns
    ``(format, record, next_offset)``.  BYTES fields come back as uint8
    views over ``data``."""
    arr = _as_flat(data)
    fmt, record, consumed = _decode_body(arr[offset:], "checkpoint record")
    return fmt, record, offset + consumed
