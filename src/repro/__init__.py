"""FlexIO reproduction.

A from-scratch Python implementation of the system described in

    Fang Zheng et al., *FlexIO: I/O Middleware for Location-Flexible
    Scientific Data Analytics*, IEEE IPDPS 2013.

Layers (bottom-up):

- :mod:`repro.simcore` -- discrete-event simulation kernel.
- :mod:`repro.machine` -- HPC machine models (Titan/Smoky presets: nodes,
  NUMA domains, caches, Gemini/InfiniBand interconnects, Lustre-like FS).
- :mod:`repro.marshal` -- self-describing binary marshaling (FFS/PBIO-like).
- :mod:`repro.evpath` -- point-to-point messaging with pluggable transports.
- :mod:`repro.transport` -- shared-memory (FastForward SPSC queues, buffer
  pools, XPMEM path) and RDMA (NNTI-like, registration cache, scheduled
  receiver-directed Get) transports.
- :mod:`repro.adios` -- ADIOS-like I/O substrate: data model, BP-lite file
  format, XML configuration, file & stream methods.
- :mod:`repro.core` -- the FlexIO middleware: high-level API, directory
  service, MxN redistribution, Data Conditioning plug-ins, monitoring.
- :mod:`repro.placement` -- metrics, graph partitioning/mapping, and the
  data-aware / holistic / node-topology-aware placement algorithms.
- :mod:`repro.apps` -- GTS- and S3D-like workload models plus real analytics
  (distribution function, range query, histograms, volume renderer).
- :mod:`repro.coupled` -- end-to-end coupled-run simulator producing the
  paper's metrics (Total Execution Time, CPU hours, movement volume).
"""

__version__ = "1.0.0"

__all__ = ["__version__", "connect"]


def connect(uri: str, **kwargs):
    """Open a FlexIO client session (see :func:`repro.net.client.connect`).

    ``connect("local://")`` runs in-process;
    ``connect("flexio://host:port/tenant", token=...)`` dials a
    directory daemon.  Imported lazily so ``import repro`` stays cheap
    and cycle-free.
    """
    from repro.net.client import connect as _connect

    return _connect(uri, **kwargs)
