"""RDMA inter-node transport above an NNTI-like portability layer
(paper Section II.E).

The pieces and their paper counterparts:

* :class:`NntiFabric` / :class:`NntiEndpoint` / :class:`NntiConnection` —
  the uniform Connect / Register / Put / Get API that NNTI provides above
  ibverbs, Portals, and uGNI.  Data really moves (bytes land in the peer's
  mailbox); *time* is priced by the machine's interconnect model.

* :class:`RegistrationCache` — the persistent buffer + registration cache:
  allocated/registered buffers are kept on free lists and reused, so only
  cold acquisitions pay the allocation+registration cost that Figure 4
  shows dominating dynamic transfers.  A configurable byte threshold
  triggers reclamation (deregistration) of idle buffers.

* :class:`TransferScheduler` — receiver-directed Get scheduling: the
  receiver fetches from at most ``max_concurrent`` senders at a time, and
  concurrently active flows share its ejection bandwidth (max-min on the
  single shared link).  Bounding concurrency shortens the contention window
  seen by the simulation's own MPI traffic.

* :class:`RdmaChannel` — the two-path channel: small messages via Put into
  the peer's message queue (FMA on Gemini), large messages via a control
  message + receiver-directed Get (BTE on Gemini).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.machine.interconnect import Interconnect
from repro.obs.names import F_RDMA_REGCACHE, metric_name
from repro.transport.buffers import (
    BufferLease,
    Channel,
    LeasePool,
    Ownership,
    WireBuffer,
    WireVector,
)
from repro.transport.faults import (
    TransportFaultInjector,
    fault_exception,
    record_injected,
)

#: Copy counts the RDMA paths report into ``transport.copies``: bulk
#: transfers stage once (the gather into registered send memory; the
#: Get itself is DMA, not a CPU copy), small Puts stage once into the
#: peer's message ring.
COPIES_RDMA_BULK = 1
COPIES_RDMA_SMALL = 1


# ---------------------------------------------------------------------------
# Registration cache
# ---------------------------------------------------------------------------

@dataclass
class RegBuffer:
    """An allocated-and-registered RDMA buffer.

    ``data`` is the registered memory itself, allocated lazily on the
    first lease so pure cost-model users (``acquire``/``release`` for
    timing) never pay for backing pages they don't touch.
    """

    buffer_id: int
    size: int
    in_use: bool = True
    data: Optional[np.ndarray] = None

    def ensure_data(self) -> np.ndarray:
        if self.data is None:
            self.data = np.zeros(self.size, dtype=np.uint8)
        return self.data


@dataclass
class RegCacheStats:
    hits: int = 0
    misses: int = 0
    reclaimed: int = 0
    setup_time_paid: float = 0.0
    setup_time_saved: float = 0.0

    def emit(self, monitor, prefix: str = F_RDMA_REGCACHE) -> None:
        """Publish a snapshot of these counters into ``monitor.metrics``."""
        m = monitor.metrics
        m.gauge(metric_name(prefix, "hits")).set(self.hits)
        m.gauge(metric_name(prefix, "misses")).set(self.misses)
        m.gauge(metric_name(prefix, "reclaimed")).set(self.reclaimed)
        m.gauge(metric_name(prefix, "setup_time_paid")).set(self.setup_time_paid)
        m.gauge(metric_name(prefix, "setup_time_saved")).set(self.setup_time_saved)


class RegistrationCache(LeasePool):
    """Persistent send/receive buffer pool with registration reuse.

    Two faces of the same free lists: the original ``acquire``/``release``
    pair (used by the cost model's :meth:`NntiConnection.get_bulk`), and
    the buffer plane's :meth:`lease` protocol, which also hands out the
    registered memory itself so channels gather payloads straight into
    it.
    """

    def __init__(self, interconnect: Interconnect, max_bytes: int = 512 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        LeasePool.__init__(self)
        self.interconnect = interconnect
        self.max_bytes = int(max_bytes)
        self._free: dict[int, list[RegBuffer]] = {}
        self._all: dict[int, RegBuffer] = {}
        self._next_id = 0
        self._total_bytes = 0
        self.stats = RegCacheStats()

    @staticmethod
    def _bucket(nbytes: int) -> int:
        size = 4096
        while size < nbytes:
            size <<= 1
        return size

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def setup_cost(self, nbytes: int) -> float:
        """Alloc + register cost this cache avoids on a hit."""
        ic = self.interconnect
        return ic.allocation_time(nbytes) + ic.registration_time(nbytes)

    def acquire(self, nbytes: int) -> tuple[RegBuffer, float]:
        """Return ``(buffer, setup_time)``; setup_time is 0 on a cache hit."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        size = self._bucket(nbytes)
        free = self._free.get(size)
        if free:
            buf = free.pop()
            buf.in_use = True
            self.stats.hits += 1
            self.stats.setup_time_saved += self.setup_cost(size)
            return buf, 0.0
        buf = RegBuffer(self._next_id, size)
        self._next_id += 1
        self._all[buf.buffer_id] = buf
        self._total_bytes += size
        cost = self.setup_cost(size)
        self.stats.misses += 1
        self.stats.setup_time_paid += cost
        if self._total_bytes > self.max_bytes:
            self._reclaim()
        return buf, cost

    def release(self, buf: RegBuffer) -> None:
        if not buf.in_use:
            raise ValueError(f"buffer {buf.buffer_id} already free")
        buf.in_use = False
        self._free.setdefault(buf.size, []).append(buf)

    # -- BufferLease protocol ----------------------------------------------
    def lease(self, nbytes: int) -> BufferLease:
        """Acquire registered memory under a lease; ``setup_time`` on the
        lease carries the registration cost (0 on a cache hit)."""
        buf, setup = self.acquire(nbytes)
        return self._make_lease(
            buf.buffer_id, buf.ensure_data(), nbytes,
            setup_time=setup, label=f"rdma.reg#{buf.buffer_id}",
        )

    def _return_buffer(self, lease: BufferLease) -> None:
        self.release(self._all[lease.buffer_id])

    def _reclaim(self) -> None:
        """Deregister idle buffers, largest first, until under threshold."""
        idle = sorted(
            (b for bs in self._free.values() for b in bs), key=lambda b: -b.size
        )
        for buf in idle:
            if self._total_bytes <= self.max_bytes:
                break
            self._free[buf.size].remove(buf)
            del self._all[buf.buffer_id]
            self._total_bytes -= buf.size
            self.stats.reclaimed += 1

    def emit_stats(self, monitor, prefix: str = F_RDMA_REGCACHE) -> None:
        """Snapshot hit/miss/reclaim counters + registered bytes into
        ``monitor.metrics``."""
        self.stats.emit(monitor, prefix)
        monitor.metrics.gauge(
            metric_name(prefix, "registered_bytes")
        ).set(self._total_bytes)


# ---------------------------------------------------------------------------
# NNTI-like endpoints and connections
# ---------------------------------------------------------------------------

class NntiEndpoint:
    """One process's attachment point to the fabric."""

    def __init__(self, fabric: "NntiFabric", node_id: int, name: str) -> None:
        self.fabric = fabric
        self.node_id = node_id
        self.name = name
        #: Incoming small-message queue (the RDMA Put target ring).
        self.mailbox: deque[tuple[str, bytes]] = deque()
        self.reg_cache = RegistrationCache(fabric.interconnect)

    def poll(self) -> Optional[tuple[str, bytes]]:
        """Pop one delivered small message, or None."""
        return self.mailbox.popleft() if self.mailbox else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NntiEndpoint {self.name} on node {self.node_id}>"


class NntiConnection:
    """A connected endpoint pair with two-way message queues."""

    def __init__(self, fabric: "NntiFabric", a: NntiEndpoint, b: NntiEndpoint) -> None:
        self.fabric = fabric
        self.a = a
        self.b = b

    def _peer(self, me: NntiEndpoint) -> NntiEndpoint:
        if me is self.a:
            return self.b
        if me is self.b:
            return self.a
        raise ValueError(f"{me!r} is not an endpoint of this connection")

    def put_small(self, src: NntiEndpoint, tag: str, data: bytes) -> float:
        """RDMA Put of a small message into the peer's queue; returns time."""
        peer = self._peer(src)
        ic = self.fabric.interconnect
        if src.node_id == peer.node_id:
            # Same node: NNTI still works, at loopback cost.
            t = ic.params.small_msg_overhead
        else:
            t = ic.small_put_time(min(len(data), ic.params.small_msg_threshold))
        peer.mailbox.append((tag, bytes(data)))  # flexlint: ok(FXL006) the Put really lands in the peer's message ring (identity for bytes input)
        return t

    def get_bulk(
        self, dst: NntiEndpoint, data: bytes, concurrent_flows: int = 1
    ) -> tuple[bytes, float]:
        """Receiver-directed Get: ``dst`` fetches ``data`` from the peer.

        Returns ``(payload, time)``.  Both sides' buffers come from their
        registration caches, so steady-state transfers pay no setup.
        """
        src = self._peer(dst)
        ic = self.fabric.interconnect
        nbytes = len(data)
        send_buf, t_src = src.reg_cache.acquire(max(nbytes, 1))
        recv_buf, t_dst = dst.reg_cache.acquire(max(nbytes, 1))
        t = max(t_src, t_dst)  # setups proceed in parallel on the two hosts
        t += ic.params.control_msg_time  # sender's "data ready" notification
        if src.node_id == dst.node_id:
            t += nbytes / ic.params.peak_bw  # loopback DMA
        else:
            t += ic.bulk_transfer_time(nbytes, concurrent_flows)
        src.reg_cache.release(send_buf)
        dst.reg_cache.release(recv_buf)
        return bytes(data), t  # flexlint: ok(FXL006) legacy timing API returns an owned copy; the channel path uses leases


class NntiFabric:
    """Factory/registry of endpoints and connections on one interconnect."""

    def __init__(self, interconnect: Interconnect) -> None:
        self.interconnect = interconnect
        self._endpoints: dict[str, NntiEndpoint] = {}

    def endpoint(self, node_id: int, name: str) -> NntiEndpoint:
        if name in self._endpoints:
            raise ValueError(f"endpoint name {name!r} already taken")
        ep = NntiEndpoint(self, node_id, name)
        self._endpoints[name] = ep
        return ep

    def lookup(self, name: str) -> NntiEndpoint:
        return self._endpoints[name]

    def connect(self, a: NntiEndpoint, b: NntiEndpoint) -> NntiConnection:
        return NntiConnection(self, a, b)


# ---------------------------------------------------------------------------
# Receiver-directed transfer scheduling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransferRequest:
    """One pending bulk Get: which sender, how many bytes."""

    sender: int
    nbytes: int


@dataclass
class ScheduledTransfer:
    """Outcome of scheduling one request."""

    sender: int
    nbytes: int
    start: float
    finish: float


class TransferScheduler:
    """Schedules a receiver's bulk Gets under a concurrency bound.

    Active flows share the receiver's ejection bandwidth max-min (one
    shared link, so: equal split capped by per-flow peak).  The schedule is
    computed by progressive filling — exact for this topology.
    """

    def __init__(
        self,
        interconnect: Interconnect,
        max_concurrent: int = 4,
        endpoint_bandwidth: Optional[float] = None,
    ) -> None:
        """``endpoint_bandwidth`` overrides the receiver's ejection
        bandwidth — e.g. a node's injection split among the co-located
        receiver processes sharing its NIC."""
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if endpoint_bandwidth is not None and endpoint_bandwidth <= 0:
            raise ValueError("endpoint_bandwidth must be positive")
        self.interconnect = interconnect
        self.max_concurrent = max_concurrent
        self.endpoint_bandwidth = endpoint_bandwidth

    def schedule(
        self, requests: Sequence[TransferRequest], start_time: float = 0.0
    ) -> list[ScheduledTransfer]:
        """Compute start/finish times for every request (FIFO admission)."""
        ic = self.interconnect
        peak = ic.params.peak_bw
        latency = ic.params.latency
        ejection = (
            self.endpoint_bandwidth
            if self.endpoint_bandwidth is not None
            else ic.injection_bw
        )
        pending = deque(enumerate(requests))
        active: dict[int, list] = {}  # idx -> [sender, remaining, start]
        results: dict[int, ScheduledTransfer] = {}
        now = float(start_time)

        def admit() -> None:
            while pending and len(active) < self.max_concurrent:
                idx, req = pending.popleft()
                if req.nbytes < 0:
                    raise ValueError("transfer size must be >= 0")
                active[idx] = [req.sender, float(req.nbytes), now + ic.params.latency]

        admit()
        while active:
            rate = min(peak, ejection / len(active))
            # Next event: the flow with least remaining bytes completes.
            idx_done = min(active, key=lambda i: active[i][1])
            sender, remaining, started = active[idx_done]
            dt = remaining / rate
            # No flow finishes faster than its own bytes at peak bandwidth
            # after its start: progressive filling can drain a late-admitted
            # flow's bytes before its latency elapses, which would otherwise
            # yield an unphysical zero-duration transfer.
            finish = max(
                max(now, started) + dt,
                started + requests[idx_done].nbytes / peak,
            )
            if requests[idx_done].nbytes == 0:
                finish = max(finish, started + latency)
            for i, entry in active.items():
                if i != idx_done:
                    entry[1] -= rate * dt
                    if entry[1] < 0:
                        entry[1] = 0.0
            now = finish
            results[idx_done] = ScheduledTransfer(sender, requests[idx_done].nbytes, started, finish)
            del active[idx_done]
            admit()

        return [results[i] for i in range(len(requests))]

    def makespan(self, requests: Sequence[TransferRequest]) -> float:
        """Total time to drain all requests."""
        if not requests:
            return 0.0
        return max(t.finish for t in self.schedule(requests))


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

class RdmaChannel(Channel):
    """One-directional inter-node channel mirroring :class:`ShmChannel`.

    ``send`` really moves bytes to the receiver and returns the simulated
    time the operation costs; ``recv`` pops delivered
    :class:`~repro.transport.buffers.WireBuffer` spans.  Small messages
    go through Put into the peer's message ring (one staging copy).
    Large messages gather straight into leased registered send memory
    (the one CPU copy), are "transferred" by DMA into leased registered
    receive memory, and arrive as a span over the receiver's registered
    buffer — releasing it returns the registration lease.
    """

    def __init__(
        self,
        connection: NntiConnection,
        sender: NntiEndpoint,
        monitor=None,
        injector: Optional[TransportFaultInjector] = None,
    ) -> None:
        self.connection = connection
        self.sender = sender
        self.receiver = connection._peer(sender)
        self._delivered: deque[WireBuffer] = deque()
        self.small_sends = 0
        self.large_sends = 0
        #: Optional PerfMonitor: each send records a ``transport`` event
        #: carrying the *simulated* transfer time, and ``emit_stats``
        #: publishes both endpoints' registration-cache counters.
        self.monitor = monitor
        #: Optional deterministic fault source consulted before sends
        #: (send timeout, torn send, peer disconnect, registration
        #: failure — the failure modes a real fabric surfaces).
        self.injector = injector

    def _maybe_inject_fault(self, nbytes: int) -> None:
        if self.injector is None:
            return
        kind = self.injector.next_fault()
        if kind is None:
            return
        record_injected(self.monitor, "rdma", kind, nbytes=nbytes)
        raise fault_exception(
            kind, f"injected {kind.value} on rdma send ({nbytes} B)"
        )

    def send(
        self,
        payload: Union[bytes, memoryview, np.ndarray, WireBuffer],
        concurrent_flows: int = 1,
        timeout: Optional[float] = None,
    ) -> float:
        """Move ``payload`` to the receiver; returns elapsed (simulated) time.

        ``timeout`` exists for signature parity with
        :meth:`ShmChannel.send` (the drain pipeline passes one); time is
        simulated here, so it only bounds injected-fault semantics.
        """
        vec = payload if isinstance(payload, WireVector) else WireVector((payload,))
        return self._sendv(vec, concurrent_flows)

    def sendv(
        self, parts, concurrent_flows: int = 1, timeout: Optional[float] = None
    ) -> float:
        """Vectored send: one protocol round (Put or control+Get) moves
        every part of a step, mirroring :meth:`ShmChannel.sendv` — the
        parts gather straight into registered send memory, with no
        intermediate join."""
        vec = parts if isinstance(parts, WireVector) else WireVector(parts)
        return self._sendv(vec, concurrent_flows)

    def _sendv(self, vec: WireVector, concurrent_flows: int) -> float:
        total = vec.nbytes
        self._maybe_inject_fault(total)
        ic = self.connection.fabric.interconnect
        if total <= ic.params.small_msg_threshold:
            # Gather into the Put source; the ring entry is the consumer's
            # final buffer (delivered as a view over it).
            data = vec.tobytes()  # flexlint: ok(FXL006) small Puts stage through the peer's message ring by design
            t = self.connection.put_small(self.sender, "data", data)
            # Deliver straight to the channel (the mailbox entry is ours).
            self.receiver.mailbox.pop()
            wb = WireBuffer(data, ownership=Ownership.HEAP, copies=COPIES_RDMA_SMALL)
            self._delivered.append(wb)
            self.small_sends += 1
            path = "put_small"
        else:
            t, wb = self._send_bulk(vec, total, concurrent_flows)
            self._delivered.append(wb)
            self.large_sends += 1
            path = "get_bulk"
        if self.monitor is not None:
            self.monitor.record(
                "transport", "rdma.send",
                start=self.monitor.clock(), duration=t,
                nbytes=total, path=path,
            )
            self.monitor.metrics.counter("rdma.bytes_sent").inc(total)
            self.monitor.metrics.counter("rdma.messages_sent").inc()
        return t

    def _send_bulk(
        self, vec: WireVector, total: int, concurrent_flows: int
    ) -> tuple[float, WireBuffer]:
        """Control message + receiver-directed Get over leased registered
        buffers on both hosts (setups proceed in parallel)."""
        ic = self.connection.fabric.interconnect
        send_lease = self.sender.reg_cache.lease(total)
        try:
            recv_lease = self.receiver.reg_cache.lease(total)
        except BaseException:  # flexlint: ok(FXL001) lease cleanup must cover every raise, then re-raises
            send_lease.release()
            raise
        try:
            t = max(send_lease.setup_time, recv_lease.setup_time)
            vec.copy_into(send_lease.data)  # copy 1: gather into registered memory
            t += ic.params.control_msg_time  # sender's "data ready" notification
            if self.sender.node_id == self.receiver.node_id:
                t += total / ic.params.peak_bw  # loopback DMA
            else:
                t += ic.bulk_transfer_time(total, concurrent_flows)
            # The Get itself: NIC-driven DMA into the receiver's registered
            # buffer — priced above, not counted as a CPU copy.
            recv_lease.data[:total] = send_lease.data[:total]
            # Ownership of recv_lease moves into the WireBuffer here; the
            # consumer's release() returns the registration to the cache.
            wb = WireBuffer.from_lease(
                recv_lease, total, ownership=Ownership.RDMA, copies=COPIES_RDMA_BULK
            )
        except BaseException:  # flexlint: ok(FXL001) lease cleanup must cover every raise, then re-raises
            try:
                send_lease.release()
            finally:
                recv_lease.release()
            raise
        send_lease.release()
        return t, wb

    def recv(self, timeout: Optional[float] = None) -> Optional[WireBuffer]:
        """Pop the next delivered span (``timeout`` accepted for signature
        parity with :class:`~repro.transport.shm.ShmChannel`; delivery
        here is synchronous, so there is nothing to wait on).  Bulk spans
        must be released by the consumer to return the registration
        lease."""
        if not self._delivered:
            return None
        wb = self._delivered.popleft()
        self.observe_delivery(
            wb, "put_small" if wb.ownership is Ownership.HEAP else "get_bulk"
        )
        return wb

    def close(self) -> None:
        """Drop undelivered spans, returning any registration leases."""
        while self._delivered:
            wb = self._delivered.popleft()
            if not wb.released:
                wb.release()

    def emit_stats(self, monitor=None) -> None:
        """Publish both endpoints' registration-cache counters and the
        channel's send counts into a monitor's metrics registry."""
        mon = monitor or self.monitor
        if mon is None:
            raise ValueError("no monitor bound to this channel")
        self.sender.reg_cache.emit_stats(mon, prefix=f"rdma.regcache.{self.sender.name}")
        self.receiver.reg_cache.emit_stats(mon, prefix=f"rdma.regcache.{self.receiver.name}")
        mon.metrics.gauge("rdma.channel.small_sends").set(self.small_sends)
        mon.metrics.gauge("rdma.channel.large_sends").set(self.large_sends)
