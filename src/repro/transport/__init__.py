"""FlexIO's low-level data-movement transports.

Two transports, mirroring Section II.D/II.E of the paper:

* :mod:`repro.transport.shm` — intra-node movement: FastForward-style
  single-producer single-consumer lock-free circular queues for small
  (control/handshake) messages, a shared-memory buffer pool with a free
  list for large payloads (two copies), and an XPMEM-like page-mapping
  path that eliminates the producer-side copy (one copy).  The queue and
  pool are *real* — they move actual bytes and are exercised across Python
  threads in the tests — and a calibrated cost model prices the same
  operations for the discrete-event runs.

* :mod:`repro.transport.rdma` — inter-node movement: an NNTI-like
  portability layer (connect / register / put / get) above the machine's
  interconnect model, with the registration-cache buffer pool, a
  small-message queue pair, and receiver-directed scheduled RDMA Get for
  bulk data.
"""

from repro.transport.faults import (
    FaultKind,
    PeerDisconnected,
    RegistrationFailed,
    TornSend,
    TransportFault,
    TransportFaultInjector,
    TransportTimeout,
    injector_from_env,
    parse_fault_spec,
)
from repro.transport.shm import (
    QueueClosed,
    QueueEmpty,
    QueueFull,
    ShmBufferPool,
    ShmChannel,
    ShmCostModel,
    SPSCQueue,
)
from repro.transport.rdma import (
    NntiEndpoint,
    NntiFabric,
    RdmaChannel,
    RegistrationCache,
    TransferScheduler,
)

__all__ = [
    "FaultKind",
    "NntiEndpoint",
    "NntiFabric",
    "PeerDisconnected",
    "QueueClosed",
    "QueueEmpty",
    "QueueFull",
    "RdmaChannel",
    "RegistrationCache",
    "RegistrationFailed",
    "ShmBufferPool",
    "ShmChannel",
    "ShmCostModel",
    "SPSCQueue",
    "TornSend",
    "TransferScheduler",
    "TransportFault",
    "TransportFaultInjector",
    "TransportTimeout",
    "injector_from_env",
    "parse_fault_spec",
]
