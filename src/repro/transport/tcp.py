"""TCP inter-process transport: the fourth rung of the degradation ladder.

The SHM and RDMA channels simulate intra-node movement inside one
process; :class:`TcpChannel` is the first transport that crosses a real
OS boundary.  It implements the same
:class:`~repro.transport.buffers.Channel` ABC over a stream socket:

* **framing** — each message is a little-endian ``u64`` length prefix
  followed by the payload bytes; scatter-gather parts go out through
  ``socket.sendmsg`` so the producer never joins them into an
  intermediate ``bytes``;
* **delivery** — ``recv`` reads the frame straight into a freshly
  allocated uint8 array (one kernel→user copy after the user→kernel
  copy on the sending side), wraps it in a
  :class:`~repro.transport.buffers.WireBuffer` with ``copies=2``, and
  reports it into the ``transport.copies`` histogram like every other
  rung;
* **faults** — socket timeouts surface as
  :class:`~repro.transport.faults.TransportTimeout`, resets and broken
  pipes as :class:`~repro.transport.faults.PeerDisconnected`, and a
  connection that dies mid-frame as
  :class:`~repro.transport.faults.TornSend`, so the stream layer's
  bounded-retry/degradation machinery treats TCP exactly like SHM and
  RDMA.  A seeded :class:`TransportFaultInjector` is consulted before
  each send for chaos runs.

Constructed without a socket the channel wraps a ``socket.socketpair``
— real kernel sockets, but loopback within one process — which is how
it slots into the rdma→tcp→shm→buffered ladder for single-process
runs; :meth:`TcpChannel.connect` dials a daemon's data port for the
genuinely multi-process path.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.transport.buffers import (
    Channel,
    Ownership,
    WireBuffer,
    WireVector,
    as_byte_view,
)
from repro.transport.faults import (
    FaultKind,
    PeerDisconnected,
    TornSend,
    TransportFaultInjector,
    TransportTimeout,
    fault_exception,
    record_injected,
)

__all__ = ["TcpChannel", "COPIES_TCP", "FRAME_PREFIX"]

#: A TCP delivery always pays two copies: producer memory → kernel
#: socket buffer, kernel socket buffer → the consumer-side frame array.
COPIES_TCP = 2

#: Little-endian u64 payload-length prefix in front of every frame.
FRAME_PREFIX = struct.Struct("<Q")

#: Refuse absurd frame lengths before allocating (corrupt prefix guard).
MAX_FRAME = 1 << 34  # 16 GiB


#: How long an injected DELAYED_FRAME holds the frame back.
DELAY_INJECT_S = 0.05


def _set_timeout(sock: socket.socket, timeout: float) -> None:
    """``settimeout`` with the typed-fault mapping: on an already-dead
    socket it raises ``OSError``, which must not leak raw to callers."""
    try:
        sock.settimeout(timeout)
    except OSError as exc:
        raise PeerDisconnected(f"tcp socket unusable: {exc}") from exc


def _recv_exact(sock: socket.socket, out: memoryview, timeout: float) -> int:
    """Fill ``out`` completely from ``sock``; returns bytes read (may be
    short only when the peer closed the connection)."""
    _set_timeout(sock, timeout)
    got = 0
    total = len(out)
    while got < total:
        try:
            n = sock.recv_into(out[got:], total - got)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"tcp recv timed out after {timeout}s ({got}/{total} B)"
            ) from exc
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise PeerDisconnected(f"tcp peer vanished mid-recv: {exc}") from exc
        if n == 0:
            break
        got += n
    return got


class TcpChannel(Channel):
    """One bidirectional stream-socket data channel.

    ``TcpChannel()`` (no socket) wraps a connected ``socketpair`` —
    sends land on one end and ``recv`` drains the other, which is the
    loopback shape the step drainer expects when TCP is just a ladder
    rung inside a single process.  ``TcpChannel(sock)`` adopts an
    already connected socket (daemon side / after ``connect``), where
    sends and receives share the one socket.
    """

    def __init__(
        self,
        sock: Optional[socket.socket] = None,
        monitor=None,
        injector: Optional[TransportFaultInjector] = None,
    ) -> None:
        self.monitor = monitor
        self.injector = injector
        self._closed = False
        if sock is None:
            # Loopback rung: real kernel sockets, one process.
            self._send_sock, self._recv_sock = socket.socketpair()
            self.loopback = True
        else:
            self._send_sock = self._recv_sock = sock
            self.loopback = False
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        monitor=None,
        injector: Optional[TransportFaultInjector] = None,
        timeout: float = 5.0,
    ) -> "TcpChannel":
        """Dial a daemon's data port and wrap the connection."""
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"tcp connect to {host}:{port} timed out after {timeout}s"
            ) from exc
        except OSError as exc:
            raise PeerDisconnected(f"tcp connect to {host}:{port} failed: {exc}") from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            # setsockopt can fail if the peer already reset the fresh
            # connection; without the close the descriptor leaks.
            sock.close()
            raise PeerDisconnected(
                f"tcp connect to {host}:{port} failed: {exc}"
            ) from exc
        return cls(sock, monitor=monitor, injector=injector)

    # -- producer ---------------------------------------------------------
    def send(
        self,
        payload: Union[bytes, memoryview, np.ndarray, WireBuffer],
        timeout: float = 5.0,
    ) -> None:
        wb = WireBuffer.wrap(payload)
        if self.monitor is not None:
            with self.monitor.span("transport", "tcp.send", nbytes=wb.nbytes):
                self._sendv((wb.as_array(),), wb.nbytes, timeout)
            self.monitor.metrics.counter("tcp.bytes_sent").inc(wb.nbytes)
            self.monitor.metrics.counter("tcp.messages_sent").inc()
        else:
            self._sendv((wb.as_array(),), wb.nbytes, timeout)

    def sendv(
        self,
        parts: Union[WireVector, Sequence[Union[bytes, np.ndarray, WireBuffer]]],
        timeout: float = 5.0,
    ) -> None:
        """Vectored send: one frame, every part gathered by ``sendmsg``
        (no intermediate join on the producer side)."""
        vec = parts if isinstance(parts, WireVector) else WireVector(parts)
        total = vec.nbytes
        views = tuple(p.as_array() for p in vec)
        if self.monitor is not None:
            with self.monitor.span(
                "transport", "tcp.sendv", nbytes=total, parts=len(views)
            ):
                self._sendv(views, total, timeout)
            self.monitor.metrics.counter("tcp.bytes_sent").inc(total)
            self.monitor.metrics.counter("tcp.messages_sent").inc()
        else:
            self._sendv(views, total, timeout)

    def _maybe_inject_fault(self, total: int) -> Optional[FaultKind]:
        """Consult the injector; raises for immediate faults, returns a
        kind the send path itself must act out (torn/dropped/delayed
        frames need real socket effects, not just an exception)."""
        if self.injector is None:
            return None
        kind = self.injector.next_fault()
        if kind is None:
            return None
        record_injected(self.monitor, "tcp", kind, nbytes=total)
        if kind in (
            FaultKind.TORN_FRAME, FaultKind.DROPPED_FRAME, FaultKind.DELAYED_FRAME
        ):
            return kind
        if kind is FaultKind.TORN_SEND:
            raise TornSend(f"injected torn send after {total // 2}/{total} B")
        if kind is FaultKind.CONN_RESET:
            # A real reset: the socket dies under us, both directions.
            self._abort_sockets()
            raise PeerDisconnected(f"injected connection reset ({total} B frame)")
        if kind is FaultKind.HALF_OPEN:
            # Half-open: our writes appear to succeed but nothing will
            # ever come back — stop reading so the caller's reply recv
            # times out, the way a silently-dead WAN peer behaves.
            try:
                self._recv_sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass
            return None
        raise fault_exception(kind, f"injected {kind.value} on tcp send ({total} B)")

    def _abort_sockets(self) -> None:
        for sock in {self._send_sock, self._recv_sock}:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _sendv(self, views: Sequence[np.ndarray], total: int, timeout: float) -> None:
        if self._closed:
            raise PeerDisconnected("send on closed TcpChannel")
        frame_kind = self._maybe_inject_fault(total)
        if frame_kind is FaultKind.DROPPED_FRAME:
            # The frame "leaves" but never arrives; the peer's reply
            # (which will never come) is the caller's timeout.
            return
        if frame_kind is FaultKind.DELAYED_FRAME:
            time.sleep(DELAY_INJECT_S)
        prefix = FRAME_PREFIX.pack(total)
        parts = [memoryview(prefix)]
        parts.extend(memoryview(v) for v in views)
        if frame_kind is FaultKind.TORN_FRAME:
            # Put the prefix and roughly half the payload on the wire,
            # then kill the connection: the receiver sees a genuinely
            # torn frame, not just a client-side exception.
            torn = b"".join(bytes(p) for p in parts)[: FRAME_PREFIX.size + total // 2]  # flexlint: ok(FXL006) chaos-only path; the copy IS the fault being injected
            try:
                self._send_sock.sendall(torn)
            except OSError:
                pass
            self._abort_sockets()
            raise TornSend(
                f"injected torn frame after {total // 2}/{total} B"
            )
        _set_timeout(self._send_sock, timeout)
        sent = 0
        frame_len = FRAME_PREFIX.size + total
        try:
            while parts:
                n = self._send_sock.sendmsg(parts)
                sent += n
                # Drop fully sent parts, trim a partially sent head.
                while parts and n >= len(parts[0]):
                    n -= len(parts[0])
                    parts.pop(0)
                if parts and n:
                    parts[0] = parts[0][n:]
        except socket.timeout as exc:
            raise TransportTimeout(
                f"tcp send timed out after {timeout}s ({sent}/{frame_len} B)"
            ) from exc
        except (ConnectionResetError, BrokenPipeError) as exc:
            if sent:
                raise TornSend(
                    f"tcp peer vanished after {sent}/{frame_len} B: {exc}"
                ) from exc
            raise PeerDisconnected(f"tcp peer vanished before send: {exc}") from exc
        except OSError as exc:
            raise PeerDisconnected(f"tcp send failed: {exc}") from exc
        self.messages_sent += 1
        self.bytes_sent += total

    # -- consumer ---------------------------------------------------------
    def recv(self, timeout: float = 5.0) -> WireBuffer:
        """The next frame as a heap-owned :class:`WireBuffer`."""
        if self.monitor is not None:
            with self.monitor.span("transport", "tcp.recv") as sp:
                wb = self._recv(timeout)
                sp.add_bytes(wb.nbytes)
                sp.set_attr("path", "tcp")
                sp.set_attr("copies", wb.copies)
            return wb
        return self._recv(timeout)

    def _recv(self, timeout: float) -> WireBuffer:
        if self._closed:
            raise PeerDisconnected("recv on closed TcpChannel")
        prefix = bytearray(FRAME_PREFIX.size)  # flexlint: ok(FXL006) 8-byte length-prefix scratch, not payload
        got = _recv_exact(self._recv_sock, memoryview(prefix), timeout)
        if got == 0:
            raise PeerDisconnected("tcp peer closed the connection")
        if got < FRAME_PREFIX.size:
            raise TornSend(
                f"tcp peer closed mid-prefix ({got}/{FRAME_PREFIX.size} B)"
            )
        (length,) = FRAME_PREFIX.unpack(prefix)
        if length > MAX_FRAME:
            raise PeerDisconnected(f"corrupt tcp frame length {length}")
        payload = np.empty(int(length), dtype=np.uint8)
        got = _recv_exact(self._recv_sock, memoryview(payload), timeout)
        if got < length:
            raise TornSend(f"tcp peer closed mid-frame ({got}/{length} B)")
        wb = WireBuffer(payload, ownership=Ownership.HEAP, copies=COPIES_TCP)
        self.observe_delivery(wb, "tcp")
        return wb

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in {self._send_sock, self._recv_sock}:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def emit_stats(self, monitor=None) -> None:
        """Publish send counters into a monitor's metrics registry."""
        mon = monitor or self.monitor
        if mon is None:
            raise ValueError("no monitor bound to this channel")
        mon.metrics.gauge("tcp.channel.messages_sent").set(self.messages_sent)
        mon.metrics.gauge("tcp.channel.bytes_sent").set(self.bytes_sent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "loopback" if self.loopback else "remote"
        state = "closed" if self._closed else "open"
        return f"<TcpChannel {mode} {state} sent={self.messages_sent}>"


def send_frame(sock: socket.socket, payload, timeout: float = 5.0) -> None:
    """Module-level one-shot frame send over a raw socket (control-plane
    helper shared with :mod:`repro.net`).  Every socket-layer failure —
    including a dead socket at ``settimeout`` — surfaces as a typed
    :class:`~repro.transport.faults.TransportFault`, never a raw
    ``OSError``."""
    view = as_byte_view(payload)
    _set_timeout(sock, timeout)
    try:
        sock.sendall(FRAME_PREFIX.pack(view.nbytes))
        sock.sendall(view)
    except socket.timeout as exc:
        raise TransportTimeout(f"frame send timed out after {timeout}s") from exc
    except (ConnectionResetError, BrokenPipeError, OSError) as exc:
        raise PeerDisconnected(f"frame send failed: {exc}") from exc


def recv_frame(sock: socket.socket, timeout: float = 5.0) -> Optional[np.ndarray]:
    """Module-level one-shot frame receive; None on orderly peer close."""
    prefix = bytearray(FRAME_PREFIX.size)  # flexlint: ok(FXL006) 8-byte length-prefix scratch, not payload
    got = _recv_exact(sock, memoryview(prefix), timeout)
    if got == 0:
        return None
    if got < FRAME_PREFIX.size:
        raise TornSend(f"peer closed mid-prefix ({got}/{FRAME_PREFIX.size} B)")
    (length,) = FRAME_PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise PeerDisconnected(f"corrupt frame length {length}")
    payload = np.empty(int(length), dtype=np.uint8)
    got = _recv_exact(sock, memoryview(payload), timeout)
    if got < length:
        raise TornSend(f"peer closed mid-frame ({got}/{length} B)")
    return payload
