"""Shared-memory intra-node transport (paper Section II.D).

Three pieces:

1. :class:`SPSCQueue` — a FastForward-inspired single-producer
   single-consumer, circular, lock-free FIFO.  Producer and consumer keep
   *separate* head/tail indices (never shared), each entry occupies its own
   cache-line-aligned region, and a per-entry status flag (EMPTY/FULL) is
   the only coordination: the producer stores payload then flips the flag
   to FULL; the consumer polls the flag, copies out, and flips it back to
   EMPTY.  The layout math (alignment, padding, flag placement) follows the
   paper even though Python's GIL supplies the memory-ordering guarantees a
   C implementation would need fences for.

2. :class:`ShmBufferPool` — producer-owned pool of reusable buffers indexed
   by a per-size free list; large messages are gathered into a leased pool
   buffer and announced via a small control message through the queue, and
   the consumer receives a :class:`~repro.transport.buffers.WireBuffer`
   view over the shared buffer (one staging copy; releasing the span
   returns the buffer).  The XPMEM path instead "maps" the producer's
   source buffer into the consumer (zero-copy handoff of a read-only
   view), so the transport itself performs no copy at all.

3. :class:`ShmCostModel` — prices the same operations for discrete-event
   runs: per-message queue latencies by NUMA relationship, and per-copy
   memcpy costs from the node's memory bandwidth.
"""

from __future__ import annotations

import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis import sanitize
from repro.machine.topology import NodeType
from repro.obs.names import F_SHM_POOL, F_SHM_QUEUE, metric_name
from repro.transport.buffers import (
    COPIES_INLINE,
    COPIES_POOL,
    COPIES_XPMEM,
    BufferLease,
    Channel,
    LeasePool,
    Ownership,
    WireBuffer,
    WireVector,
    as_byte_view,
)
from repro.transport.faults import (
    FaultKind,
    TornSend,
    TransportFaultInjector,
    TransportTimeout,
    fault_exception,
    record_injected,
)
from repro.util import CACHE_LINE, align_up

#: Back-compat alias; ``np.frombuffer(part)`` is copy-free for any
#: bytes-like (the old local helper round-tripped through ``bytes(part)``
#: and paid a needless copy per memoryview part).
_as_byte_view = as_byte_view

_EMPTY = 0
_FULL = 1

# Per-entry header: 1-byte status flag + 3 pad + 4-byte payload length.
_HDR = struct.Struct("<B3xI")


class QueueFull(TransportTimeout):
    """Blocking enqueue found no EMPTY entry before its deadline.

    A :class:`~repro.transport.faults.TransportTimeout`, so retry code
    catches SHM enqueue and dequeue timeouts (and RDMA timeouts) as one
    type; still a ``RuntimeError`` for pre-existing callers.
    """


class QueueEmpty(TransportTimeout):
    """Blocking dequeue found no FULL entry before its deadline."""


class QueueClosed(RuntimeError):
    """Operation on a queue whose producer has closed it."""


@dataclass
class QueueStats:
    """Instrumentation counters (feed the performance-monitoring layer)."""

    enqueued: int = 0
    dequeued: int = 0
    bytes_enqueued: int = 0
    producer_spins: int = 0
    consumer_spins: int = 0

    def emit(self, monitor, prefix: str = F_SHM_QUEUE) -> None:
        """Publish a snapshot of these counters into ``monitor.metrics``."""
        m = monitor.metrics
        m.gauge(metric_name(prefix, "enqueued")).set(self.enqueued)
        m.gauge(metric_name(prefix, "dequeued")).set(self.dequeued)
        m.gauge(metric_name(prefix, "bytes_enqueued")).set(self.bytes_enqueued)
        m.gauge(metric_name(prefix, "producer_spins")).set(self.producer_spins)
        m.gauge(metric_name(prefix, "consumer_spins")).set(self.consumer_spins)


class SPSCQueue:
    """Lock-free single-producer single-consumer circular byte queue.

    ``slots`` entries of ``payload_size`` bytes each; every entry is padded
    to a multiple of the cache-line size and starts on a cache-line
    boundary so adjacent entries never share a line (no false sharing
    between the producer writing entry *i* and the consumer reading entry
    *i-1*).
    """

    def __init__(self, slots: int = 64, payload_size: int = 240) -> None:
        if slots < 2:
            raise ValueError("need at least 2 slots")
        if payload_size < 1:
            raise ValueError("payload_size must be positive")
        self.slots = int(slots)
        self.payload_size = int(payload_size)
        #: Bytes per entry: header + payload, padded out to full cache lines.
        self.entry_size = align_up(_HDR.size + payload_size, CACHE_LINE)
        self._buf = np.zeros(self.slots * self.entry_size, dtype=np.uint8)
        self._mv = memoryview(self._buf)
        # Producer-private and consumer-private cursors (deliberately NOT
        # shared state — FastForward's key idea).
        self._head = 0  # next entry to enqueue (producer only)
        self._tail = 0  # next entry to dequeue (consumer only)
        self._closed = False
        self.stats = QueueStats()
        # Concurrency sanitizer, captured at construction so the disabled
        # path costs one None check per operation (FLEXIO_SANITIZE=1).
        # It learns producer/consumer thread ownership from the first
        # try_enqueue/try_dequeue and flags SPSC-discipline violations.
        self._san = sanitize.get()

    # ------------------------------------------------------------------
    def _entry(self, idx: int) -> int:
        return idx * self.entry_size

    def _flag(self, idx: int) -> int:
        return self._buf[self._entry(idx)]

    # -- producer side ----------------------------------------------------
    def try_enqueue(self, data: Union[bytes, bytearray, memoryview]) -> bool:
        """Enqueue without blocking; returns False if the next entry is FULL.

        The payload is sliced straight into the slot — no ``bytes(...)``
        coercion, so memoryviews and contiguous arrays enqueue with the
        single producer→slot copy (only non-contiguous arrays are
        compacted first by :func:`as_byte_view`).
        """
        view = as_byte_view(data)
        return self.try_enqueuev((view,), view.nbytes)

    def try_enqueuev(self, views: Sequence[np.ndarray], total: Optional[int] = None) -> bool:
        """Vectored enqueue: gather ``views`` (flat uint8 arrays) into one
        slot with one copy per part and no intermediate join."""
        if self._san is not None:
            self._san.note_spsc(self, "producer")
        if self._closed:
            raise QueueClosed("enqueue on closed queue")
        if total is None:
            total = sum(v.nbytes for v in views)
        if total > self.payload_size:
            raise ValueError(
                f"message of {total} B exceeds slot payload {self.payload_size} B"
            )
        base = self._entry(self._head)
        if self._buf[base] != _EMPTY:
            self.stats.producer_spins += 1
            return False
        # Write payload first, status flag last (release ordering).
        _HDR.pack_into(self._mv, base, _EMPTY, total)
        off = base + _HDR.size
        for v in views:
            n = v.nbytes
            self._buf[off : off + n] = v
            off += n
        self._buf[base] = _FULL
        self._head = (self._head + 1) % self.slots
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += total
        return True

    def enqueue(self, data: Union[bytes, bytearray, memoryview], timeout: float = 5.0) -> None:
        """Blocking enqueue; spins (with micro-sleeps) until an entry frees."""
        view = as_byte_view(data)
        self.enqueuev((view,), view.nbytes, timeout=timeout)

    def enqueuev(
        self,
        views: Sequence[np.ndarray],
        total: Optional[int] = None,
        timeout: float = 5.0,
    ) -> None:
        """Blocking vectored enqueue; spins until an entry frees."""
        if total is None:
            total = sum(v.nbytes for v in views)
        deadline = time.monotonic() + timeout
        while not self.try_enqueuev(views, total):
            if time.monotonic() > deadline:
                raise QueueFull(f"queue full for {timeout}s")
            time.sleep(1e-6)

    def close(self) -> None:
        """Producer signals End-of-Stream; pending entries remain readable."""
        self._closed = True

    # -- consumer side ----------------------------------------------------
    def try_dequeue(self) -> Optional[bytes]:
        """Dequeue without blocking; None if the next entry is EMPTY."""
        if self._san is not None:
            self._san.note_spsc(self, "consumer")
        base = self._entry(self._tail)
        if self._buf[base] != _FULL:
            self.stats.consumer_spins += 1
            if self._closed:
                raise QueueClosed("end of stream")
            return None
        _, length = _HDR.unpack_from(self._mv, base)
        pstart = base + _HDR.size
        out = bytes(self._mv[pstart : pstart + length])  # flexlint: ok(FXL006) the slot must be copied out before it is handed back to the producer (inline path's second copy)
        # Copy out first, then release the entry to the producer.
        self._buf[base] = _EMPTY
        self._tail = (self._tail + 1) % self.slots
        self.stats.dequeued += 1
        return out

    def dequeue(self, timeout: float = 5.0) -> bytes:
        """Blocking dequeue; raises :class:`QueueClosed` at end of stream."""
        deadline = time.monotonic() + timeout
        while True:
            item = self.try_dequeue()
            if item is not None:
                return item
            if time.monotonic() > deadline:
                raise QueueEmpty(f"queue empty for {timeout}s")
            time.sleep(1e-6)

    def __len__(self) -> int:
        """Entries currently FULL (approximate under concurrency)."""
        return int(np.count_nonzero(self._buf[:: self.entry_size] == _FULL))

    def emit_stats(self, monitor, prefix: str = F_SHM_QUEUE) -> None:
        """Snapshot counters + current depth into ``monitor.metrics``."""
        self.stats.emit(monitor, prefix)
        monitor.metrics.gauge(metric_name(prefix, "depth")).set(len(self))


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

@dataclass
class _PoolBuffer:
    buffer_id: int
    data: np.ndarray
    in_use: bool = False

    @property
    def size(self) -> int:
        return self.data.nbytes


@dataclass
class PoolStats:
    allocations: int = 0
    reuses: int = 0
    reclaimed: int = 0
    peak_bytes: int = 0


class ShmBufferPool(LeasePool):
    """Producer-owned pool of large-message buffers with per-size free lists.

    ``acquire`` rounds the request up to the next power of two and serves
    from the free list when possible (the "closest size" search of the
    paper); ``release`` returns a buffer for reuse.  ``max_bytes`` is the
    configurable threshold that triggers reclamation of idle buffers.
    :meth:`lease` wraps the same acquire/release cycle in the buffer
    plane's :class:`~repro.transport.buffers.BufferLease` protocol (shared
    with the RDMA registration cache).
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        LeasePool.__init__(self)
        self.max_bytes = int(max_bytes)
        self._buffers: dict[int, _PoolBuffer] = {}
        self._free: dict[int, list[int]] = {}  # size -> [buffer_id]
        self._next_id = 0
        self._total_bytes = 0
        self._lock = sanitize.make_lock("shm.pool")
        self.stats = PoolStats()

    @staticmethod
    def _bucket(nbytes: int) -> int:
        size = 1
        while size < nbytes:
            size <<= 1
        return size

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def acquire(self, nbytes: int) -> _PoolBuffer:
        """Get a buffer of at least ``nbytes`` (reuse before allocate)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        size = self._bucket(nbytes)
        with self._lock:
            free = self._free.get(size)
            if free:
                buf = self._buffers[free.pop()]
                buf.in_use = True
                self.stats.reuses += 1
                return buf
            buf = _PoolBuffer(self._next_id, np.zeros(size, dtype=np.uint8), in_use=True)
            self._next_id += 1
            self._buffers[buf.buffer_id] = buf
            self._total_bytes += size
            self.stats.allocations += 1
            self.stats.peak_bytes = max(self.stats.peak_bytes, self._total_bytes)
            if self._total_bytes > self.max_bytes:
                self._reclaim_locked()
            return buf

    def release(self, buffer_id: int) -> None:
        """Return a buffer to its free list."""
        with self._lock:
            buf = self._buffers.get(buffer_id)
            if buf is None:
                raise KeyError(f"unknown buffer id {buffer_id}")
            if not buf.in_use:
                raise ValueError(f"buffer {buffer_id} already free")
            buf.in_use = False
            self._free.setdefault(buf.size, []).append(buffer_id)

    def get(self, buffer_id: int) -> _PoolBuffer:
        return self._buffers[buffer_id]

    # -- BufferLease protocol ----------------------------------------------
    def lease(self, nbytes: int) -> BufferLease:
        """Acquire a pool buffer under a lease (release via the lease)."""
        buf = self.acquire(nbytes)  # flexlint: ok(FXL012) ownership transfers by buffer_id into the constructed lease; its release() returns the buffer
        return self._make_lease(
            buf.buffer_id, buf.data, nbytes, label=f"shm.pool#{buf.buffer_id}"
        )

    def _return_buffer(self, lease: BufferLease) -> None:
        self.release(lease.buffer_id)

    def _reclaim_locked(self) -> None:
        """Drop idle buffers (largest first) until under the threshold."""
        idle = sorted(
            (b for b in self._buffers.values() if not b.in_use),
            key=lambda b: -b.size,
        )
        for buf in idle:
            if self._total_bytes <= self.max_bytes:
                break
            self._free[buf.size].remove(buf.buffer_id)
            del self._buffers[buf.buffer_id]
            self._total_bytes -= buf.size
            self.stats.reclaimed += 1

    def emit_stats(self, monitor, prefix: str = F_SHM_POOL) -> None:
        """Snapshot pool counters + occupancy into ``monitor.metrics``."""
        m = monitor.metrics
        m.gauge(metric_name(prefix, "occupancy_bytes")).set(self._total_bytes)
        m.gauge(metric_name(prefix, "peak_bytes")).set(self.stats.peak_bytes)
        m.gauge(metric_name(prefix, "allocations")).set(self.stats.allocations)
        m.gauge(metric_name(prefix, "reuses")).set(self.stats.reuses)
        m.gauge(metric_name(prefix, "reclaimed")).set(self.stats.reclaimed)


# ---------------------------------------------------------------------------
# Channel: small messages through the queue, large ones through the pool
# ---------------------------------------------------------------------------

_CTRL = struct.Struct("<BQQ")  # path, buffer_id/token, length
_PATH_INLINE = 0
_PATH_POOL = 1
_PATH_XPMEM = 2


#: Span/counter path names per control-message path constant.
_PATH_NAMES = {_PATH_INLINE: "inline", _PATH_POOL: "pool", _PATH_XPMEM: "xpmem"}


class ShmChannel(Channel):
    """One-directional intra-node data channel (producer → consumer).

    Small payloads ride inline in queue entries (copied into the slot,
    copied out of it: 2 copies).  Large payloads take one of two paths:

    * **pool** (default): the producer gathers straight into a leased
      pool buffer (the single staging copy), sends a control message,
      and the consumer receives a :class:`WireBuffer` *view* over the
      shared buffer — releasing the span returns the lease.  One copy,
      fully asynchronous.
    * **xpmem**: the producer publishes a read-only view of its source
      buffer (modelling ``xpmem_make``/``xpmem_attach`` page mapping);
      the consumer's :class:`WireBuffer` maps those pages directly —
      zero transport copies — and releasing the span detaches, so the
      producer must not reuse the source until then (synchronous
      semantics).

    Every delivery reports its copy count (inline=2, pool=1, xpmem=0)
    into the ``transport.copies`` histogram of the bound monitor.
    """

    def __init__(
        self,
        queue: Optional[SPSCQueue] = None,
        pool: Optional[ShmBufferPool] = None,
        use_xpmem: bool = False,
        monitor=None,
        injector: Optional[TransportFaultInjector] = None,
    ) -> None:
        self.queue = queue or SPSCQueue()
        self.pool = pool or ShmBufferPool()
        self.use_xpmem = use_xpmem
        #: Optional PerfMonitor: send/recv become spans (when tracing is
        #: on) and the queue/pool counters are published on close().
        self.monitor = monitor
        #: Optional deterministic fault source consulted before sends.
        self.injector = injector
        self._inline_max = self.queue.payload_size - _CTRL.size
        self._xpmem_segments: dict[int, np.ndarray] = {}
        self._xpmem_done: dict[int, threading.Event] = {}
        self._next_token = 0
        self._token_lock = sanitize.make_lock("shm.xpmem_token")
        #: Pool leases announced to the consumer but not yet received:
        #: buffer_id -> lease (handed over to the consumer's WireBuffer).
        self._in_flight: dict[int, BufferLease] = {}
        #: Copies performed per large message on each path (observable).
        self.copies_per_large_message = COPIES_XPMEM if use_xpmem else COPIES_POOL
        self.large_sends = 0
        self.inline_sends = 0

    # -- producer ---------------------------------------------------------
    def send(
        self,
        payload: Union[bytes, memoryview, np.ndarray, WireBuffer],
        timeout: float = 5.0,
    ) -> None:
        """Move one payload; accepts any wire span shape without copying."""
        wb = WireBuffer.wrap(payload)
        if self.monitor is not None:
            with self.monitor.span("transport", "shm.send", nbytes=wb.nbytes):
                self._send(wb, timeout)
            self.monitor.metrics.counter("shm.bytes_sent").inc(wb.nbytes)
            self.monitor.metrics.counter("shm.messages_sent").inc()
        else:
            self._send(wb, timeout)

    def sendv(
        self,
        parts: Union[WireVector, Sequence[Union[bytes, np.ndarray, WireBuffer]]],
        timeout: float = 5.0,
    ) -> None:
        """Vectored send: gather ``parts`` into one message.

        One control round and one pool lease service the whole step —
        each part is copied straight into the shared buffer (or, inline,
        straight into the queue slot alongside the control header), with
        no intermediate join on the producer side.  Always takes the
        pool path for large payloads (the xpmem path's synchronous
        consumer-detach handshake would deadlock a caller that also
        drives ``recv`` from the same thread).
        """
        vec = parts if isinstance(parts, WireVector) else WireVector(parts)
        total = vec.nbytes
        if self.monitor is not None:
            with self.monitor.span(
                "transport", "shm.sendv", nbytes=total, parts=len(vec)
            ):
                self._sendv(vec, total, timeout)
            self.monitor.metrics.counter("shm.bytes_sent").inc(total)
            self.monitor.metrics.counter("shm.messages_sent").inc()
        else:
            self._sendv(vec, total, timeout)

    def _maybe_inject_fault(self, total: int) -> None:
        """Consult the injector; raise the scheduled typed fault, if any.

        A torn send is modeled faithfully for the pool path: part of the
        payload is really written into a leased pool buffer, but the
        control message never goes out — so the consumer can never
        observe the partial bytes, and the producer sees a typed
        :class:`TornSend`.  The lease is released before raising (no
        leak across retries).
        """
        if self.injector is None:
            return
        kind = self.injector.next_fault()
        if kind is None:
            return
        record_injected(self.monitor, "shm", kind, nbytes=total)
        if kind is FaultKind.TORN_SEND and total > self._inline_max:
            with self.pool.lease(total) as lease:
                torn = max(1, total // 2)
                lease.data[:torn] = 0
            raise TornSend(f"injected torn send after {total // 2}/{total} B")
        raise fault_exception(kind, f"injected {kind.value} on shm send ({total} B)")

    def _sendv(self, vec: WireVector, total: int, timeout: float) -> None:
        self._maybe_inject_fault(total)
        if total <= self._inline_max:
            # One gather write: control header + every view, straight
            # into the queue slot (no join, no intermediate bytes).
            hdr = as_byte_view(_CTRL.pack(_PATH_INLINE, 0, total))
            self.queue.enqueuev(
                (hdr, *(p.as_array() for p in vec)),
                _CTRL.size + total,
                timeout=timeout,
            )
            self.inline_sends += 1
            return
        self._send_pool(vec, total, timeout)
        self.large_sends += 1

    def _send(self, wb: WireBuffer, timeout: float) -> None:
        self._maybe_inject_fault(wb.nbytes)
        if wb.nbytes <= self._inline_max:
            hdr = as_byte_view(_CTRL.pack(_PATH_INLINE, 0, wb.nbytes))
            self.queue.enqueuev(
                (hdr, wb.as_array()), _CTRL.size + wb.nbytes, timeout=timeout
            )
            self.inline_sends += 1
            return
        if self.use_xpmem:
            self._send_xpmem(wb, timeout)
        else:
            self._send_pool(WireVector((wb,)), wb.nbytes, timeout)
        self.large_sends += 1

    def _send_pool(self, vec: WireVector, total: int, timeout: float) -> None:
        lease = self.pool.lease(total)
        # Publish the lease before the control message goes out so the
        # consumer can never observe a buffer_id we don't know about.
        self._in_flight[lease.buffer_id] = lease
        try:
            vec.copy_into(lease.data)  # gather: the single staging copy
            self.queue.enqueue(
                _CTRL.pack(_PATH_POOL, lease.buffer_id, total), timeout=timeout
            )
        except BaseException:  # flexlint: ok(FXL001) lease cleanup must cover every raise, then re-raises
            # The control message never went out: reclaim the lease so a
            # failed or timed-out send cannot leak the pool buffer
            # (retries re-lease from the free list).
            self._in_flight.pop(lease.buffer_id, None)
            lease.release()
            raise

    def _send_xpmem(self, wb: WireBuffer, timeout: float) -> None:
        with self._token_lock:
            token = self._next_token
            self._next_token += 1
        # "Map" the source pages: expose the producer's view, no copy.
        self._xpmem_segments[token] = wb.as_array()
        done = threading.Event()
        self._xpmem_done[token] = done
        try:
            self.queue.enqueue(
                _CTRL.pack(_PATH_XPMEM, token, wb.nbytes), timeout=timeout
            )
            # Synchronous large-message semantics: wait for consumer detach.
            if not done.wait(timeout):
                raise TimeoutError("xpmem consumer did not detach in time")
        finally:
            self._xpmem_segments.pop(token, None)
            self._xpmem_done.pop(token, None)

    def close(self) -> None:
        self.queue.close()
        # A producer shutting down with announcements never consumed must
        # not leak leases or wedge xpmem waiters.
        for buffer_id in list(self._in_flight):
            lease = self._in_flight.pop(buffer_id, None)
            if lease is not None and not lease.released:
                lease.release()
        for done in list(self._xpmem_done.values()):
            done.set()
        if self.monitor is not None:
            self.emit_stats()

    def emit_stats(self, monitor=None) -> None:
        """Publish queue/pool counters into a monitor's metrics registry
        (so ``report()`` shows the transport instead of it being a set of
        write-only fields)."""
        mon = monitor or self.monitor
        if mon is None:
            raise ValueError("no monitor bound to this channel")
        self.queue.emit_stats(mon)
        self.pool.emit_stats(mon)
        mon.metrics.gauge("shm.channel.inline_sends").set(self.inline_sends)
        mon.metrics.gauge("shm.channel.large_sends").set(self.large_sends)

    # -- consumer ---------------------------------------------------------
    def recv(self, timeout: float = 5.0) -> WireBuffer:
        """Receive one message as a :class:`WireBuffer` span; raises
        :class:`QueueClosed` at end of stream.

        Pool- and xpmem-backed spans stay valid until the consumer calls
        :meth:`WireBuffer.release` — releasing returns the pool lease /
        detaches the mapping.  Inline spans are heap-owned.
        """
        if self.monitor is not None:
            with self.monitor.span("transport", "shm.recv") as sp:
                out = self._recv(timeout)
                sp.add_bytes(out.nbytes)
                sp.set_attr(
                    "path",
                    "inline" if out.ownership is Ownership.HEAP else out.ownership.value,
                )
                sp.set_attr("copies", out.copies)
            return out
        return self._recv(timeout)

    def _recv(self, timeout: float) -> WireBuffer:
        msg = self.queue.dequeue(timeout=timeout)  # inline copy-out lives in the queue
        path, token, length = _CTRL.unpack_from(msg, 0)
        if path == _PATH_INLINE:
            payload = np.frombuffer(
                msg, dtype=np.uint8, count=length, offset=_CTRL.size
            )  # view over the dequeued copy — no third copy
            wb = WireBuffer(payload, ownership=Ownership.HEAP, copies=COPIES_INLINE)
        elif path == _PATH_POOL:
            lease = self._in_flight.pop(int(token))
            wb = WireBuffer.from_lease(
                lease, length, ownership=Ownership.POOL, copies=COPIES_POOL
            )
        elif path == _PATH_XPMEM:
            seg = self._xpmem_segments[int(token)]
            done = self._xpmem_done[int(token)]
            # Attach to the producer's pages; release() detaches.
            wb = WireBuffer(
                seg[:length], ownership=Ownership.XPMEM,
                copies=COPIES_XPMEM, on_release=done.set,
            )
        else:
            raise ValueError(f"corrupt control message path {path}")
        self.observe_delivery(wb, _PATH_NAMES[path])
        return wb


# ---------------------------------------------------------------------------
# Cost model (for discrete-event runs)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShmCostModel:
    """Prices intra-node movement for the simulator.

    Parameters default to the transport's measured behaviour class: a
    cache-speed hop inside one L3, a slower hop across NUMA domains, and
    memcpy throughput set by the node's memory bandwidth.
    """

    node_type: NodeType
    #: Queue message latency when producer and consumer share an L3 (s).
    latency_same_numa: float = 0.2e-6
    #: Queue message latency across NUMA domains (coherence traffic) (s).
    latency_cross_numa: float = 0.6e-6

    def copy_bw(self, cross_numa: bool) -> float:
        """Effective single-stream memcpy bandwidth (bytes/s)."""
        bw = self.node_type.mem_bw_local
        if cross_numa:
            bw *= self.node_type.numa_remote_factor
        return bw

    def small_msg_time(self, cross_numa: bool) -> float:
        return self.latency_cross_numa if cross_numa else self.latency_same_numa

    def transfer_time(
        self, nbytes: int, cross_numa: bool = False, xpmem: bool = False
    ) -> float:
        """Time to move ``nbytes`` producer → consumer.

        Classic path: control message + two memcpys.  XPMEM path: control
        message + segment attach + one memcpy.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        t = self.small_msg_time(cross_numa)
        copies = 1 if xpmem else 2
        if xpmem:
            t += 1.5e-6  # xpmem_make/attach page-mapping cost
        t += copies * (nbytes / self.copy_bw(cross_numa))
        return t
