"""Shared-memory intra-node transport (paper Section II.D).

Three pieces:

1. :class:`SPSCQueue` — a FastForward-inspired single-producer
   single-consumer, circular, lock-free FIFO.  Producer and consumer keep
   *separate* head/tail indices (never shared), each entry occupies its own
   cache-line-aligned region, and a per-entry status flag (EMPTY/FULL) is
   the only coordination: the producer stores payload then flips the flag
   to FULL; the consumer polls the flag, copies out, and flips it back to
   EMPTY.  The layout math (alignment, padding, flag placement) follows the
   paper even though Python's GIL supplies the memory-ordering guarantees a
   C implementation would need fences for.

2. :class:`ShmBufferPool` — producer-owned pool of reusable buffers indexed
   by a per-size free list; large messages are copied into a pool buffer
   and announced via a small control message through the queue (the classic
   two-copy path).  The XPMEM path instead "maps" the producer's source
   buffer into the consumer (zero-copy handoff of a read-only view), so
   only the consumer-side copy remains.

3. :class:`ShmCostModel` — prices the same operations for discrete-event
   runs: per-message queue latencies by NUMA relationship, and per-copy
   memcpy costs from the node's memory bandwidth.
"""

from __future__ import annotations

import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis import sanitize
from repro.machine.topology import NodeType
from repro.transport.faults import (
    FaultKind,
    TornSend,
    TransportFaultInjector,
    TransportTimeout,
    fault_exception,
    record_injected,
)
from repro.util import CACHE_LINE, align_up


def _as_byte_view(part: Union[bytes, np.ndarray]) -> np.ndarray:
    """A flat uint8 view of one vectored-send part (copy-free for
    contiguous arrays)."""
    if isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        return arr.reshape(-1).view(np.uint8)
    return np.frombuffer(bytes(part), dtype=np.uint8)

_EMPTY = 0
_FULL = 1

# Per-entry header: 1-byte status flag + 3 pad + 4-byte payload length.
_HDR = struct.Struct("<B3xI")


class QueueFull(TransportTimeout):
    """Blocking enqueue found no EMPTY entry before its deadline.

    A :class:`~repro.transport.faults.TransportTimeout`, so retry code
    catches SHM enqueue and dequeue timeouts (and RDMA timeouts) as one
    type; still a ``RuntimeError`` for pre-existing callers.
    """


class QueueEmpty(TransportTimeout):
    """Blocking dequeue found no FULL entry before its deadline."""


class QueueClosed(RuntimeError):
    """Operation on a queue whose producer has closed it."""


@dataclass
class QueueStats:
    """Instrumentation counters (feed the performance-monitoring layer)."""

    enqueued: int = 0
    dequeued: int = 0
    bytes_enqueued: int = 0
    producer_spins: int = 0
    consumer_spins: int = 0

    def emit(self, monitor, prefix: str = "shm.queue") -> None:
        """Publish a snapshot of these counters into ``monitor.metrics``."""
        m = monitor.metrics
        m.gauge(f"{prefix}.enqueued").set(self.enqueued)
        m.gauge(f"{prefix}.dequeued").set(self.dequeued)
        m.gauge(f"{prefix}.bytes_enqueued").set(self.bytes_enqueued)
        m.gauge(f"{prefix}.producer_spins").set(self.producer_spins)
        m.gauge(f"{prefix}.consumer_spins").set(self.consumer_spins)


class SPSCQueue:
    """Lock-free single-producer single-consumer circular byte queue.

    ``slots`` entries of ``payload_size`` bytes each; every entry is padded
    to a multiple of the cache-line size and starts on a cache-line
    boundary so adjacent entries never share a line (no false sharing
    between the producer writing entry *i* and the consumer reading entry
    *i-1*).
    """

    def __init__(self, slots: int = 64, payload_size: int = 240) -> None:
        if slots < 2:
            raise ValueError("need at least 2 slots")
        if payload_size < 1:
            raise ValueError("payload_size must be positive")
        self.slots = int(slots)
        self.payload_size = int(payload_size)
        #: Bytes per entry: header + payload, padded out to full cache lines.
        self.entry_size = align_up(_HDR.size + payload_size, CACHE_LINE)
        self._buf = np.zeros(self.slots * self.entry_size, dtype=np.uint8)
        self._mv = memoryview(self._buf)
        # Producer-private and consumer-private cursors (deliberately NOT
        # shared state — FastForward's key idea).
        self._head = 0  # next entry to enqueue (producer only)
        self._tail = 0  # next entry to dequeue (consumer only)
        self._closed = False
        self.stats = QueueStats()
        # Concurrency sanitizer, captured at construction so the disabled
        # path costs one None check per operation (FLEXIO_SANITIZE=1).
        # It learns producer/consumer thread ownership from the first
        # try_enqueue/try_dequeue and flags SPSC-discipline violations.
        self._san = sanitize.get()

    # ------------------------------------------------------------------
    def _entry(self, idx: int) -> int:
        return idx * self.entry_size

    def _flag(self, idx: int) -> int:
        return self._buf[self._entry(idx)]

    # -- producer side ----------------------------------------------------
    def try_enqueue(self, data: Union[bytes, bytearray, memoryview]) -> bool:
        """Enqueue without blocking; returns False if the next entry is FULL."""
        if self._san is not None:
            self._san.note_spsc(self, "producer")
        if self._closed:
            raise QueueClosed("enqueue on closed queue")
        data = bytes(data)
        if len(data) > self.payload_size:
            raise ValueError(
                f"message of {len(data)} B exceeds slot payload {self.payload_size} B"
            )
        base = self._entry(self._head)
        if self._buf[base] != _EMPTY:
            self.stats.producer_spins += 1
            return False
        # Write payload first, status flag last (release ordering).
        _HDR.pack_into(self._mv, base, _EMPTY, len(data))
        pstart = base + _HDR.size
        self._mv[pstart : pstart + len(data)] = data
        self._buf[base] = _FULL
        self._head = (self._head + 1) % self.slots
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += len(data)
        return True

    def enqueue(self, data: Union[bytes, bytearray, memoryview], timeout: float = 5.0) -> None:
        """Blocking enqueue; spins (with micro-sleeps) until an entry frees."""
        deadline = time.monotonic() + timeout
        while not self.try_enqueue(data):
            if time.monotonic() > deadline:
                raise QueueFull(f"queue full for {timeout}s")
            time.sleep(1e-6)

    def close(self) -> None:
        """Producer signals End-of-Stream; pending entries remain readable."""
        self._closed = True

    # -- consumer side ----------------------------------------------------
    def try_dequeue(self) -> Optional[bytes]:
        """Dequeue without blocking; None if the next entry is EMPTY."""
        if self._san is not None:
            self._san.note_spsc(self, "consumer")
        base = self._entry(self._tail)
        if self._buf[base] != _FULL:
            self.stats.consumer_spins += 1
            if self._closed:
                raise QueueClosed("end of stream")
            return None
        _, length = _HDR.unpack_from(self._mv, base)
        pstart = base + _HDR.size
        out = bytes(self._mv[pstart : pstart + length])
        # Copy out first, then release the entry to the producer.
        self._buf[base] = _EMPTY
        self._tail = (self._tail + 1) % self.slots
        self.stats.dequeued += 1
        return out

    def dequeue(self, timeout: float = 5.0) -> bytes:
        """Blocking dequeue; raises :class:`QueueClosed` at end of stream."""
        deadline = time.monotonic() + timeout
        while True:
            item = self.try_dequeue()
            if item is not None:
                return item
            if time.monotonic() > deadline:
                raise QueueEmpty(f"queue empty for {timeout}s")
            time.sleep(1e-6)

    def __len__(self) -> int:
        """Entries currently FULL (approximate under concurrency)."""
        return int(np.count_nonzero(self._buf[:: self.entry_size] == _FULL))

    def emit_stats(self, monitor, prefix: str = "shm.queue") -> None:
        """Snapshot counters + current depth into ``monitor.metrics``."""
        self.stats.emit(monitor, prefix)
        monitor.metrics.gauge(f"{prefix}.depth").set(len(self))


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

@dataclass
class _PoolBuffer:
    buffer_id: int
    data: np.ndarray
    in_use: bool = False

    @property
    def size(self) -> int:
        return self.data.nbytes


@dataclass
class PoolStats:
    allocations: int = 0
    reuses: int = 0
    reclaimed: int = 0
    peak_bytes: int = 0


class ShmBufferPool:
    """Producer-owned pool of large-message buffers with per-size free lists.

    ``acquire`` rounds the request up to the next power of two and serves
    from the free list when possible (the "closest size" search of the
    paper); ``release`` returns a buffer for reuse.  ``max_bytes`` is the
    configurable threshold that triggers reclamation of idle buffers.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._buffers: dict[int, _PoolBuffer] = {}
        self._free: dict[int, list[int]] = {}  # size -> [buffer_id]
        self._next_id = 0
        self._total_bytes = 0
        self._lock = sanitize.make_lock("shm.pool")
        self.stats = PoolStats()

    @staticmethod
    def _bucket(nbytes: int) -> int:
        size = 1
        while size < nbytes:
            size <<= 1
        return size

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def acquire(self, nbytes: int) -> _PoolBuffer:
        """Get a buffer of at least ``nbytes`` (reuse before allocate)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        size = self._bucket(nbytes)
        with self._lock:
            free = self._free.get(size)
            if free:
                buf = self._buffers[free.pop()]
                buf.in_use = True
                self.stats.reuses += 1
                return buf
            buf = _PoolBuffer(self._next_id, np.zeros(size, dtype=np.uint8), in_use=True)
            self._next_id += 1
            self._buffers[buf.buffer_id] = buf
            self._total_bytes += size
            self.stats.allocations += 1
            self.stats.peak_bytes = max(self.stats.peak_bytes, self._total_bytes)
            if self._total_bytes > self.max_bytes:
                self._reclaim_locked()
            return buf

    def release(self, buffer_id: int) -> None:
        """Return a buffer to its free list."""
        with self._lock:
            buf = self._buffers.get(buffer_id)
            if buf is None:
                raise KeyError(f"unknown buffer id {buffer_id}")
            if not buf.in_use:
                raise ValueError(f"buffer {buffer_id} already free")
            buf.in_use = False
            self._free.setdefault(buf.size, []).append(buffer_id)

    def get(self, buffer_id: int) -> _PoolBuffer:
        return self._buffers[buffer_id]

    def _reclaim_locked(self) -> None:
        """Drop idle buffers (largest first) until under the threshold."""
        idle = sorted(
            (b for b in self._buffers.values() if not b.in_use),
            key=lambda b: -b.size,
        )
        for buf in idle:
            if self._total_bytes <= self.max_bytes:
                break
            self._free[buf.size].remove(buf.buffer_id)
            del self._buffers[buf.buffer_id]
            self._total_bytes -= buf.size
            self.stats.reclaimed += 1

    def emit_stats(self, monitor, prefix: str = "shm.pool") -> None:
        """Snapshot pool counters + occupancy into ``monitor.metrics``."""
        m = monitor.metrics
        m.gauge(f"{prefix}.occupancy_bytes").set(self._total_bytes)
        m.gauge(f"{prefix}.peak_bytes").set(self.stats.peak_bytes)
        m.gauge(f"{prefix}.allocations").set(self.stats.allocations)
        m.gauge(f"{prefix}.reuses").set(self.stats.reuses)
        m.gauge(f"{prefix}.reclaimed").set(self.stats.reclaimed)


# ---------------------------------------------------------------------------
# Channel: small messages through the queue, large ones through the pool
# ---------------------------------------------------------------------------

_CTRL = struct.Struct("<BQQ")  # path, buffer_id/token, length
_PATH_INLINE = 0
_PATH_POOL = 1
_PATH_XPMEM = 2


class ShmChannel:
    """One-directional intra-node data channel (producer → consumer).

    Small payloads ride inline in queue entries.  Large payloads take one
    of two paths:

    * **pool** (default): producer copies into a pool buffer, sends a
      control message, consumer copies out and releases the buffer —
      two copies, fully asynchronous.
    * **xpmem**: producer publishes a read-only view of its source buffer
      (modelling ``xpmem_make``/``xpmem_attach`` page mapping), consumer
      copies directly from it — one copy, but the producer must not reuse
      the source until the consumer is done (synchronous semantics).
    """

    def __init__(
        self,
        queue: Optional[SPSCQueue] = None,
        pool: Optional[ShmBufferPool] = None,
        use_xpmem: bool = False,
        monitor=None,
        injector: Optional[TransportFaultInjector] = None,
    ) -> None:
        self.queue = queue or SPSCQueue()
        self.pool = pool or ShmBufferPool()
        self.use_xpmem = use_xpmem
        #: Optional PerfMonitor: send/recv become spans (when tracing is
        #: on) and the queue/pool counters are published on close().
        self.monitor = monitor
        #: Optional deterministic fault source consulted before sends.
        self.injector = injector
        self._inline_max = self.queue.payload_size - _CTRL.size
        self._xpmem_segments: dict[int, np.ndarray] = {}
        self._xpmem_done: dict[int, threading.Event] = {}
        self._next_token = 0
        self._token_lock = sanitize.make_lock("shm.xpmem_token")
        #: Copies performed per large message on each path (observable).
        self.copies_per_large_message = 1 if use_xpmem else 2
        self.large_sends = 0
        self.inline_sends = 0

    # -- producer ---------------------------------------------------------
    def send(self, payload: Union[bytes, np.ndarray], timeout: float = 5.0) -> None:
        data = payload.tobytes() if isinstance(payload, np.ndarray) else bytes(payload)
        if self.monitor is not None:
            with self.monitor.span("transport", "shm.send", nbytes=len(data)):
                self._send(data, timeout)
            self.monitor.metrics.counter("shm.bytes_sent").inc(len(data))
            self.monitor.metrics.counter("shm.messages_sent").inc()
        else:
            self._send(data, timeout)

    def sendv(
        self, parts: Sequence[Union[bytes, np.ndarray]], timeout: float = 5.0
    ) -> None:
        """Vectored send: gather ``parts`` into one message.

        One control round and one pool buffer service the whole step —
        each part is copied straight into the shared buffer, with no
        intermediate join on the producer side.  Always takes the pool
        path for large payloads (the xpmem path's synchronous
        consumer-detach handshake would deadlock a caller that also
        drives ``recv`` from the same thread).
        """
        views = [_as_byte_view(p) for p in parts]
        total = sum(v.nbytes for v in views)
        if self.monitor is not None:
            with self.monitor.span(
                "transport", "shm.sendv", nbytes=total, parts=len(views)
            ):
                self._sendv(views, total, timeout)
            self.monitor.metrics.counter("shm.bytes_sent").inc(total)
            self.monitor.metrics.counter("shm.messages_sent").inc()
        else:
            self._sendv(views, total, timeout)

    def _maybe_inject_fault(self, total: int) -> None:
        """Consult the injector; raise the scheduled typed fault, if any.

        A torn send is modeled faithfully for the pool path: part of the
        payload is really copied into a pool buffer, but the control
        message never goes out — so the consumer can never observe the
        partial bytes, and the producer sees a typed :class:`TornSend`.
        The buffer is released before raising (no leak across retries).
        """
        if self.injector is None:
            return
        kind = self.injector.next_fault()
        if kind is None:
            return
        record_injected(self.monitor, "shm", kind, nbytes=total)
        if kind is FaultKind.TORN_SEND and total > self._inline_max:
            buf = self.pool.acquire(total)
            try:
                torn = max(1, total // 2)
                buf.data[:torn] = np.zeros(torn, dtype=np.uint8)
            finally:
                self.pool.release(buf.buffer_id)
            raise TornSend(f"injected torn send after {total // 2}/{total} B")
        raise fault_exception(kind, f"injected {kind.value} on shm send ({total} B)")

    def _sendv(
        self, views: Sequence[np.ndarray], total: int, timeout: float
    ) -> None:
        self._maybe_inject_fault(total)
        if total <= self._inline_max:
            data = b"".join(v.tobytes() for v in views)
            self.queue.enqueue(
                _CTRL.pack(_PATH_INLINE, 0, len(data)) + data, timeout=timeout
            )
            self.inline_sends += 1
            return
        buf = self.pool.acquire(total)
        offset = 0
        for v in views:  # gather: copy 1, directly into the shared buffer
            buf.data[offset : offset + v.nbytes] = v
            offset += v.nbytes
        self.queue.enqueue(
            _CTRL.pack(_PATH_POOL, buf.buffer_id, total), timeout=timeout
        )
        self.large_sends += 1

    def _send(self, data: bytes, timeout: float) -> None:
        self._maybe_inject_fault(len(data))
        if len(data) <= self._inline_max:
            msg = _CTRL.pack(_PATH_INLINE, 0, len(data)) + data
            self.queue.enqueue(msg, timeout=timeout)
            self.inline_sends += 1
            return
        if self.use_xpmem:
            self._send_xpmem(data, timeout)
        else:
            self._send_pool(data, timeout)
        self.large_sends += 1

    def _send_pool(self, data: bytes, timeout: float) -> None:
        buf = self.pool.acquire(len(data))
        buf.data[: len(data)] = np.frombuffer(data, dtype=np.uint8)  # copy 1
        self.queue.enqueue(_CTRL.pack(_PATH_POOL, buf.buffer_id, len(data)), timeout=timeout)

    def _send_xpmem(self, data: bytes, timeout: float) -> None:
        with self._token_lock:
            token = self._next_token
            self._next_token += 1
        # "Map" the source pages: expose a view, no producer-side copy.
        self._xpmem_segments[token] = np.frombuffer(data, dtype=np.uint8)
        done = threading.Event()
        self._xpmem_done[token] = done
        self.queue.enqueue(_CTRL.pack(_PATH_XPMEM, token, len(data)), timeout=timeout)
        # Synchronous large-message semantics: wait for consumer detach.
        if not done.wait(timeout):
            raise TimeoutError("xpmem consumer did not detach in time")
        del self._xpmem_segments[token]
        del self._xpmem_done[token]

    def close(self) -> None:
        self.queue.close()
        if self.monitor is not None:
            self.emit_stats()

    def emit_stats(self, monitor=None) -> None:
        """Publish queue/pool counters into a monitor's metrics registry
        (so ``report()`` shows the transport instead of it being a set of
        write-only fields)."""
        mon = monitor or self.monitor
        if mon is None:
            raise ValueError("no monitor bound to this channel")
        self.queue.emit_stats(mon)
        self.pool.emit_stats(mon)
        mon.metrics.gauge("shm.channel.inline_sends").set(self.inline_sends)
        mon.metrics.gauge("shm.channel.large_sends").set(self.large_sends)

    # -- consumer ---------------------------------------------------------
    def recv(self, timeout: float = 5.0) -> bytes:
        """Receive one message; raises :class:`QueueClosed` at end of stream."""
        if self.monitor is not None:
            with self.monitor.span("transport", "shm.recv") as sp:
                out = self._recv(timeout)
                sp.add_bytes(len(out))
            return out
        return self._recv(timeout)

    def _recv(self, timeout: float) -> bytes:
        msg = self.queue.dequeue(timeout=timeout)
        path, token, length = _CTRL.unpack_from(msg, 0)
        if path == _PATH_INLINE:
            return msg[_CTRL.size : _CTRL.size + length]
        if path == _PATH_POOL:
            buf = self.pool.get(int(token))
            out = buf.data[:length].tobytes()  # copy 2
            self.pool.release(int(token))     # return to producer's free list
            return out
        if path == _PATH_XPMEM:
            seg = self._xpmem_segments[int(token)]
            out = seg[:length].tobytes()       # the only copy
            self._xpmem_done[int(token)].set()  # detach
            return out
        raise ValueError(f"corrupt control message path {path}")


# ---------------------------------------------------------------------------
# Cost model (for discrete-event runs)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShmCostModel:
    """Prices intra-node movement for the simulator.

    Parameters default to the transport's measured behaviour class: a
    cache-speed hop inside one L3, a slower hop across NUMA domains, and
    memcpy throughput set by the node's memory bandwidth.
    """

    node_type: NodeType
    #: Queue message latency when producer and consumer share an L3 (s).
    latency_same_numa: float = 0.2e-6
    #: Queue message latency across NUMA domains (coherence traffic) (s).
    latency_cross_numa: float = 0.6e-6

    def copy_bw(self, cross_numa: bool) -> float:
        """Effective single-stream memcpy bandwidth (bytes/s)."""
        bw = self.node_type.mem_bw_local
        if cross_numa:
            bw *= self.node_type.numa_remote_factor
        return bw

    def small_msg_time(self, cross_numa: bool) -> float:
        return self.latency_cross_numa if cross_numa else self.latency_same_numa

    def transfer_time(
        self, nbytes: int, cross_numa: bool = False, xpmem: bool = False
    ) -> float:
        """Time to move ``nbytes`` producer → consumer.

        Classic path: control message + two memcpys.  XPMEM path: control
        message + segment attach + one memcpy.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        t = self.small_msg_time(cross_numa)
        copies = 1 if xpmem else 2
        if xpmem:
            t += 1.5e-6  # xpmem_make/attach page-mapping cost
        t += copies * (nbytes / self.copy_bw(cross_numa))
        return t
