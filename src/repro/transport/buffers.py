"""Zero-copy buffer plane shared by the SHM and RDMA transports.

FlexIO's intra-node story is counted in copies — the 2-copy shm-pool
path vs the 1-copy XPMEM page mapping (paper Section II.D) — and its
RDMA path exists to avoid staging copies entirely.  This module gives
every layer a common vocabulary for *spans of wire memory* so payloads
flow producer → consumer without intermediate ``bytes(...)``
materialization:

* :class:`WireBuffer` — one contiguous span with explicit ownership
  (heap, pool-leased, xpmem-mapped, registered-RDMA), a liveness
  contract (access after :meth:`~WireBuffer.release` raises), and the
  number of copies the payload underwent on its way here.
* :class:`WireVector` — a scatter-gather list of spans with a lazily
  computed total length; transports gather it straight into a slot or a
  leased buffer, never through a ``b"".join``.
* :class:`BufferLease` / :class:`LeasePool` — the acquire/release
  protocol that unifies the SHM buffer pool and the RDMA registration
  cache: exactly one release per lease, reclamation stays the pool's
  business, and the concurrency sanitizer tracks leaks and
  use-after-release when enabled.
* :class:`Channel` — the ``send``/``sendv``/``recv`` ABC both
  :class:`~repro.transport.shm.ShmChannel` and
  :class:`~repro.transport.rdma.RdmaChannel` implement; every delivery
  reports its copy count into the ``transport.copies`` histogram.
"""

from __future__ import annotations

import abc
import enum
import threading
from typing import Callable, Iterable, Iterator, Optional, Union

import numpy as np

from repro.analysis import sanitize
from repro.obs.names import F_TRANSPORT_PATH, metric_name

__all__ = [
    "Ownership",
    "LeaseError",
    "BufferLease",
    "LeasePool",
    "WireBuffer",
    "WireVector",
    "Channel",
    "as_byte_view",
    "COPIES_XPMEM",
    "COPIES_POOL",
    "COPIES_INLINE",
]

#: Copy counts per delivery path (the paper's Section II.D accounting):
#: an xpmem-mapped span reaches the consumer with no transport copy, the
#: pool path stages once in shared memory, and inline slot messages are
#: copied in and copied out.
COPIES_XPMEM = 0
COPIES_POOL = 1
COPIES_INLINE = 2


class Ownership(enum.Enum):
    """Who owns the memory behind a :class:`WireBuffer`."""

    HEAP = "heap"    #: plain process memory, garbage-collector owned
    POOL = "pool"    #: leased from a producer-owned shm buffer pool
    XPMEM = "xpmem"  #: mapped view of the producer's source pages
    RDMA = "rdma"    #: leased registered-RDMA memory


class LeaseError(RuntimeError):
    """Lease-discipline violation: double release or use after release."""


def as_byte_view(part: Union[bytes, bytearray, memoryview, np.ndarray]) -> np.ndarray:
    """A flat uint8 view of one wire part — copy-free for bytes,
    memoryviews, and contiguous arrays; only non-contiguous arrays are
    compacted."""
    if isinstance(part, WireBuffer):
        return part.as_array()
    if isinstance(part, np.ndarray):
        arr = part if part.flags.c_contiguous else np.ascontiguousarray(part)
        return arr.reshape(-1).view(np.uint8)
    return np.frombuffer(part, dtype=np.uint8)


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------

class BufferLease:
    """Exclusive hold on one pooled buffer: acquire → fill/read → release.

    Exactly one :meth:`release` per lease; a second raises
    :class:`LeaseError`, and any access after release raises too.  Both
    conditions are also reported to the concurrency sanitizer when it is
    active, and :meth:`Sanitizer.check_leases` flags leases never
    released at all (leaks).
    """

    __slots__ = ("pool", "buffer_id", "nbytes", "setup_time", "label",
                 "_data", "_released")

    def __init__(
        self,
        pool: "LeasePool",
        buffer_id: int,
        data: np.ndarray,
        nbytes: int,
        setup_time: float = 0.0,
        label: str = "",
    ) -> None:
        self.pool = pool
        self.buffer_id = buffer_id
        #: Requested payload bytes (the backing buffer may be larger).
        self.nbytes = int(nbytes)
        #: Allocation/registration cost paid acquiring this lease (s).
        self.setup_time = setup_time
        self.label = label or f"lease#{buffer_id}"
        self._data = data
        self._released = False
        san = sanitize.get()
        if san is not None:
            san.note_lease_acquired(self, self.label)

    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    @property
    def capacity(self) -> int:
        """Full size of the backing buffer."""
        return self._data.nbytes

    def _check_live(self, what: str) -> None:
        if self._released:
            san = sanitize.get()
            if san is not None:
                san.note_lease_use_after_release(self.label, what)
            raise LeaseError(f"{what} on released {self.label}")

    @property
    def data(self) -> np.ndarray:
        """The full-capacity backing array (liveness-checked)."""
        self._check_live("data access")
        return self._data

    def view(self, nbytes: Optional[int] = None) -> memoryview:
        """A writable memoryview over the first ``nbytes`` (default: the
        leased length)."""
        self._check_live("view")
        n = self.nbytes if nbytes is None else int(nbytes)
        return memoryview(self._data)[:n]

    def release(self) -> None:
        """Return the buffer to its pool; exactly once per lease."""
        if self._released:
            san = sanitize.get()
            if san is not None:
                san.note_lease_double_release(self.label)
            raise LeaseError(f"double release of {self.label}")
        self._released = True
        san = sanitize.get()
        if san is not None:
            san.note_lease_released(self)
        self.pool._lease_released(self)

    def __enter__(self) -> "BufferLease":
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._released:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "released" if self._released else "live"
        return f"<BufferLease {self.label} {self.nbytes}B {state}>"


class LeasePool(abc.ABC):
    """The acquire/release protocol behind :class:`BufferLease`.

    Implemented by :class:`~repro.transport.shm.ShmBufferPool` and
    :class:`~repro.transport.rdma.RegistrationCache`; both keep their
    own free lists and reclamation thresholds, this base only tracks
    lease accounting.
    """

    def __init__(self) -> None:
        self._lease_mu = threading.Lock()
        self._outstanding = 0

    @abc.abstractmethod
    def lease(self, nbytes: int) -> BufferLease:
        """Acquire a buffer of at least ``nbytes`` under a lease."""

    @abc.abstractmethod
    def _return_buffer(self, lease: BufferLease) -> None:
        """Put the released buffer back on the pool's free list."""

    # ------------------------------------------------------------------
    def _make_lease(
        self,
        buffer_id: int,
        data: np.ndarray,
        nbytes: int,
        setup_time: float = 0.0,
        label: str = "",
    ) -> BufferLease:
        with self._lease_mu:
            self._outstanding += 1
        return BufferLease(self, buffer_id, data, nbytes, setup_time, label)

    def _lease_released(self, lease: BufferLease) -> None:
        with self._lease_mu:
            self._outstanding -= 1
        self._return_buffer(lease)

    @property
    def outstanding_leases(self) -> int:
        """Leases acquired and not yet released."""
        with self._lease_mu:
            return self._outstanding


# ---------------------------------------------------------------------------
# Wire spans
# ---------------------------------------------------------------------------

class WireBuffer:
    """One contiguous span of wire memory with ownership and lifetime.

    Wraps a flat uint8 view of the payload.  ``copies`` records how many
    memcpys the payload underwent producer → consumer (0 xpmem, 1 pool,
    2 inline).  When the span is backed by a :class:`BufferLease` or
    carries an ``on_release`` callback (xpmem detach), the consumer owns
    the obligation to call :meth:`release`; access after release raises
    :class:`LeaseError`.  A span dropped without release is returned by
    the garbage collector as a safety net, but the sanitizer still sees
    the underlying lease leak if the release never ran.
    """

    __slots__ = ("_arr", "nbytes", "ownership", "lease", "copies",
                 "_on_release", "_released", "__weakref__")

    def __init__(
        self,
        data: Union[bytes, bytearray, memoryview, np.ndarray],
        *,
        ownership: Ownership = Ownership.HEAP,
        lease: Optional[BufferLease] = None,
        copies: int = 0,
        on_release: Optional[Callable[[], None]] = None,
    ) -> None:
        self._arr = as_byte_view(data)
        self.nbytes = self._arr.nbytes
        self.ownership = ownership
        self.lease = lease
        self.copies = int(copies)
        self._on_release = on_release
        self._released = False

    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, payload) -> "WireBuffer":
        """Coerce any payload shape (bytes, memoryview, ndarray, or an
        existing span) into a :class:`WireBuffer` without copying."""
        if isinstance(payload, WireBuffer):
            return payload
        return cls(payload)

    @classmethod
    def from_lease(
        cls,
        lease: BufferLease,
        nbytes: Optional[int] = None,
        *,
        ownership: Ownership = Ownership.POOL,
        copies: int = COPIES_POOL,
    ) -> "WireBuffer":
        """A span over the first ``nbytes`` of a leased buffer; releasing
        the span releases the lease."""
        n = lease.nbytes if nbytes is None else int(nbytes)
        return cls(lease.data[:n], ownership=ownership, lease=lease,
                   copies=copies)

    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    def _check_live(self, what: str) -> None:
        if self._released or (self.lease is not None and self.lease.released):
            san = sanitize.get()
            if san is not None:
                san.note_lease_use_after_release(repr(self), what)
            raise LeaseError(f"{what} on released {self!r}")

    def as_array(
        self,
        dtype=None,
        shape=None,
    ) -> np.ndarray:
        """The payload as a numpy view (no copy).

        With ``dtype``/``shape`` the uint8 span is reinterpreted — the
        consumer-side ``np.frombuffer`` of the zero-copy story.
        """
        self._check_live("as_array")
        arr = self._arr
        if dtype is not None:
            arr = arr.view(np.dtype(dtype))
        if shape is not None:
            arr = arr.reshape(shape)
        return arr

    @property
    def view(self) -> memoryview:
        """A memoryview of the payload (no copy)."""
        self._check_live("view")
        return memoryview(self._arr)

    def tobytes(self) -> bytes:
        """Materialize the span — the explicit escape hatch for cold
        paths and assertions; hot paths carry the view instead."""
        self._check_live("tobytes")
        return self._arr.tobytes()  # flexlint: ok(FXL006) the one sanctioned materialization point

    def release(self) -> None:
        """End this span's lifetime: return the lease / detach the
        mapping.  Exactly once; a second call raises."""
        if self._released:
            san = sanitize.get()
            if san is not None:
                san.note_lease_double_release(repr(self))
            raise LeaseError(f"double release of {self!r}")
        self._released = True
        if self.lease is not None and not self.lease.released:
            self.lease.release()
        if self._on_release is not None:
            self._on_release()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.nbytes

    def __eq__(self, other: object) -> bool:
        """Content equality against bytes-likes and other spans (for
        assertions; does not materialize either side)."""
        if isinstance(other, WireBuffer):
            if other._released:
                return NotImplemented
            other = other._arr
        if isinstance(other, (bytes, bytearray, memoryview, np.ndarray)):
            if self._released:
                return NotImplemented
            theirs = as_byte_view(other)
            return (self.nbytes == theirs.nbytes
                    and bool(np.array_equal(self._arr, theirs)))
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __enter__(self) -> "WireBuffer":
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._released:
            self.release()

    def __del__(self) -> None:
        # Safety net: a span the consumer dropped without release would
        # otherwise pin its pool buffer / xpmem segment forever.
        try:
            if not self._released and (
                self.lease is not None or self._on_release is not None
            ):
                self.release()
        except Exception:  # flexlint: ok(FXL001) GC safety net: __del__ must never raise
            pass

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return (f"<WireBuffer {self.ownership.value} {self.nbytes}B "
                f"copies={self.copies} {state}>")


class WireVector:
    """A scatter-gather list of :class:`WireBuffer` spans.

    The total length is computed lazily and cached (invalidated by
    :meth:`append`); :meth:`copy_into` gathers every part straight into
    a destination buffer — the *one* producer-side copy of the pool and
    RDMA paths.
    """

    __slots__ = ("_parts", "_nbytes")

    def __init__(self, parts: Iterable = ()) -> None:
        self._parts: list[WireBuffer] = [WireBuffer.wrap(p) for p in parts]
        self._nbytes: Optional[int] = None

    def append(self, part) -> None:
        self._parts.append(WireBuffer.wrap(part))
        self._nbytes = None

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all parts (lazy, cached)."""
        if self._nbytes is None:
            self._nbytes = sum(p.nbytes for p in self._parts)
        return self._nbytes

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[WireBuffer]:
        return iter(self._parts)

    def __getitem__(self, idx: int) -> WireBuffer:
        return self._parts[idx]

    def copy_into(self, dest: np.ndarray, offset: int = 0) -> int:
        """Gather all parts into ``dest`` (flat uint8) starting at
        ``offset``; returns the offset past the last byte written."""
        for p in self._parts:
            n = p.nbytes
            dest[offset : offset + n] = p.as_array()
            offset += n
        return offset

    def tobytes(self) -> bytes:
        """Materialize the gathered payload (cold paths only)."""
        out = np.empty(self.nbytes, dtype=np.uint8)
        self.copy_into(out)
        return out.tobytes()  # flexlint: ok(FXL006) cold-path materialization of a gathered vector

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WireVector {len(self._parts)} parts, {self.nbytes}B>"


# ---------------------------------------------------------------------------
# Channel ABC
# ---------------------------------------------------------------------------

class Channel(abc.ABC):
    """The transport contract: scatter-gather sends, span deliveries.

    ``send``/``sendv`` accept bytes, memoryviews, contiguous arrays,
    :class:`WireBuffer`, or :class:`WireVector` and never materialize an
    intermediate ``bytes``; ``recv`` returns a :class:`WireBuffer` whose
    ownership tells the consumer whether (and how) to release it.  Every
    delivery reports its copy count into the ``transport.copies``
    histogram of the bound monitor.
    """

    #: Optional PerfMonitor; subclasses set it in ``__init__``.
    monitor = None

    @abc.abstractmethod
    def send(self, payload, timeout: float = 5.0):
        """Move one payload to the consumer."""

    @abc.abstractmethod
    def sendv(self, parts, timeout: float = 5.0):
        """Gather ``parts`` into one message and move it."""

    @abc.abstractmethod
    def recv(self, timeout: float = 5.0) -> Optional[WireBuffer]:
        """The next delivered span (None when nothing is pending and the
        transport is non-blocking)."""

    def close(self) -> None:  # pragma: no cover - subclasses override
        """Release transport resources (default: nothing to do)."""

    # ------------------------------------------------------------------
    def observe_delivery(self, wb: WireBuffer, path: str = "") -> None:
        """Record one delivery's copy count into ``transport.copies``."""
        mon = self.monitor
        if mon is not None:
            mon.metrics.histogram("transport.copies").observe(float(wb.copies))
            if path:
                mon.metrics.counter(metric_name(F_TRANSPORT_PATH, path)).inc()
