"""Transport fault model: typed faults, deterministic injection, accounting.

Paper Section II.H: FlexIO "uses simple timeout-and-retry schemes to cope
with errors and failures during data movement".  Coping presupposes a
fault model; this module supplies it for both transports:

* a small taxonomy of **fault kinds** a data-movement operation can hit
  (send timeout, partial/torn send, peer disconnect, registration
  failure), each mapped to a typed exception below a single
  :class:`TransportFault` root so retry code catches one family across
  SHM and RDMA;
* :class:`TransportTimeout`, the shared timeout base — it also derives
  from :class:`TimeoutError` so pre-existing ``except TimeoutError``
  callers keep working;
* :class:`TransportFaultInjector`, a seeded deterministic fault source
  the channels consult before each send.  Selectable per stream via the
  ``faults=...`` hint or process-wide via ``FLEXIO_FAULTS``; every
  injected fault is counted in the metrics registry and recorded in the
  trace so recovery is observable end to end.
"""

from __future__ import annotations

import os
from enum import Enum
from typing import Optional, Sequence

from repro.obs import recorder as flight
from repro.obs.events import EV_FAULT
from repro.obs.names import (
    F_FAULTS_INJECTED,
    M_FAULTS_INJECTED_TOTAL,
    metric_name,
)
from repro.util import rng


class FaultKind(Enum):
    """What went wrong with one data-movement operation."""

    SEND_TIMEOUT = "timeout"          # the send never completed in time
    TORN_SEND = "torn"                # only part of the payload landed
    PEER_DISCONNECT = "disconnect"    # the receiving peer went away
    REGISTRATION_FAILURE = "regfail"  # buffer registration was refused
    # Frame-layer kinds (TCP/daemon): what a WAN/LAN hop can do to a
    # length-prefixed frame that intra-process channels never see.
    TORN_FRAME = "torn_frame"         # prefix + partial payload hit the wire
    DROPPED_FRAME = "dropped_frame"   # the frame silently never left
    DELAYED_FRAME = "delayed_frame"   # the frame arrives late (peer may time out)
    CONN_RESET = "conn_reset"         # connection reset mid-exchange
    HALF_OPEN = "half_open"           # our side is up, the peer is gone
    SESSION_LOST = "session_lost"     # reconnect/resume retries exhausted


class TransportFault(RuntimeError):
    """Root of every transport-level failure; carries its fault kind."""

    kind: Optional[FaultKind] = None


class TransportTimeout(TransportFault, TimeoutError):
    """A movement operation timed out (send or receive, SHM or RDMA)."""

    kind = FaultKind.SEND_TIMEOUT


class TornSend(TransportFault):
    """A send delivered only part of its payload before failing."""

    kind = FaultKind.TORN_SEND


class PeerDisconnected(TransportFault):
    """The remote endpoint disappeared mid-operation."""

    kind = FaultKind.PEER_DISCONNECT


class RegistrationFailed(TransportFault):
    """The NIC/driver refused to register a buffer."""

    kind = FaultKind.REGISTRATION_FAILURE


class SessionLost(PeerDisconnected):
    """A network session died for good: every reconnect/resume attempt
    the retry policy allowed has failed.  Subclasses
    :class:`PeerDisconnected` so pre-resilience callers that caught the
    per-operation fault keep working, but carries its own kind so
    harnesses can assert "typed loss only after retry exhaustion"."""

    kind = FaultKind.SESSION_LOST


_EXCEPTION_FOR: dict[FaultKind, type] = {
    FaultKind.SEND_TIMEOUT: TransportTimeout,
    FaultKind.TORN_SEND: TornSend,
    FaultKind.PEER_DISCONNECT: PeerDisconnected,
    FaultKind.REGISTRATION_FAILURE: RegistrationFailed,
    # Frame-layer kinds map onto the exception the *caller* observes:
    # a torn frame is a torn send, a reset/half-open socket is a peer
    # disconnect, and dropped/delayed frames surface as timeouts (the
    # reply never comes / comes too late).
    FaultKind.TORN_FRAME: TornSend,
    FaultKind.DROPPED_FRAME: TransportTimeout,
    FaultKind.DELAYED_FRAME: TransportTimeout,
    FaultKind.CONN_RESET: PeerDisconnected,
    FaultKind.HALF_OPEN: PeerDisconnected,
    FaultKind.SESSION_LOST: SessionLost,
}

_KIND_FOR_NAME: dict[str, FaultKind] = {k.value: k for k in FaultKind}


def fault_exception(kind: FaultKind, message: str) -> TransportFault:
    """Build the typed exception for one injected fault kind."""
    return _EXCEPTION_FOR[kind](message)


class TransportFaultInjector:
    """Deterministic failure source consulted before each send.

    Two triggers, combinable: a seeded per-operation fault ``rate``, and
    a script of exact 1-based operation indices (``fail_ops``).  When an
    operation faults, the *kind* is drawn deterministically from
    ``kinds`` with the same seeded generator, so a given
    ``(rate, seed, kinds)`` triple always produces the same schedule —
    the property the chaos harness replays.
    """

    def __init__(
        self,
        rate: float = 0.0,
        fail_ops: Optional[Sequence[int]] = None,
        seed: int = 0,
        kinds: Optional[Sequence[FaultKind]] = None,
    ) -> None:
        if not (0.0 <= rate < 1.0):
            raise ValueError("fault rate must be in [0, 1)")
        self.rate = float(rate)
        self.fail_ops = set(fail_ops or ())
        self.seed = int(seed)
        self.kinds = tuple(kinds) if kinds else (FaultKind.SEND_TIMEOUT,)
        if not all(isinstance(k, FaultKind) for k in self.kinds):
            raise ValueError("kinds must be FaultKind values")
        self._rng = rng(self.seed)
        self.ops_seen = 0
        self.faults_injected = 0
        self.by_kind: dict[FaultKind, int] = {k: 0 for k in self.kinds}

    def next_fault(self) -> Optional[FaultKind]:
        """One operation happens; returns the fault to inject, or None."""
        self.ops_seen += 1
        hit = self.ops_seen in self.fail_ops or (
            self.rate > 0 and self._rng.random() < self.rate
        )
        if not hit:
            return None
        if len(self.kinds) == 1:
            kind = self.kinds[0]
        else:
            kind = self.kinds[int(self._rng.integers(len(self.kinds)))]
        self.faults_injected += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        return kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = "|".join(k.value for k in self.kinds)
        return (
            f"<TransportFaultInjector rate={self.rate} seed={self.seed} "
            f"kinds={names} injected={self.faults_injected}>"
        )


def parse_fault_spec(spec: Optional[str]) -> Optional[TransportFaultInjector]:
    """Parse a fault schedule like ``rate=0.1,seed=7,kinds=timeout|torn``.

    Comma-separated ``key=value`` pairs (commas, not semicolons, so the
    whole spec survives as one XML hint value).  Keys: ``rate`` (fault
    probability per send), ``seed``, ``kinds`` (``|``-separated fault
    names from :class:`FaultKind` values), ``ops`` (``|``-separated
    1-based operation indices that always fault).  Empty/None → None.
    """
    if spec is None or not spec.strip():
        return None
    rate = 0.0
    seed = 0
    kinds: Optional[list[FaultKind]] = None
    fail_ops: list[int] = []
    for piece in spec.split(","):
        piece = piece.strip()
        if not piece:
            continue
        key, sep, value = piece.partition("=")
        key, value = key.strip().lower(), value.strip()
        if not sep:
            raise ValueError(f"bad fault spec piece {piece!r} (expected key=value)")
        if key == "rate":
            rate = float(value)
        elif key == "seed":
            seed = int(value)
        elif key == "kinds":
            kinds = []
            for name in value.split("|"):
                name = name.strip().lower()
                if name not in _KIND_FOR_NAME:
                    raise ValueError(
                        f"unknown fault kind {name!r}; "
                        f"expected one of {sorted(_KIND_FOR_NAME)}"
                    )
                kinds.append(_KIND_FOR_NAME[name])
        elif key == "ops":
            fail_ops = [int(tok) for tok in value.split("|") if tok.strip()]
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return TransportFaultInjector(rate=rate, fail_ops=fail_ops, seed=seed, kinds=kinds)


def injector_from_env(environ=None) -> Optional[TransportFaultInjector]:
    """Build an injector from ``FLEXIO_FAULTS``, or None when unset."""
    env = os.environ if environ is None else environ
    return parse_fault_spec(env.get("FLEXIO_FAULTS"))


def record_injected(monitor, transport: str, kind: FaultKind, nbytes: int = 0) -> None:
    """Account one injected fault: counters + a trace record.

    The record lands in the monitor's trace buffer (category ``fault``)
    so injected faults show up next to the drain/transport spans in the
    Perfetto export; the counters make recovery rates queryable without
    a trace scan.
    """
    if monitor is None:
        return
    monitor.metrics.counter(metric_name(F_FAULTS_INJECTED, kind.value)).inc()
    monitor.metrics.counter(M_FAULTS_INJECTED_TOTAL).inc()
    monitor.record(
        "fault", f"{transport}.{kind.value}", start=0.0, duration=0.0,
        nbytes=nbytes, kind=kind.value, transport=transport,
    )
    flight.record(EV_FAULT, kind=kind.value, transport=transport, nbytes=nbytes)
