"""HPC machine models for the FlexIO reproduction.

The paper evaluates on two ORNL machines:

* **Titan** (Cray XK6): 18,688 nodes, one 16-core 2.2 GHz AMD Opteron 6274
  (Interlagos) per node organized as 2 NUMA domains of 8 cores each sharing
  an 8 MiB L3, 32 GiB RAM, Gemini interconnect.
* **Smoky**: 80 nodes, four quad-core 2.0 GHz AMD Opteron (Barcelona)
  processors per node — 4 NUMA domains of 4 cores each sharing a 2 MiB L3
  (the paper's Figure 5), 32 GiB RAM, DDR InfiniBand.

Both mount a center-wide Lustre file system.

This package reproduces those machines as *models*: a topology tree (machine
→ node → NUMA domain → core) that the placement algorithms map communication
graphs onto, plus interconnect / cache / file-system cost models that the
coupled-run simulator charges time against.
"""

from repro.machine.topology import (
    Core,
    Machine,
    Node,
    NodeType,
    TopologyLevel,
    TreeNode,
)
from repro.machine.interconnect import (
    GeminiInterconnect,
    InfinibandInterconnect,
    Interconnect,
    RdmaCostParams,
    SeaStarInterconnect,
)
from repro.machine.cache import CacheContentionModel, CacheProfile
from repro.machine.filesystem import LustreModel
from repro.machine.presets import generic_cluster, jaguar_xt5, smoky, titan

__all__ = [
    "CacheContentionModel",
    "CacheProfile",
    "Core",
    "GeminiInterconnect",
    "InfinibandInterconnect",
    "Interconnect",
    "LustreModel",
    "Machine",
    "Node",
    "NodeType",
    "RdmaCostParams",
    "SeaStarInterconnect",
    "TopologyLevel",
    "TreeNode",
    "generic_cluster",
    "jaguar_xt5",
    "smoky",
    "titan",
]
