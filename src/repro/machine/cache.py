"""Shared last-level-cache contention model.

The paper's Figure 8 measures GTS's L3 miss rate (misses per thousand
instructions) with and without helper-core analytics sharing the L3: the
analytics inflate GTS's misses by ~47 % and its simulation cycle time by
~4.1 %.  We reproduce that phenomenon with a standard working-set /
cache-partitioning model:

1. Each co-runner ``w`` on a domain exerts *pressure* proportional to its
   access intensity times its resident working set.
2. The shared L3 is (statistically) partitioned in proportion to pressure —
   the behaviour of an LRU-managed shared cache under competing streams.
3. A workload's miss rate follows a power-law miss curve in its allocated
   capacity: ``miss(alloc) = miss_solo * (alloc_solo / alloc)**beta`` for
   allocations below its working set.
4. Extra misses convert to slowdown through an *effective* miss penalty that
   accounts for memory-level parallelism (far below the raw DRAM latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class CacheProfile:
    """Cache behaviour of one workload class on one NUMA domain.

    ``base_miss_per_kinst`` is the L3 miss rate measured running *solo*
    (full L3 available) — Figure 8's baseline bar.
    """

    name: str
    working_set_bytes: float
    #: Relative access intensity (cache accesses per instruction, scaled).
    intensity: float
    base_miss_per_kinst: float
    #: Base cycles per instruction when running solo.
    cpi: float
    #: Effective stall cycles per additional L3 miss (MLP-adjusted).
    miss_penalty_cycles: float
    #: Streaming workloads (one-pass over a large buffer) miss at their
    #: compulsory rate regardless of allocated capacity: no miss curve.
    alloc_insensitive: bool = False

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if self.base_miss_per_kinst < 0:
            raise ValueError("base_miss_per_kinst must be >= 0")
        if self.cpi <= 0 or self.miss_penalty_cycles < 0:
            raise ValueError("cpi must be > 0 and miss penalty >= 0")

    @property
    def pressure(self) -> float:
        return self.intensity * self.working_set_bytes


class CacheContentionModel:
    """Computes shared-cache miss inflation and the resulting slowdown."""

    def __init__(self, beta: float = 1.75) -> None:
        """``beta`` is the miss-curve exponent (calibrated to Figure 8)."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta

    # ------------------------------------------------------------------
    def allocations(
        self, profiles: Sequence[CacheProfile], l3_bytes: float
    ) -> list[float]:
        """Pressure-proportional L3 capacity granted to each co-runner."""
        if l3_bytes <= 0:
            raise ValueError("l3_bytes must be positive")
        if not profiles:
            return []
        # Pressure comes from the *resident* working set: lines that cannot
        # fit in the cache at all cannot compete for it.
        pressures = [
            p.intensity * min(p.working_set_bytes, l3_bytes) for p in profiles
        ]
        total = sum(pressures)
        raw = [l3_bytes * pr / total for pr in pressures]
        # A workload never benefits from more capacity than its working set;
        # redistribute surplus to the still-hungry co-runners.
        alloc = list(raw)
        for _ in range(len(profiles)):
            surplus = 0.0
            hungry: list[int] = []
            for i, p in enumerate(profiles):
                if alloc[i] > p.working_set_bytes:
                    surplus += alloc[i] - p.working_set_bytes
                    alloc[i] = p.working_set_bytes
                elif alloc[i] < p.working_set_bytes:
                    hungry.append(i)
            if surplus <= 0 or not hungry:
                break
            weight = sum(pressures[i] for i in hungry)
            for i in hungry:
                alloc[i] += surplus * pressures[i] / weight
        return alloc

    def miss_rate(
        self, profile: CacheProfile, allocation: float, l3_bytes: float
    ) -> float:
        """Miss rate (per 1K instructions) with ``allocation`` bytes of L3."""
        if profile.alloc_insensitive:
            return profile.base_miss_per_kinst
        solo_alloc = min(l3_bytes, profile.working_set_bytes)
        alloc = min(allocation, profile.working_set_bytes)
        if alloc >= solo_alloc:
            return profile.base_miss_per_kinst
        return profile.base_miss_per_kinst * (solo_alloc / max(alloc, 1.0)) ** self.beta

    def shared_miss_rates(
        self, profiles: Sequence[CacheProfile], l3_bytes: float
    ) -> list[float]:
        """Miss rate for each co-runner when they share one L3."""
        allocs = self.allocations(profiles, l3_bytes)
        return [self.miss_rate(p, a, l3_bytes) for p, a in zip(profiles, allocs)]

    # ------------------------------------------------------------------
    def slowdown(self, profile: CacheProfile, shared_miss_per_kinst: float) -> float:
        """Fractional execution-time increase from the inflated miss rate.

        Returns e.g. ``0.041`` for a 4.1 % slowdown.
        """
        extra = max(0.0, shared_miss_per_kinst - profile.base_miss_per_kinst)
        base_cycles_per_kinst = 1000.0 * profile.cpi
        return extra * profile.miss_penalty_cycles / base_cycles_per_kinst

    def corun(
        self, profiles: Sequence[CacheProfile], l3_bytes: float
    ) -> list[tuple[float, float]]:
        """Convenience: ``[(miss_rate, slowdown_fraction), ...]`` per co-runner."""
        rates = self.shared_miss_rates(profiles, l3_bytes)
        return [(r, self.slowdown(p, r)) for p, r in zip(profiles, rates)]
