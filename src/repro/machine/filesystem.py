"""Lustre-like parallel file system model.

Offline/inline placements and the file mode of the FlexIO API pay file I/O
costs; the paper's S3D results hinge on "insufficient scalability of file
I/O" making inline placement worse at scale.  This model captures the three
effects that matter:

* aggregate bandwidth is capped by the object storage targets (OSTs);
* per-client bandwidth is capped by the client's network link;
* efficiency *decays* as client count grows (metadata pressure, OST
  contention, lock traffic) — the classic Lustre scaling curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import MiB


@dataclass(frozen=True)
class LustreModel:
    """Cost model of one center-wide Lustre file system."""

    name: str = "lustre"
    num_osts: int = 336
    #: Sustained bandwidth of one OST (bytes/s).
    ost_bw: float = 400 * MiB
    #: Per-client cap (bytes/s) — LNET router / client link limit.
    client_bw: float = 1.2e9
    #: Cost of one metadata operation (file open/create) in seconds.
    metadata_op_time: float = 3.0e-3
    #: Stripe count used by a typical checkpoint write.
    stripe_count: int = 4
    #: Client count at which contention halves efficiency.
    contention_knee: int = 4096
    #: Contention curve exponent.
    contention_gamma: float = 0.9

    def __post_init__(self) -> None:
        if self.num_osts <= 0 or self.ost_bw <= 0 or self.client_bw <= 0:
            raise ValueError("OST count and bandwidths must be positive")
        if self.stripe_count <= 0:
            raise ValueError("stripe_count must be positive")

    # ------------------------------------------------------------------
    def efficiency(self, num_clients: int) -> float:
        """Fraction of nominal aggregate bandwidth achieved by N clients."""
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        return 1.0 / (1.0 + (num_clients / self.contention_knee) ** self.contention_gamma)

    def aggregate_bw(self, num_clients: int) -> float:
        """Achievable aggregate bandwidth (bytes/s) for N concurrent clients."""
        osts_used = min(self.num_osts, num_clients * self.stripe_count)
        nominal = min(num_clients * self.client_bw, osts_used * self.ost_bw)
        return nominal * self.efficiency(num_clients)

    def write_time(self, total_bytes: float, num_clients: int, num_files: int = 1) -> float:
        """Wall time for N clients to collectively write ``total_bytes``."""
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        meta = self.metadata_op_time * max(1, num_files)
        if total_bytes == 0:
            return meta
        return meta + total_bytes / self.aggregate_bw(num_clients)

    def read_time(self, total_bytes: float, num_clients: int, num_files: int = 1) -> float:
        """Wall time for N clients to collectively read ``total_bytes``.

        Reads skip create but still pay an open per file; bandwidth model is
        symmetric, which is adequate at the fidelity this reproduction needs.
        """
        return self.write_time(total_bytes, num_clients, num_files)
