"""Machine presets: Titan, Smoky, and a configurable generic cluster.

All parameters come from the paper (Section IV) and public specifications
of the hardware generations involved:

* **Titan** — Cray XK6, 18,688 nodes, one 16-core 2.2 GHz AMD Opteron 6274
  (Interlagos) per node.  Interlagos is two 8-core dies on one package, so
  each node exposes 2 NUMA domains of 8 cores sharing an 8 MiB L3.  Gemini
  interconnect.  32 GiB RAM per node.
* **Smoky** — 80 nodes of four quad-core 2.0 GHz AMD Opteron (Barcelona)
  processors: 4 NUMA domains of 4 cores, each with a 2 MiB shared L3
  (paper Figure 5).  DDR InfiniBand.  32 GiB RAM per node.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.cache import CacheContentionModel
from repro.machine.filesystem import LustreModel
from repro.machine.interconnect import (
    GeminiInterconnect,
    InfinibandInterconnect,
    Interconnect,
    SeaStarInterconnect,
)
from repro.machine.topology import Machine, NodeType
from repro.util import GiB, MiB


TITAN_NODE = NodeType(
    name="xk6-interlagos",
    cores_per_node=16,
    numa_domains=2,
    ghz=2.2,
    l3_bytes_per_domain=8 * MiB,
    mem_bytes=32 * GiB,
    mem_bw_local=20e9,
    numa_remote_factor=0.6,
)

SMOKY_NODE = NodeType(
    name="smoky-barcelona",
    cores_per_node=16,
    numa_domains=4,
    ghz=2.0,
    l3_bytes_per_domain=2 * MiB,
    mem_bytes=32 * GiB,
    mem_bw_local=8e9,
    numa_remote_factor=0.55,
)


def titan(num_nodes: int = 18688) -> Machine:
    """The Titan Cray XK6 model (or a partition of it)."""
    return Machine(
        name="titan",
        node_type=TITAN_NODE,
        num_nodes=num_nodes,
        interconnect=GeminiInterconnect(),
        filesystem=LustreModel(name="atlas", num_osts=672, contention_knee=8192),
        cache_model=CacheContentionModel(),
    )


def smoky(num_nodes: int = 80) -> Machine:
    """The Smoky InfiniBand cluster model."""
    return Machine(
        name="smoky",
        node_type=SMOKY_NODE,
        num_nodes=num_nodes,
        interconnect=InfinibandInterconnect(),
        filesystem=LustreModel(name="widow", num_osts=96, contention_knee=1024),
        cache_model=CacheContentionModel(),
    )


JAGUAR_NODE = NodeType(
    name="xt5-istanbul",
    cores_per_node=12,
    numa_domains=2,
    ghz=2.6,
    l3_bytes_per_domain=6 * MiB,
    mem_bytes=16 * GiB,
    mem_bw_local=12e9,
    numa_remote_factor=0.6,
)


def jaguar_xt5(num_nodes: int = 18688) -> Machine:
    """The Jaguar Cray XT5 model — where FlexIO first ran the Pixie3D
    online analysis/visualization pipeline (paper Section II.H).

    Two 6-core 2.6 GHz AMD Opteron (Istanbul) sockets per node, each a
    NUMA domain with a 6 MiB shared L3; SeaStar2+ interconnect.
    """
    return Machine(
        name="jaguar-xt5",
        node_type=JAGUAR_NODE,
        num_nodes=num_nodes,
        interconnect=SeaStarInterconnect(),
        filesystem=LustreModel(name="spider", num_osts=672, contention_knee=8192),
        cache_model=CacheContentionModel(),
    )


def generic_cluster(
    num_nodes: int,
    cores_per_node: int = 16,
    numa_domains: int = 2,
    ghz: float = 2.5,
    l3_bytes_per_domain: int = 8 * MiB,
    mem_bytes: int = 32 * GiB,
    interconnect: Optional[Interconnect] = None,
) -> Machine:
    """A configurable cluster for tests and what-if studies."""
    node = NodeType(
        name="generic",
        cores_per_node=cores_per_node,
        numa_domains=numa_domains,
        ghz=ghz,
        l3_bytes_per_domain=l3_bytes_per_domain,
        mem_bytes=mem_bytes,
        mem_bw_local=15e9,
    )
    return Machine(
        name="generic",
        node_type=node,
        num_nodes=num_nodes,
        interconnect=interconnect or InfinibandInterconnect(),
        filesystem=LustreModel(),
        cache_model=CacheContentionModel(),
    )
