"""Interconnect cost models: Cray Gemini and DDR InfiniBand.

These models back the RDMA transport (Section II.E).  The quantities that
matter to the reproduction are:

* point-to-point latency and peak one-sided bandwidth (BTE RDMA Get on
  Gemini; verbs RDMA on InfiniBand);
* the cost of **dynamic buffer allocation + memory registration**, which the
  paper's Figure 4 shows can dominate mid-sized transfers (the registration
  cache exists to amortize it);
* a small-message path (FMA Put into a remote message queue on Gemini);
* per-node injection bandwidth and a contention factor for concurrent bulk
  flows, which drives the staging-placement interference results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import KiB, MiB, pages_of


@dataclass(frozen=True)
class RdmaCostParams:
    """Costs of the NNTI-level verbs on one interconnect.

    All times in seconds, bandwidths in bytes/second.
    """

    #: One-sided operation start-up latency (seconds).
    latency: float
    #: Peak sustained large-message bandwidth (bytes/s).
    peak_bw: float
    #: Message size at and below which the small-message (FMA Put) path is
    #: used instead of receiver-directed Get.
    small_msg_threshold: int
    #: Per-message CPU overhead of the small-message path (seconds).
    small_msg_overhead: float
    #: Fixed cost of one memory-registration call (seconds).
    reg_base: float
    #: Additional registration cost per 4 KiB page (seconds).
    reg_per_page: float
    #: Fixed cost of a dynamic buffer allocation (seconds).
    alloc_base: float
    #: Additional allocation cost per MiB (page faulting / zeroing).
    alloc_per_mib: float
    #: Half-round-trip control message (Get handshake) cost (seconds).
    control_msg_time: float


class Interconnect:
    """Base interconnect model: pure cost functions, no state.

    Concrete machines subclass this only to supply parameters; all timing
    formulas live here so the two interconnects stay comparable.
    """

    name = "abstract"

    def __init__(self, params: RdmaCostParams, injection_bw: float) -> None:
        if injection_bw <= 0:
            raise ValueError("injection_bw must be positive")
        self.params = params
        #: Per-node injection/ejection bandwidth (bytes/s).
        self.injection_bw = injection_bw

    # -- registration & allocation --------------------------------------
    def registration_time(self, nbytes: int) -> float:
        """Cost of registering a buffer of ``nbytes`` with the NIC."""
        p = self.params
        return p.reg_base + pages_of(nbytes) * p.reg_per_page

    def allocation_time(self, nbytes: int) -> float:
        """Cost of dynamically allocating (and faulting in) a buffer."""
        p = self.params
        return p.alloc_base + (nbytes / MiB) * p.alloc_per_mib

    # -- data movement ---------------------------------------------------
    def wire_time(self, nbytes: int) -> float:
        """Latency + serialization time for one transfer, no setup costs."""
        p = self.params
        return p.latency + nbytes / p.peak_bw

    def small_put_time(self, nbytes: int) -> float:
        """Small message into the peer's message queue (FMA Put on Gemini)."""
        p = self.params
        if nbytes > p.small_msg_threshold:
            raise ValueError(
                f"{nbytes} B exceeds small-message threshold {p.small_msg_threshold} B"
            )
        return p.small_msg_overhead + self.wire_time(nbytes)

    def get_time(self, nbytes: int, *, static_buffers: bool) -> float:
        """Receiver-directed RDMA Get of ``nbytes``.

        ``static_buffers=True`` models buffers served from the persistent
        registration cache: only the control message and the wire transfer
        are paid.  ``static_buffers=False`` models the dynamic path the
        paper's Figure 4 measures: allocate + register on **both** sides,
        then transfer, then (implicitly) deregister — folded into the
        registration figure.
        """
        t = self.params.control_msg_time + self.wire_time(nbytes)
        if not static_buffers:
            # Sender-side send buffer + receiver-side receive buffer.
            t += 2 * (self.allocation_time(nbytes) + self.registration_time(nbytes))
        return t

    def get_bandwidth(self, nbytes: int, *, static_buffers: bool) -> float:
        """Achieved bandwidth (bytes/s) of one Get — Figure 4's y-axis."""
        return nbytes / self.get_time(nbytes, static_buffers=static_buffers)

    # -- contention -------------------------------------------------------
    def effective_bw(self, concurrent_flows: int) -> float:
        """Per-flow bandwidth when ``concurrent_flows`` share one endpoint.

        Bulk flows into one node share its injection/ejection bandwidth;
        this is what the Get *scheduler* (Section II.E) limits.
        """
        if concurrent_flows < 1:
            raise ValueError("concurrent_flows must be >= 1")
        shared = min(self.params.peak_bw, self.injection_bw / concurrent_flows)
        return shared

    def bulk_transfer_time(self, nbytes: int, concurrent_flows: int = 1) -> float:
        """Wire time for a bulk flow under endpoint sharing."""
        p = self.params
        return p.latency + nbytes / self.effective_bw(concurrent_flows)


class GeminiInterconnect(Interconnect):
    """Cray Gemini (Titan, XK6).

    Parameters are calibrated so the dynamic-vs-static Get bandwidth sweep
    reproduces the *shape* of the paper's Figure 4: the dynamic path loses
    roughly half the bandwidth through the KiB–MiB range and converges
    toward (but stays below) the static path at multi-MiB sizes.
    """

    name = "gemini"

    def __init__(self) -> None:
        super().__init__(
            RdmaCostParams(
                latency=1.5e-6,
                peak_bw=6.0e9,            # BTE Get sustained
                small_msg_threshold=4 * KiB,
                small_msg_overhead=0.6e-6,  # FMA Put issue cost
                reg_base=12e-6,
                reg_per_page=0.30e-6,
                alloc_base=2.0e-6,
                alloc_per_mib=45e-6,      # page-fault + zero cost
                control_msg_time=2.2e-6,
            ),
            injection_bw=5.2e9,
        )


class SeaStarInterconnect(Interconnect):
    """Cray SeaStar2+ (Jaguar XT5) — the third interconnect NNTI's
    portability layer covers (Portals underneath, per Figure 2)."""

    name = "seastar"

    def __init__(self) -> None:
        super().__init__(
            RdmaCostParams(
                latency=6.0e-6,
                peak_bw=2.0e9,            # sustained Portals put/get
                small_msg_threshold=4 * KiB,
                small_msg_overhead=1.2e-6,
                reg_base=18e-6,
                reg_per_page=0.40e-6,
                alloc_base=2.0e-6,
                alloc_per_mib=45e-6,
                control_msg_time=7.0e-6,
            ),
            injection_bw=1.8e9,
        )


class InfinibandInterconnect(Interconnect):
    """DDR InfiniBand (Smoky)."""

    name = "infiniband-ddr"

    def __init__(self) -> None:
        super().__init__(
            RdmaCostParams(
                latency=4.0e-6,
                peak_bw=1.5e9,            # DDR IB sustained verbs bandwidth
                small_msg_threshold=4 * KiB,
                small_msg_overhead=1.0e-6,
                reg_base=25e-6,
                reg_per_page=0.45e-6,
                alloc_base=2.0e-6,
                alloc_per_mib=45e-6,
                control_msg_time=6.0e-6,
            ),
            injection_bw=1.4e9,
        )
