"""Machine topology: nodes, NUMA domains, cores, and the architecture tree.

The placement algorithms (Section III of the paper) model the machine as a
tree: a flat two-level tree (machine → node → core) for *holistic*
placement, and a deeper tree reflecting cache/NUMA structure (machine →
node → NUMA domain → core) for *node-topology-aware* placement.  This module
builds those trees and answers "how expensive is communication between core
A and core B" queries for the mapping cost functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Sequence

from repro.util import GiB, MiB


class TopologyLevel(Enum):
    """Levels of the architecture tree, outermost first."""

    MACHINE = 0
    NODE = 1
    NUMA = 2
    CORE = 3


@dataclass(frozen=True)
class NodeType:
    """Static description of one compute-node flavour.

    Parameters mirror what the paper reports for Titan and Smoky nodes.
    ``numa_domains`` is the number of NUMA domains per node; cores are split
    evenly among them and each domain has one shared last-level cache.
    """

    name: str
    cores_per_node: int
    numa_domains: int
    ghz: float
    l3_bytes_per_domain: int
    mem_bytes: int
    #: Sustained memory bandwidth per NUMA domain (bytes/s) for local access.
    mem_bw_local: float
    #: Remote (cross-domain) accesses run at this fraction of local bandwidth.
    numa_remote_factor: float = 0.6

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.numa_domains <= 0:
            raise ValueError("numa_domains must be positive")
        if self.cores_per_node % self.numa_domains != 0:
            raise ValueError(
                f"{self.cores_per_node} cores do not divide evenly into "
                f"{self.numa_domains} NUMA domains"
            )
        if not (0.0 < self.numa_remote_factor <= 1.0):
            raise ValueError("numa_remote_factor must be in (0, 1]")

    @property
    def cores_per_domain(self) -> int:
        return self.cores_per_node // self.numa_domains

    @property
    def flops_per_core(self) -> float:
        """Nominal double-precision rate (flops/s), 4 flops/cycle."""
        return self.ghz * 1e9 * 4.0


@dataclass(frozen=True)
class Core:
    """One hardware core, identified globally and within its containers."""

    global_id: int
    node_id: int
    #: NUMA domain index *within the node* (0 .. numa_domains-1).
    numa_local: int
    #: Core index within its NUMA domain.
    core_local: int

    def numa_global(self, numa_per_node: int) -> int:
        return self.node_id * numa_per_node + self.numa_local


@dataclass
class Node:
    """One compute node: an id plus its flavour."""

    node_id: int
    node_type: NodeType

    def core_ids(self) -> range:
        c = self.node_type.cores_per_node
        return range(self.node_id * c, (self.node_id + 1) * c)


@dataclass
class TreeNode:
    """A vertex of the architecture tree used by graph mapping.

    ``crossing_cost`` is the relative cost charged to a communication edge
    whose endpoints sit in *different* children of this vertex — the deeper
    in the tree two cores diverge, the cheaper their communication.
    """

    label: str
    level: TopologyLevel
    crossing_cost: float
    children: list["TreeNode"] = field(default_factory=list)
    #: Core global-ids contained in this subtree (leaves carry exactly one).
    cores: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_leaves(self) -> Iterator["TreeNode"]:
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()

    def total_slots(self) -> int:
        return len(self.cores)


# Default relative communication costs by divergence level.  Calibrated from
# the transports: same-L3 shm ≈ cache speed, cross-NUMA shm pays the remote
# factor, cross-node RDMA pays interconnect latency + bandwidth.
DEFAULT_LEVEL_COSTS = {
    TopologyLevel.MACHINE: 50.0,  # edge crosses nodes
    TopologyLevel.NODE: 3.0,      # edge crosses NUMA domains within a node
    TopologyLevel.NUMA: 1.0,      # edge crosses cores within one NUMA domain
    TopologyLevel.CORE: 0.0,      # same core (e.g. inline analytics)
}


class Machine:
    """A whole machine: homogeneous nodes + interconnect + file system.

    ``interconnect`` and ``filesystem`` are cost-model objects (see the
    sibling modules); they may be ``None`` for pure-topology uses such as
    unit-testing the placement algorithms.
    """

    def __init__(
        self,
        name: str,
        node_type: NodeType,
        num_nodes: int,
        interconnect: Optional[object] = None,
        filesystem: Optional[object] = None,
        cache_model: Optional[object] = None,
        level_costs: Optional[dict] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.name = name
        self.node_type = node_type
        self.num_nodes = int(num_nodes)
        self.interconnect = interconnect
        self.filesystem = filesystem
        self.cache_model = cache_model
        self.level_costs = dict(DEFAULT_LEVEL_COSTS)
        if level_costs:
            self.level_costs.update(level_costs)
        self.nodes = [Node(i, node_type) for i in range(self.num_nodes)]

    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node_type.cores_per_node

    def core(self, global_id: int) -> Core:
        """Resolve a global core id into its (node, numa, local) coordinates."""
        if not (0 <= global_id < self.total_cores):
            raise IndexError(f"core {global_id} out of range [0, {self.total_cores})")
        cpn = self.node_type.cores_per_node
        cpd = self.node_type.cores_per_domain
        node_id, in_node = divmod(global_id, cpn)
        numa_local, core_local = divmod(in_node, cpd)
        return Core(global_id, node_id, numa_local, core_local)

    def cores(self) -> Iterator[Core]:
        for gid in range(self.total_cores):
            yield self.core(gid)

    def node_of(self, core_id: int) -> int:
        return core_id // self.node_type.cores_per_node

    def numa_of(self, core_id: int) -> tuple[int, int]:
        """(node_id, numa_local) for a global core id."""
        c = self.core(core_id)
        return (c.node_id, c.numa_local)

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def same_numa(self, a: int, b: int) -> bool:
        return self.numa_of(a) == self.numa_of(b)

    # ------------------------------------------------------------------
    def divergence_level(self, a: int, b: int) -> TopologyLevel:
        """The tree level at which the paths to cores ``a`` and ``b`` split."""
        if a == b:
            return TopologyLevel.CORE
        ca, cb = self.core(a), self.core(b)
        if ca.node_id != cb.node_id:
            return TopologyLevel.MACHINE
        if ca.numa_local != cb.numa_local:
            return TopologyLevel.NODE
        return TopologyLevel.NUMA

    def comm_cost(self, a: int, b: int) -> float:
        """Relative cost of moving a byte between cores ``a`` and ``b``."""
        return self.level_costs[self.divergence_level(a, b)]

    # ------------------------------------------------------------------
    def arch_tree(
        self,
        nodes: Optional[Sequence[int]] = None,
        include_numa: bool = True,
    ) -> TreeNode:
        """Build the architecture tree over ``nodes`` (default: all nodes).

        ``include_numa=False`` yields the flat two-level tree the paper's
        holistic placement uses; ``True`` adds the NUMA level used by
        node-topology-aware placement.
        """
        node_ids = list(nodes) if nodes is not None else list(range(self.num_nodes))
        for nid in node_ids:
            if not (0 <= nid < self.num_nodes):
                raise IndexError(f"node {nid} out of range")
        root = TreeNode(
            label=self.name,
            level=TopologyLevel.MACHINE,
            crossing_cost=self.level_costs[TopologyLevel.MACHINE],
        )
        nt = self.node_type
        for nid in node_ids:
            node_tree = TreeNode(
                label=f"node{nid}",
                level=TopologyLevel.NODE,
                crossing_cost=self.level_costs[TopologyLevel.NODE],
            )
            base = nid * nt.cores_per_node
            if include_numa:
                for d in range(nt.numa_domains):
                    dom = TreeNode(
                        label=f"node{nid}/numa{d}",
                        level=TopologyLevel.NUMA,
                        crossing_cost=self.level_costs[TopologyLevel.NUMA],
                    )
                    for c in range(nt.cores_per_domain):
                        gid = base + d * nt.cores_per_domain + c
                        leaf = TreeNode(
                            label=f"core{gid}",
                            level=TopologyLevel.CORE,
                            crossing_cost=0.0,
                            cores=[gid],
                        )
                        dom.children.append(leaf)
                        dom.cores.append(gid)
                    node_tree.children.append(dom)
                    node_tree.cores.extend(dom.cores)
            else:
                for c in range(nt.cores_per_node):
                    gid = base + c
                    leaf = TreeNode(
                        label=f"core{gid}",
                        level=TopologyLevel.CORE,
                        crossing_cost=0.0,
                        cores=[gid],
                    )
                    node_tree.children.append(leaf)
                    node_tree.cores.append(gid)
            root.children.append(node_tree)
            root.cores.extend(node_tree.cores)
        return root

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Machine {self.name}: {self.num_nodes} nodes x "
            f"{self.node_type.cores_per_node} cores "
            f"({self.node_type.numa_domains} NUMA domains)>"
        )
