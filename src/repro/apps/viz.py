"""A real (small) volume renderer with PPM output (paper Section IV.B).

"The species data is fed into a parallel volume rendering code to
visualize images for each species ... running simulation and
visualization computation (and writing rendered image to files in PPM
format) as a two-stage pipeline."

Emission–absorption ray casting along one axis, front-to-back "over"
compositing, a perceptual-ish heat colormap, and binary PPM (P6) writing
and reading.  The parallel pattern is the paper's: each visualization
process renders the sub-volume it received through FlexIO's global-array
redistribution, then partial images composite in depth order.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np


def _heat_colormap(values: np.ndarray) -> np.ndarray:
    """Map [0,1] scalars to RGB (black→red→yellow→white)."""
    v = np.clip(values, 0.0, 1.0)
    r = np.clip(3.0 * v, 0, 1)
    g = np.clip(3.0 * v - 1.0, 0, 1)
    b = np.clip(3.0 * v - 2.0, 0, 1)
    return np.stack([r, g, b], axis=-1)


def transfer_function(
    field: np.ndarray,
    opacity_scale: float = 0.08,
    vrange: Optional[tuple[float, float]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a scalar field into per-voxel color and opacity.

    Pass ``vrange`` (global min/max) when rendering slabs of a larger
    field, so every slab normalizes identically and parallel compositing
    matches the serial render exactly.
    """
    if vrange is not None:
        lo, hi = float(vrange[0]), float(vrange[1])
    else:
        lo, hi = float(field.min()), float(field.max())
    span = hi - lo if hi > lo else 1.0
    norm = (field - lo) / span
    color = _heat_colormap(norm)
    alpha = np.clip(norm * opacity_scale, 0.0, 1.0)
    return color, alpha


def volume_render(
    field: np.ndarray,
    axis: int = 0,
    opacity_scale: float = 0.08,
    vrange: Optional[tuple[float, float]] = None,
) -> np.ndarray:
    """Ray-cast a 3-D scalar field to a premultiplied RGBA float image.

    Front-to-back emission–absorption compositing along ``axis``; the
    result carries premultiplied color in [..., :3] and accumulated alpha
    in [..., 3], so slab renders composite exactly with
    :func:`composite_over` (render(whole) == composite(render(slabs))).
    """
    if field.ndim != 3:
        raise ValueError(f"need a 3-D field, got shape {field.shape}")
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1, or 2")
    vol = np.moveaxis(field, axis, 0)
    color, alpha = transfer_function(vol, opacity_scale, vrange)

    h, w = vol.shape[1], vol.shape[2]
    out = np.zeros((h, w, 4))
    acc_rgb, acc_a = out[..., :3], out[..., 3]
    for depth in range(vol.shape[0]):
        contrib = (1.0 - acc_a) * alpha[depth]
        acc_rgb += contrib[..., None] * color[depth]
        acc_a += contrib
        if (acc_a > 0.995).all():
            break  # early ray termination
    return out


def composite_over(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Depth-ordered "over" compositing of premultiplied RGBA slabs.

    ``partials`` must be front-to-back along the ray direction — the
    parallel compositing step after each viz rank renders its slab.
    """
    if not partials:
        raise ValueError("nothing to composite")
    h, w, c = partials[0].shape
    if c != 4:
        raise ValueError("partials must be RGBA")
    out = np.zeros((h, w, 4))
    acc_rgb, acc_a = out[..., :3], out[..., 3]
    for img in partials:
        if img.shape != (h, w, 4):
            raise ValueError("all partials must share shape")
        transparency = (1.0 - acc_a)
        acc_rgb += transparency[..., None] * img[..., :3]
        acc_a += transparency * img[..., 3]
    return out


def to_uint8(image: np.ndarray, background: float = 0.0) -> np.ndarray:
    """Flatten a premultiplied RGBA render onto ``background`` as uint8 RGB."""
    rgb = image[..., :3] + (1.0 - image[..., 3:4]) * background
    return (np.clip(rgb, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path: str | os.PathLike, image: np.ndarray) -> int:
    """Write an RGB uint8 (or RGBA float) image as binary PPM (P6).

    Returns bytes written.
    """
    if image.ndim == 3 and image.shape[2] == 4:
        image = to_uint8(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError("write_ppm needs (H, W, 3) uint8 or (H, W, 4) float")
    h, w = image.shape[:2]
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    payload = header + image.tobytes()
    with open(path, "wb") as fh:
        fh.write(payload)
    return len(payload)


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM (P6) back into an (H, W, 3) uint8 array."""
    with open(path, "rb") as fh:
        data = fh.read()
    if not data.startswith(b"P6"):
        raise ValueError(f"{path}: not a P6 PPM")
    # Header: magic, width, height, maxval — whitespace separated.
    fields: list[bytes] = []
    pos = 2
    while len(fields) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":  # comment line
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    pos += 1  # the single whitespace after maxval
    w, h, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise ValueError("only maxval 255 supported")
    pixels = np.frombuffer(data[pos : pos + w * h * 3], dtype=np.uint8)
    return pixels.reshape(h, w, 3).copy()
