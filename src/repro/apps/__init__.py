"""Application models (paper Section IV).

The evaluation couples FlexIO to two leadership applications; we rebuild
their observable behaviour:

* :mod:`repro.apps.gts` — the GTS gyrokinetic fusion simulation: each rank
  outputs two 2-D particle arrays (zions, electrons) with seven attributes
  per particle, ~110 MB per process every two simulation cycles, run in
  OpenMP/MPI hybrid mode with a serial region limiting thread scaling.
* :mod:`repro.apps.analytics` — GTS's online analysis chain, really
  implemented: particle distribution function, a ~20 %-selective range
  query on velocity, and 1-D/2-D histograms for parallel-coordinates
  visualization.
* :mod:`repro.apps.s3d` — S3D_Box direct numerical combustion simulation:
  22 3-D double-precision species arrays totalling 1.7 MB per process
  every ten cycles, on a 3-D block decomposition.
* :mod:`repro.apps.viz` — a real (small) parallel volume renderer over the
  redistributed species fields, emission–absorption ray casting with
  depth-ordered compositing, writing PPM images as the paper's pipeline
  does.
"""

from repro.apps.gts import GtsConfig, GtsRank, gts_analytics_profile, gts_sim_profile
from repro.apps.analytics import (
    GtsAnalytics,
    histogram1d,
    histogram2d,
    particle_distribution,
    range_query,
)
from repro.apps.pixie3d import (
    MhdDiagnostics,
    Pixie3dAnalysis,
    Pixie3dConfig,
    Pixie3dRank,
    curl,
    divergence,
    pixie3d_analysis_profile,
    pixie3d_sim_profile,
)
from repro.apps.s3d import S3dConfig, S3dRank, s3d_sim_profile, s3d_viz_profile
from repro.apps.viz import composite_over, read_ppm, volume_render, write_ppm

__all__ = [
    "GtsAnalytics",
    "GtsConfig",
    "GtsRank",
    "MhdDiagnostics",
    "Pixie3dAnalysis",
    "Pixie3dConfig",
    "Pixie3dRank",
    "curl",
    "divergence",
    "pixie3d_analysis_profile",
    "pixie3d_sim_profile",
    "S3dConfig",
    "S3dRank",
    "composite_over",
    "gts_analytics_profile",
    "gts_sim_profile",
    "histogram1d",
    "histogram2d",
    "particle_distribution",
    "range_query",
    "read_ppm",
    "s3d_sim_profile",
    "s3d_viz_profile",
    "volume_render",
    "write_ppm",
]
