"""GTS (Gyrokinetic Tokamak Simulation) workload model.

GTS is a 3-D particle-in-cell code studying microturbulence in tokamak
plasmas.  What FlexIO sees of it (paper Section IV.A):

* per rank, per output: two 2-D particle arrays — ``zion`` and
  ``electron`` — with **seven attributes per particle**: three spatial
  coordinates, parallel and perpendicular velocity, statistical weight,
  and a particle id;
* ~**110 MB of particle data per process** in the production
  configuration, output **every two simulation cycles**;
* OpenMP/MPI hybrid execution with serial code regions, so thread scaling
  is sub-linear — taking one core from a 4-thread rank slows the
  simulation by only ~2.7 %;
* particle counts drift between steps as particles move between ranks
  (the behaviour motivating the RDMA registration cache).

The particle *contents* here are synthetic (drifting Maxwellian
distributions) but dimensionally and statistically shaped like PIC
output, so the analytics chain downstream computes meaningful results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placement.algorithms import AnalyticsProfile, SimProfile
from repro.util import MiB, rng

#: Attribute columns of the particle arrays.
ATTRS = ("x", "y", "z", "v_par", "v_perp", "weight", "particle_id")
NUM_ATTRS = 7


@dataclass(frozen=True)
class GtsConfig:
    """One GTS run configuration."""

    num_ranks: int
    #: Particles per rank per species (zion + electron arrays each).
    particles_per_rank: int = 1_000_000
    #: OpenMP threads per MPI rank.
    omp_threads: int = 4
    #: Cycles between outputs ("every two simulation cycles").
    output_every: int = 2
    #: Wall seconds of one simulation cycle at 4 threads (production-like).
    cycle_time_4t: float = 15.0
    #: Fraction of cycle work that does not scale with threads
    #: (calibrated so 4→3 threads costs ~2.7 %).
    omp_serial_fraction: float = 0.745
    #: Fractional particle-count jitter between steps (particle movement).
    count_jitter: float = 0.02
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.particles_per_rank <= 0:
            raise ValueError("ranks and particles must be positive")
        if self.omp_threads < 1:
            raise ValueError("omp_threads must be >= 1")
        if not (0 <= self.count_jitter < 1):
            raise ValueError("count_jitter in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def bytes_per_rank(self) -> int:
        """Output volume per rank per step (both species)."""
        return 2 * self.particles_per_rank * NUM_ATTRS * 8

    def cycle_time(self, threads: int | None = None) -> float:
        """One simulation cycle's wall time at ``threads`` OpenMP threads.

        Amdahl over the thread count, normalized to the 4-thread
        production configuration.
        """
        t = threads if threads is not None else self.omp_threads
        if t < 1:
            raise ValueError("threads must be >= 1")
        f = self.omp_serial_fraction

        def scaled(k: int) -> float:
            return f + (1.0 - f) / k

        return self.cycle_time_4t * scaled(t) / scaled(4)

    @property
    def io_interval(self) -> float:
        """Compute seconds between outputs at the configured thread count."""
        return self.output_every * self.cycle_time()

    def grid(self) -> tuple[int, int]:
        """GTS's logical 2-D process grid (poloidal × toroidal)."""
        a = int(np.sqrt(self.num_ranks))
        while self.num_ranks % a:
            a -= 1
        return (a, self.num_ranks // a)


class GtsRank:
    """One GTS MPI rank's output generator (deterministic per rank/step)."""

    def __init__(self, config: GtsConfig, rank: int) -> None:
        if not (0 <= rank < config.num_ranks):
            raise ValueError(f"rank {rank} out of range")
        self.config = config
        self.rank = rank
        self._next_id = rank * 10_000_000_000

    def particle_count(self, step: int) -> int:
        """Particles held this step — drifts as particles move."""
        g = rng(hash((self.config.seed, self.rank, step)) & 0x7FFFFFFF)
        base = self.config.particles_per_rank
        jitter = self.config.count_jitter
        return int(base * (1.0 + jitter * (2.0 * g.random() - 1.0)))

    def _species(self, step: int, species: str, count: int) -> np.ndarray:
        g = rng(hash((self.config.seed, self.rank, step, species)) & 0x7FFFFFFF)
        out = np.empty((count, NUM_ATTRS), dtype=np.float64)
        # Toroidal coordinates: radial band per rank, angles uniform.
        out[:, 0] = g.uniform(0.1 + 0.8 * self.rank / self.config.num_ranks,
                              0.1 + 0.8 * (self.rank + 1) / self.config.num_ranks,
                              size=count)
        out[:, 1] = g.uniform(0.0, 2 * np.pi, size=count)
        out[:, 2] = g.uniform(0.0, 2 * np.pi, size=count)
        # Velocities: drifting Maxwellian; electrons are hotter.
        vth = 1.0 if species == "zion" else 2.5
        out[:, 3] = g.normal(0.15 * np.sin(step / 3.0), vth, size=count)
        out[:, 4] = np.abs(g.normal(0.0, vth, size=count))
        out[:, 5] = g.uniform(0.5, 1.5, size=count)  # statistical weights
        out[:, 6] = np.arange(self._next_id, self._next_id + count, dtype=np.float64)
        self._next_id += count
        return out

    def output(self, step: int) -> dict[str, np.ndarray]:
        """The rank's process-group payload for one output step."""
        count = self.particle_count(step)
        return {
            "zion": self._species(step, "zion", count),
            "electron": self._species(step, "electron", count),
        }


# ---------------------------------------------------------------------------
# Profile builders for the placement algorithms
# ---------------------------------------------------------------------------

def gts_sim_profile(config: GtsConfig, halo_bytes: float = 2 * MiB) -> SimProfile:
    """GTS as the placement algorithms see it."""
    return SimProfile(
        num_ranks=config.num_ranks,
        threads_per_rank=config.omp_threads,
        io_interval=config.io_interval,
        bytes_per_rank=config.bytes_per_rank,
        grid=config.grid(),
        halo_bytes=halo_bytes,
    )


def gts_analytics_profile(config: GtsConfig) -> AnalyticsProfile:
    """The GTS analysis chain's strong-scaling profile.

    Calibrated to the paper's Figure 7: inline analytics weigh 23.6 % of
    GTS runtime, i.e. one analytics process handles one rank's step data
    in ``0.236 × io_interval`` — and the chain (histogramming) is nearly
    perfectly parallel over particles.
    """
    per_rank_time = 0.236 * config.io_interval
    return AnalyticsProfile(
        time_single=per_rank_time * config.num_ranks,
        serial_fraction=0.01,
        internal_ring_bytes=64 * 1024,  # histogram reduction traffic
        threads_per_rank=1,
    )
