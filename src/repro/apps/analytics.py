"""GTS's online analysis chain, really implemented (paper Section IV.A).

"The particle data is processed by a series of analysis steps, including
the calculation of particle distribution function and a range query on
the velocity attributes of all particles.  The query result is ~20 % of
the original output particles.  1D and 2D histograms are generated from
the query results and written to files which can then be used for
parallel coordinates visualization."
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.apps.gts import ATTRS, NUM_ATTRS

#: Column indices into the particle arrays.
COL = {name: i for i, name in enumerate(ATTRS)}


def particle_distribution(
    particles: np.ndarray, bins: int = 64, v_range: tuple[float, float] = (-6.0, 6.0)
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted distribution function f(v_par).

    Returns (bin_edges, density); weights are the particles' statistical
    weights, density normalized to integrate to 1.
    """
    _check(particles)
    if bins < 1:
        raise ValueError("bins must be >= 1")
    hist, edges = np.histogram(
        particles[:, COL["v_par"]],
        bins=bins,
        range=v_range,
        weights=particles[:, COL["weight"]],
        density=True,
    )
    return edges, hist


def range_query(
    particles: np.ndarray,
    lo: float,
    hi: float,
    column: str = "v_par",
) -> np.ndarray:
    """Select particles with ``lo <= column <= hi`` (view-free copy)."""
    _check(particles)
    if column not in COL:
        raise KeyError(f"unknown attribute {column!r}; have {list(COL)}")
    v = particles[:, COL[column]]
    return particles[(v >= lo) & (v <= hi)]


def quantile_range(particles: np.ndarray, selectivity: float = 0.2,
                   column: str = "v_par") -> tuple[float, float]:
    """The symmetric [lo, hi] band capturing ``selectivity`` of particles.

    GTS's production query keeps ~20 % of particles; this computes the
    band that achieves a requested selectivity on the actual data.
    """
    _check(particles)
    if not (0 < selectivity <= 1):
        raise ValueError("selectivity in (0, 1]")
    v = particles[:, COL[column]]
    center = float(np.median(v))
    half = float(np.quantile(np.abs(v - center), selectivity))
    return (center - half, center + half)


def histogram1d(
    particles: np.ndarray, column: str = "v_perp", bins: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted 1-D histogram of one attribute."""
    _check(particles)
    hist, edges = np.histogram(
        particles[:, COL[column]], bins=bins, weights=particles[:, COL["weight"]]
    )
    return edges, hist


def histogram2d(
    particles: np.ndarray,
    col_x: str = "v_par",
    col_y: str = "v_perp",
    bins: int = 50,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Weighted 2-D histogram over two attributes (parallel-coordinates
    visualization input)."""
    _check(particles)
    hist, xe, ye = np.histogram2d(
        particles[:, COL[col_x]],
        particles[:, COL[col_y]],
        bins=bins,
        weights=particles[:, COL["weight"]],
    )
    return xe, ye, hist


def _check(particles: np.ndarray) -> None:
    if particles.ndim != 2 or particles.shape[1] != NUM_ATTRS:
        raise ValueError(
            f"particle array must be (n, {NUM_ATTRS}), got {particles.shape}"
        )


@dataclass
class AnalyticsResult:
    """One step's analysis products."""

    step: int
    total_particles: int
    selected_particles: int
    distribution: tuple[np.ndarray, np.ndarray]
    hist1d: tuple[np.ndarray, np.ndarray]
    hist2d: tuple[np.ndarray, np.ndarray, np.ndarray]

    @property
    def selectivity(self) -> float:
        if self.total_particles == 0:
            return 0.0
        return self.selected_particles / self.total_particles


class GtsAnalytics:
    """The full chain: distribution → range query → histograms → files."""

    def __init__(
        self,
        selectivity: float = 0.2,
        bins: int = 50,
        query_column: str = "v_par",
    ) -> None:
        if not (0 < selectivity <= 1):
            raise ValueError("selectivity in (0, 1]")
        self.selectivity = selectivity
        self.bins = bins
        self.query_column = query_column
        #: Accumulated over steps (for idle/throughput accounting).
        self.steps_processed = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def process(self, record: dict[str, np.ndarray], step: int = 0) -> AnalyticsResult:
        """Analyze one process group's zion+electron arrays."""
        arrays = [record[k] for k in ("zion", "electron") if k in record]
        if not arrays:
            raise KeyError("record has neither 'zion' nor 'electron'")
        particles = np.vstack(arrays)
        self.bytes_in += particles.nbytes

        distribution = particle_distribution(particles, bins=self.bins)
        lo, hi = quantile_range(particles, self.selectivity, self.query_column)
        selected = range_query(particles, lo, hi, self.query_column)
        h1 = histogram1d(selected, bins=self.bins)
        h2 = histogram2d(selected, bins=self.bins)

        self.steps_processed += 1
        self.bytes_out += selected.nbytes
        return AnalyticsResult(
            step=step,
            total_particles=len(particles),
            selected_particles=len(selected),
            distribution=distribution,
            hist1d=h1,
            hist2d=h2,
        )

    @staticmethod
    def save(result: AnalyticsResult, path: str) -> None:
        """Persist histograms for offline parallel-coordinates plotting."""
        np.savez(
            path,
            dist_edges=result.distribution[0],
            dist=result.distribution[1],
            h1_edges=result.hist1d[0],
            h1=result.hist1d[1],
            h2_xedges=result.hist2d[0],
            h2_yedges=result.hist2d[1],
            h2=result.hist2d[2],
            meta=np.array([result.step, result.total_particles, result.selected_particles]),
        )

    def run_stream(
        self,
        reader,
        num_writers: int,
        save_dir: Optional[str] = None,
        on_step: Optional[Callable] = None,
        timeout: Optional[float] = 10.0,
    ) -> list[AnalyticsResult]:
        """Consume a FlexIO stream with the step-oriented read API.

        Drives ``begin_step()/end_step()`` until ``EndOfStream``; each
        step runs the full chain on every writer rank's process group
        (zion + electron blocks).  With ``save_dir`` the histograms land
        as ``hist_s<step>_r<rank>.npz``; ``on_step(reader, step)`` runs
        extra per-step work (e.g. global-array reads) while the step is
        positioned.
        """
        from repro.adios import StepStatus

        results: list[AnalyticsResult] = []
        while True:
            status = reader.begin_step(timeout=timeout)
            if status is not StepStatus.OK:
                break
            step = getattr(reader, "current_step", self.steps_processed)
            for writer_rank in range(num_writers):
                record = {
                    "zion": reader.read_block("zion", writer_rank),
                    "electron": reader.read_block("electron", writer_rank),
                }
                result = self.process(record, step=step)
                results.append(result)
                if save_dir is not None:
                    self.save(
                        result,
                        os.path.join(save_dir, f"hist_s{step}_r{writer_rank}.npz"),
                    )
            if on_step is not None:
                on_step(reader, step)
            reader.end_step()
        return results

    @property
    def reduction_ratio(self) -> float:
        """Query output bytes / input bytes — the ~20 % of the paper."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 0.0
