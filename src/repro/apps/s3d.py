"""S3D_Box combustion workload model (paper Section IV.B).

S3D performs direct numerical simulation of turbulent combustion;
S3D_Box is the team's reduced test version.  What FlexIO sees:

* per rank, per output: **22 three-dimensional double-precision species
  arrays** totalling **1.7 MB per process** (the production output size);
* output **every ten simulation cycles**;
* a 3-D block domain decomposition with heavy internal halo exchange —
  which is why intra-program MPI dominates and staging placement wins.

Fields are synthetic but smooth and time-coherent (advected Gaussian
flame kernels plus turbulence noise), so volume rendering them produces
structured images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adios.selection import BoundingBox, block_decompose, choose_grid
from repro.placement.algorithms import AnalyticsProfile, SimProfile
from repro.util import MiB, rng

#: The 22 species S3D tracks in the paper-era ethylene mechanism.
SPECIES = (
    "H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2",
    "CO", "CO2", "HCO", "CH2O", "CH3", "CH4", "C2H2", "C2H4",
    "C2H6", "CH2", "CH", "C2H3", "C2H5", "N2",
)
NUM_SPECIES = 22


@dataclass(frozen=True)
class S3dConfig:
    """One S3D_Box run configuration."""

    num_ranks: int
    #: Local block edge (cube): 21³ points × 8 B × 22 species ≈ 1.63 MB,
    #: matching the paper's 1.7 MB per-process output.
    local_edge: int = 21
    output_every: int = 10
    #: Wall seconds of one simulation cycle.
    cycle_time: float = 2.0
    #: Internal halo exchange bytes per neighbouring rank pair per interval.
    halo_bytes: float = 40 * MiB
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.local_edge <= 0:
            raise ValueError("ranks and edge must be positive")

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.local_edge,) * 3

    @property
    def bytes_per_rank(self) -> int:
        return NUM_SPECIES * self.local_edge**3 * 8

    @property
    def io_interval(self) -> float:
        return self.output_every * self.cycle_time

    def grid(self) -> tuple[int, int, int]:
        """Near-cubic 3-D process grid (S3D's logical layout)."""
        g = choose_grid(self.num_ranks, 3)
        return (g[0], g[1], g[2])

    @property
    def global_shape(self) -> tuple[int, int, int]:
        g = self.grid()
        return tuple(d * self.local_edge for d in g)  # type: ignore[return-value]

    def boxes(self) -> list[BoundingBox]:
        """Each rank's block within the global field."""
        return block_decompose(self.global_shape, self.grid())


class S3dRank:
    """One S3D rank's field generator: smooth, time-coherent species data."""

    def __init__(self, config: S3dConfig, rank: int) -> None:
        if not (0 <= rank < config.num_ranks):
            raise ValueError(f"rank {rank} out of range")
        self.config = config
        self.rank = rank
        self.box = config.boxes()[rank]

    def _coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        gs = self.config.global_shape
        axes = [
            (np.arange(s, s + c) + 0.5) / g
            for s, c, g in zip(self.box.start, self.box.count, gs)
        ]
        return np.meshgrid(*axes, indexing="ij")  # type: ignore[return-value]

    def species_field(self, step: int, species: str) -> np.ndarray:
        """One species' local block at one step.

        A flame kernel (Gaussian blob) advects diagonally with time; each
        species gets a phase offset and its own turbulence noise.
        """
        if species not in SPECIES:
            raise KeyError(f"unknown species {species!r}")
        sp_idx = SPECIES.index(species)
        x, y, z = self._coords()
        t = 0.03 * step + 0.11 * sp_idx
        cx, cy, cz = (0.3 + t) % 1.0, (0.5 + 0.7 * t) % 1.0, (0.4 + 0.4 * t) % 1.0
        r2 = (x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2
        field = np.exp(-r2 / 0.02)
        g = rng(hash((self.config.seed, self.rank, step, species)) & 0x7FFFFFFF)
        field = field + 0.05 * g.standard_normal(field.shape)
        return np.ascontiguousarray(field)

    def output(self, step: int) -> dict[str, np.ndarray]:
        """All 22 species blocks for one output step."""
        return {sp: self.species_field(step, sp) for sp in SPECIES}


# ---------------------------------------------------------------------------
# Profile builders
# ---------------------------------------------------------------------------

def s3d_sim_profile(config: S3dConfig) -> SimProfile:
    return SimProfile(
        num_ranks=config.num_ranks,
        threads_per_rank=1,
        io_interval=config.io_interval,
        bytes_per_rank=config.bytes_per_rank,
        grid=config.grid(),
        halo_bytes=config.halo_bytes,
    )


def s3d_viz_profile(config: S3dConfig, render_time_per_mb: float = 8.0) -> AnalyticsProfile:
    """The volume renderer's scaling profile.

    Rendering parallelizes over sub-volumes with a small compositing
    serial tail; sized so the paper's 128:1 allocation ratio falls out of
    rate matching at production scale.
    """
    total_mb = config.num_ranks * config.bytes_per_rank / MiB
    return AnalyticsProfile(
        time_single=render_time_per_mb * total_mb / 25.0,
        serial_fraction=0.08,
        internal_ring_bytes=2 * MiB,  # image compositing exchanges
        threads_per_rank=1,
    )
