"""Pixie3D workload model and its online analysis pipeline.

Paper Section II.H: "Earlier, we applied FlexIO to an online analysis
and visualization pipeline for the Pixie3D application on the Cray XT5."
Pixie3D is a 3-D extended-MHD (magnetohydrodynamics) solver; its
coupled pipeline (Pixplot) computes derived quantities from the
conserved fields and renders them.

The model here generates real MHD-shaped fields — a screw-pinch
equilibrium (axial + twisted azimuthal magnetic field) with helical
perturbations — and the analysis pipeline really computes:

* the current density **J = ∇ × B** (central differences),
* scalar diagnostics: magnetic / kinetic energy, max |J|, mean density,
* a mid-plane slice of any derived field, render-ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.adios.selection import BoundingBox, block_decompose, choose_grid
from repro.placement.algorithms import AnalyticsProfile, SimProfile
from repro.util import MiB, rng

#: The eight conserved fields Pixie3D exchanges per output.
FIELDS = ("rho", "p", "vx", "vy", "vz", "bx", "by", "bz")


@dataclass(frozen=True)
class Pixie3dConfig:
    """One Pixie3D run configuration."""

    num_ranks: int
    #: Local block edge (cubes).
    local_edge: int = 16
    output_every: int = 5
    cycle_time: float = 4.0
    halo_bytes: float = 24 * MiB
    #: Screw-pinch twist parameter (field-line pitch).
    twist: float = 2.0
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.local_edge <= 1:
            raise ValueError("ranks must be positive, edge must be > 1")

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.local_edge,) * 3

    @property
    def bytes_per_rank(self) -> int:
        return len(FIELDS) * self.local_edge**3 * 8

    @property
    def io_interval(self) -> float:
        return self.output_every * self.cycle_time

    def grid(self) -> tuple[int, int, int]:
        g = choose_grid(self.num_ranks, 3)
        return (g[0], g[1], g[2])

    @property
    def global_shape(self) -> tuple[int, int, int]:
        g = self.grid()
        return tuple(d * self.local_edge for d in g)  # type: ignore[return-value]

    def boxes(self) -> list[BoundingBox]:
        return block_decompose(self.global_shape, self.grid())

    @property
    def spacing(self) -> float:
        """Grid spacing on the unit cube."""
        return 1.0 / max(self.global_shape)


class Pixie3dRank:
    """One rank's field generator: screw pinch + helical perturbation."""

    def __init__(self, config: Pixie3dConfig, rank: int) -> None:
        if not (0 <= rank < config.num_ranks):
            raise ValueError(f"rank {rank} out of range")
        self.config = config
        self.rank = rank
        self.box = config.boxes()[rank]

    def _coords(self):
        gs = self.config.global_shape
        axes = [
            (np.arange(s, s + c) + 0.5) / g
            for s, c, g in zip(self.box.start, self.box.count, gs)
        ]
        return np.meshgrid(*axes, indexing="ij")

    def output(self, step: int) -> dict[str, np.ndarray]:
        """All eight fields for one output step."""
        x, y, z = self._coords()
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
        r = np.sqrt(r2)
        q = self.config.twist
        t = 0.02 * step
        g = rng(hash((self.config.seed, self.rank, step)) & 0x7FFFFFFF)
        noise = lambda: 0.01 * g.standard_normal(x.shape)  # noqa: E731

        # Screw pinch: Bz axial, B_theta azimuthal ∝ r/(1+r²) twisted by q.
        btheta = q * r / (1.0 + (q * r) ** 2)
        theta_hat_x = np.where(r > 1e-12, -(y - 0.5) / np.maximum(r, 1e-12), 0.0)
        theta_hat_y = np.where(r > 1e-12, (x - 0.5) / np.maximum(r, 1e-12), 0.0)
        helical = 0.05 * np.sin(2 * np.pi * (z + t)) * np.exp(-r2 / 0.05)
        fields = {
            "bx": btheta * theta_hat_x + helical + noise(),
            "by": btheta * theta_hat_y + noise(),
            "bz": 1.0 / (1.0 + (q * r) ** 2) + noise(),
            "vx": helical + noise(),
            "vy": -helical + noise(),
            "vz": 0.02 * np.cos(2 * np.pi * (z + t)) + noise(),
            "rho": 1.0 + 0.1 * np.exp(-r2 / 0.02) + noise(),
            "p": 0.5 / (1.0 + (q * r) ** 2) ** 2 + noise(),
        }
        return {k: np.ascontiguousarray(v) for k, v in fields.items()}


# ---------------------------------------------------------------------------
# The analysis pipeline (Pixplot-style derived quantities)
# ---------------------------------------------------------------------------

def curl(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray, spacing: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """∇ × F by central differences — J = ∇ × B is Pixie3D's key derived
    quantity (Ampère's law, current density)."""
    if not (fx.shape == fy.shape == fz.shape):
        raise ValueError("component shapes differ")
    if fx.ndim != 3:
        raise ValueError("curl needs 3-D fields")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    dfz_dy = np.gradient(fz, spacing, axis=1)
    dfy_dz = np.gradient(fy, spacing, axis=2)
    dfx_dz = np.gradient(fx, spacing, axis=2)
    dfz_dx = np.gradient(fz, spacing, axis=0)
    dfy_dx = np.gradient(fy, spacing, axis=0)
    dfx_dy = np.gradient(fx, spacing, axis=1)
    return (dfz_dy - dfy_dz, dfx_dz - dfz_dx, dfy_dx - dfx_dy)


def divergence(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray, spacing: float
) -> np.ndarray:
    """∇ · F — a solenoidal check on the magnetic field."""
    return (
        np.gradient(fx, spacing, axis=0)
        + np.gradient(fy, spacing, axis=1)
        + np.gradient(fz, spacing, axis=2)
    )


@dataclass
class MhdDiagnostics:
    """Scalar diagnostics of one step."""

    step: int
    magnetic_energy: float
    kinetic_energy: float
    max_current: float
    mean_density: float
    mean_abs_div_b: float


class Pixie3dAnalysis:
    """The online pipeline: J = ∇×B, diagnostics, mid-plane slices."""

    def __init__(self, spacing: float) -> None:
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        self.spacing = spacing
        self.steps_processed = 0

    def current_density(self, record: dict) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return curl(record["bx"], record["by"], record["bz"], self.spacing)

    def diagnostics(self, record: dict, step: int = 0) -> MhdDiagnostics:
        missing = [f for f in FIELDS if f not in record]
        if missing:
            raise KeyError(f"record missing fields {missing}")
        jx, jy, jz = self.current_density(record)
        b2 = record["bx"] ** 2 + record["by"] ** 2 + record["bz"] ** 2
        v2 = record["vx"] ** 2 + record["vy"] ** 2 + record["vz"] ** 2
        dv = self.spacing**3
        div_b = divergence(record["bx"], record["by"], record["bz"], self.spacing)
        self.steps_processed += 1
        return MhdDiagnostics(
            step=step,
            magnetic_energy=float(0.5 * b2.sum() * dv),
            kinetic_energy=float(0.5 * (record["rho"] * v2).sum() * dv),
            max_current=float(np.sqrt(jx**2 + jy**2 + jz**2).max()),
            mean_density=float(record["rho"].mean()),
            mean_abs_div_b=float(np.abs(div_b).mean()),
        )

    def slice_field(
        self, field: np.ndarray, axis: int = 2, index: Optional[int] = None
    ) -> np.ndarray:
        """A 2-D mid-plane (or chosen) slice, visualization-ready."""
        if field.ndim != 3:
            raise ValueError("slice_field needs a 3-D field")
        if index is None:
            index = field.shape[axis] // 2
        return np.take(field, index, axis=axis)


# ---------------------------------------------------------------------------
# Profiles for placement / coupled runs
# ---------------------------------------------------------------------------

def pixie3d_sim_profile(config: Pixie3dConfig) -> SimProfile:
    return SimProfile(
        num_ranks=config.num_ranks,
        threads_per_rank=1,
        io_interval=config.io_interval,
        bytes_per_rank=config.bytes_per_rank,
        grid=config.grid(),
        halo_bytes=config.halo_bytes,
    )


def pixie3d_analysis_profile(
    config: Pixie3dConfig, seconds_per_mb: float = 0.05
) -> AnalyticsProfile:
    total_mb = config.num_ranks * config.bytes_per_rank / MiB
    return AnalyticsProfile(
        time_single=seconds_per_mb * total_mb,
        serial_fraction=0.05,
        internal_ring_bytes=1 * MiB,
        threads_per_rank=1,
    )
