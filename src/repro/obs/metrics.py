"""Metrics registry: counters, gauges, and log-bucketed histograms.

Complements the span layer (:mod:`repro.obs.tracing`) with the numeric
side of Section II.G's monitoring: monotonically increasing counters
(bytes moved, messages sent), point-in-time gauges (queue depth,
buffer-pool occupancy, registration-cache size), and latency histograms
with percentile queries.

Histograms use exponential (log-spaced) buckets so a fixed, small number
of integer counters covers ten orders of magnitude of durations with a
bounded *relative* error — the classic HdrHistogram/DDSketch trade-off.
With the default growth factor of ``2**(1/16)`` a reported percentile is
within ~4.4 % of the exact sample value.

Instruments take optional **labels** (per-stream, per-tenant, ...):
``metrics.counter("steps", labels={"stream": "s1"})`` is a distinct
series from the unlabeled ``metrics.counter("steps")``, keyed by the
Prometheus-style rendering ``steps{stream="s1"}``.  ``merge_from`` is
label-aware: each series folds into the matching series on the other
side, never into its unlabeled sibling.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional


def label_key(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """The registry key of one series: Prometheus-style ``name{k="v"}``.

    Unlabeled series keep the bare name, so every pre-label call site
    (and every existing snapshot consumer) sees unchanged keys.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, bytes, messages)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Optional[Mapping[str, object]] = None) -> None:
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else {}

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge for deltas")
        self.value += n


class Gauge:
    """Point-in-time value (queue depth, pool occupancy, cache bytes)."""

    __slots__ = ("name", "value", "max_value", "samples", "labels")

    def __init__(self, name: str, labels: Optional[Mapping[str, object]] = None) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self.samples = 0
        self.labels = dict(labels) if labels else {}

    def set(self, v: float) -> None:
        self.value = float(v)
        self.max_value = max(self.max_value, self.value)
        self.samples += 1

    def inc(self, n: float = 1) -> None:
        """Delta update (e.g. queue depth on enqueue)."""
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.set(self.value - n)


class Histogram:
    """Log-bucketed histogram with percentile queries.

    Values at or below zero land in a dedicated underflow bucket (they
    occur for zero-duration simulated records).  Bucket *i* covers
    ``(base * growth**(i-1), base * growth**i]``; a percentile query
    returns the geometric midpoint of its bucket, plus exact ``min``
    and ``max`` for the 0th and 100th percentiles.
    """

    __slots__ = ("name", "base", "growth", "_log_growth", "_counts",
                 "zero_count", "count", "total", "min", "max", "labels")

    def __init__(
        self,
        name: str,
        base: float = 1e-9,
        growth: float = 2 ** (1 / 16),
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        if base <= 0 or growth <= 1.0:
            raise ValueError("need base > 0 and growth > 1")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.base = base
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, v: float) -> int:
        return max(0, math.ceil(math.log(v / self.base) / self._log_growth))

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        if v <= self.base:
            self.zero_count += 1
            return
        idx = self._bucket(v)
        self._counts[idx] = self._counts.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not (0.0 <= q <= 100.0):
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = self.zero_count
        if rank <= seen:
            return min(self.base, self.max)
        for idx in sorted(self._counts):
            seen += self._counts[idx]
            if rank <= seen:
                upper = self.base * self.growth ** idx
                lower = upper / self.growth
                mid = math.sqrt(lower * upper)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - defensive

    def merge_from(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        if (other.base, other.growth) != (self.base, self.growth):
            raise ValueError("cannot merge histograms with different bucket layouts")
        for idx, c in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + c
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """Named metric instruments with get-or-create access.

    ``monitor.metrics.counter("shm.bytes_sent").inc(n)`` — instruments
    are created on first touch so producers need no registration step.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Counter:
        key = label_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, labels)
        return c

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Gauge:
        key = label_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, labels)
        return g

    def histogram(self, name: str, labels: Optional[Mapping[str, object]] = None, **kw) -> Histogram:
        key = label_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, labels=labels, **kw)
        return h

    # -- typed iteration (live exposition) -----------------------------
    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one JSON-friendly dict."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for n, c in sorted(self._counters.items()):
            out["counters"][n] = c.value
        for n, g in sorted(self._gauges.items()):
            out["gauges"][n] = {"value": g.value, "max": g.max_value}
        for n, h in sorted(self._histograms.items()):
            out["histograms"][n] = {
                "count": h.count,
                "mean": h.mean,
                "p50": h.percentile(50),
                "p95": h.percentile(95),
                "p99": h.percentile(99),
                "max": h.max if h.count else 0.0,
            }
        return out

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold a remote registry into this one (counters add, gauges
        keep the max high-water mark, histograms merge buckets).  Each
        labeled series folds into the series with the *same* labels —
        never into its unlabeled sibling."""
        for c in other._counters.values():
            self.counter(c.name, c.labels).value += c.value
        for g in other._gauges.values():
            mine = self.gauge(g.name, g.labels)
            mine.value = max(mine.value, g.value)
            mine.max_value = max(mine.max_value, g.max_value)
            mine.samples += g.samples
        for h in other._histograms.values():
            self.histogram(
                h.name, labels=h.labels, base=h.base, growth=h.growth
            ).merge_from(h)

    def render(self) -> list[str]:
        """Human-readable lines for :meth:`PerfMonitor.report`."""
        lines: list[str] = []
        for n, c in sorted(self._counters.items()):
            lines.append(f"counter  {n:32s} {c.value:>14g}")
        for n, g in sorted(self._gauges.items()):
            lines.append(
                f"gauge    {n:32s} {g.value:>14g}  (max {g.max_value:g})"
            )
        for n, h in sorted(self._histograms.items()):
            if not h.count:
                continue
            lines.append(
                f"hist     {n:32s} n={h.count:<8d} mean={h.mean:.3e} "
                f"p50={h.percentile(50):.3e} p95={h.percentile(95):.3e} "
                f"p99={h.percentile(99):.3e} max={h.max:.3e}"
            )
        return lines
