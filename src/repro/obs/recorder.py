"""Always-on flight recorder: a fixed-capacity ring of compact events.

Tracing (:mod:`repro.obs.tracing`) is opt-in and post-hoc: it explains a
run after it ends, if someone remembered ``trace=true``.  Long-running
coupled pipelines need the opposite: something that is *always* armed,
costs next to nothing while the stream is healthy, and — the moment a
step is LOST, a drainer wedges, or a chaos invariant fails — can answer
"what happened in the last thirty seconds?".

That is a flight recorder:

* a **fixed-capacity ring buffer** (:class:`FlightRecorder`) of compact
  structured events — step begin/commit/LOST/ABORTED, retries, injected
  faults, transport degradations, lease reaps, queue high-water marks,
  sanitizer violations — appended under one tiny lock so concurrent
  producers never tear an event and eviction keeps strict
  ``(timestamp, seq)`` order;
* every event code comes from the central table
  (:mod:`repro.obs.events`); an unregistered code raises, and the
  FlexLint FXL007 rule enforces the same at the call site statically;
* on any fault, :func:`dump_on_fault` writes the last ``window_s``
  seconds of events plus a metrics snapshot (and, when available, the
  monitor's trace records) to a JSON artifact that
  ``repro.tools.trace --flight`` renders with the existing
  bottleneck-hint machinery.

Enablement: on by default (``FLEXIO_FLIGHT=0`` disables).  Dump
artifacts are written only when a directory is configured — via
``FLEXIO_FLIGHT_DIR``, :func:`set_flight_dir`, or an explicit ``path``
— so ordinary test runs never litter the working tree.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.obs.events import EVENT_CODES, UnknownEventError, suggest

#: Version stamp of the dump schema (the ``--flight`` loader checks it).
DUMP_SCHEMA = 1

#: Default ring capacity (events); at ~2 events per step this covers
#: thousands of steps of history.
DEFAULT_CAPACITY = 8192

#: Default look-back window of a fault dump, in seconds.
DEFAULT_WINDOW_S = 30.0

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


@dataclass(frozen=True, slots=True)
class FlightEvent:
    """One recorded event: compact, immutable, safely shareable."""

    ts: float
    seq: int
    code: str
    stream: str
    attrs: tuple  # ((key, value), ...) — hashable, never torn

    def as_dict(self) -> dict:
        d = {"ts": self.ts, "seq": self.seq, "code": self.code,
             "stream": self.stream}
        for k, v in self.attrs:
            d[k] = v
        return d

    @staticmethod
    def from_dict(d: dict) -> "FlightEvent":
        extra = tuple(sorted(
            (k, v) for k, v in d.items()
            if k not in ("ts", "seq", "code", "stream")
        ))
        return FlightEvent(
            ts=float(d["ts"]), seq=int(d["seq"]), code=str(d["code"]),
            stream=str(d.get("stream", "")), attrs=extra,
        )


class FlightRecorder:
    """Lock-light fixed-capacity event ring.

    One small lock serializes the ``(clock read, seq bump, append)``
    triple, which is what guarantees strict ``(ts, seq)`` order under
    concurrent producers — the alternative (lock-free append) can
    interleave a later timestamp before an earlier one.  The critical
    section is a clock read plus a deque append (~1 µs), far below the
    cost of the data movement it observes; the disabled path is a single
    attribute test.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, clock=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.clock = clock or time.monotonic
        self._ring: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.enabled = True

    # -- producers ---------------------------------------------------------
    def record(self, code: str, stream: str = "", **attrs: Any) -> Optional[FlightEvent]:
        """Append one event; returns it (or None when disabled).

        ``code`` must come from the central event table
        (:mod:`repro.obs.events`) — an unknown code raises
        :class:`~repro.obs.events.UnknownEventError` with a suggestion.
        """
        if not self.enabled:
            return None
        if code not in EVENT_CODES:
            raise UnknownEventError(code, suggest(code))
        extra = tuple(sorted(attrs.items()))
        with self._lock:
            self._seq += 1
            ev = FlightEvent(self.clock(), self._seq, code, stream, extra)
            self._ring.append(ev)
        return ev

    # -- consumers ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (including those the ring evicted)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring so far."""
        with self._lock:
            return self._seq - len(self._ring)

    def events(
        self,
        window_s: Optional[float] = None,
        code: Optional[str] = None,
        stream: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[FlightEvent]:
        """Snapshot of the ring, oldest first, optionally filtered.

        ``window_s`` keeps only events within that many seconds of the
        newest event; ``limit`` keeps the newest N after filtering.
        """
        with self._lock:
            out = list(self._ring)
        if window_s is not None and out:
            horizon = out[-1].ts - float(window_s)
            out = [e for e in out if e.ts >= horizon]
        if code is not None:
            out = [e for e in out if e.code == code]
        if stream is not None:
            out = [e for e in out if e.stream == stream]
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0

    # -- dumping -----------------------------------------------------------
    def dump_dict(
        self,
        reason: str = "",
        monitor=None,
        window_s: float = DEFAULT_WINDOW_S,
    ) -> dict:
        """The dump artifact as a JSON-friendly dict.

        Includes the windowed event timeline, a metrics snapshot, and —
        when the monitor kept a trace — its records, so the ``--flight``
        renderer can reuse the fault-summary and bottleneck machinery.
        """
        events = self.events(window_s=window_s)
        doc: dict = {
            "flexio_flight": DUMP_SCHEMA,
            "reason": reason,
            "dumped_at": time.time(),
            "window_s": window_s,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": [e.as_dict() for e in events],
        }
        if monitor is not None:
            doc["metrics"] = monitor.metrics.snapshot()
            if getattr(monitor, "keep_trace", False):
                doc["records"] = [r.as_dict() for r in monitor.trace]
        return doc

    def dump(
        self,
        path: str,
        reason: str = "",
        monitor=None,
        window_s: float = DEFAULT_WINDOW_S,
    ) -> str:
        """Write the dump artifact; returns ``path``."""
        doc = self.dump_dict(reason=reason, monitor=monitor, window_s=window_s)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, default=str)
        return path


def load_dump(path: str) -> dict:
    """Load a dump artifact, checking the schema stamp."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "flexio_flight" not in doc:
        raise ValueError(f"{path}: not a FlexIO flight dump")
    return doc


# ---------------------------------------------------------------------------
# Process-wide recorder (always on unless FLEXIO_FLIGHT says otherwise)
# ---------------------------------------------------------------------------

_recorder: Optional[FlightRecorder] = None
_recorder_lock = threading.Lock()
_flight_dir: Optional[str] = None
_dump_seq = 0
#: Cap on automatic fault dumps per process (a lossy chaos run must not
#: write hundreds of artifacts); explicit dump() calls are uncapped.
MAX_AUTO_DUMPS = 8


def _env_enabled() -> bool:
    return os.environ.get("FLEXIO_FLIGHT", "").strip().lower() not in _FALSY


def get() -> Optional[FlightRecorder]:
    """The process-wide recorder, or None when disabled via env."""
    global _recorder
    if not _env_enabled():
        return None
    if _recorder is None:
        with _recorder_lock:
            if _recorder is None:
                _recorder = FlightRecorder()
    return _recorder


def record(code: str, stream: str = "", **attrs: Any) -> Optional[FlightEvent]:
    """Record one event on the process-wide recorder (no-op when off)."""
    rec = get()
    if rec is None:
        return None
    return rec.record(code, stream=stream, **attrs)


def reset(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Fresh process-wide recorder (chaos harness / test isolation)."""
    global _recorder, _dump_seq
    with _recorder_lock:
        _recorder = FlightRecorder(capacity=capacity)
        _dump_seq = 0
    return _recorder


def set_flight_dir(path: Optional[str]) -> None:
    """Configure (or clear) the automatic-dump directory programmatically."""
    global _flight_dir
    _flight_dir = path


def flight_dir() -> Optional[str]:
    """Where fault dumps go: explicit setting first, then env."""
    if _flight_dir is not None:
        return _flight_dir
    env = os.environ.get("FLEXIO_FLIGHT_DIR", "").strip()
    return env or None


def dump_on_fault(
    reason: str,
    stream: str = "",
    monitor=None,
    window_s: float = DEFAULT_WINDOW_S,
) -> Optional[str]:
    """Fault hook: write a dump artifact if a flight dir is configured.

    Returns the artifact path, or None when dumping is off (no dir), the
    recorder is disabled, or the per-process auto-dump cap was reached.
    Never raises — a failing dump must not compound the original fault.
    """
    global _dump_seq
    rec = get()
    directory = flight_dir()
    if rec is None or directory is None:
        return None
    with _recorder_lock:
        if _dump_seq >= MAX_AUTO_DUMPS:
            return None
        _dump_seq += 1
        n = _dump_seq
    safe_stream = "".join(
        c if (c.isalnum() or c in "._-") else "_" for c in stream
    ) or "stream"
    path = os.path.join(
        directory, f"flight-{safe_stream}-{os.getpid()}-{n:03d}.json"
    )
    try:
        os.makedirs(directory, exist_ok=True)
        rec.record("flight.dump", stream=stream, reason=reason, path=path)
        rec.dump(path, reason=reason, monitor=monitor, window_s=window_s)
    except OSError:
        return None
    return path
