"""Trace exporters.

Two formats come out of the same record stream:

* **JSONL** — one ``TraceRecord.as_dict()`` per line, written by
  :meth:`PerfMonitor.dump`; backward compatible with the original flat
  dump and consumed by :mod:`repro.obs.analysis` and the
  ``repro.tools.trace`` CLI.
* **Chrome/Perfetto ``trace_event`` JSON** — loadable in
  ``ui.perfetto.dev`` (or ``chrome://tracing``).  Span records become
  complete ("X") events; each trace gets its own track (``tid``) so the
  writer→redistribute→transport→plug-in chain of one timestep nests
  visually; flat (span-less) records land on a shared "untraced" track.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

#: Keys of a span record (produced by PerfMonitor's span sink).
_SPAN_KEYS = ("trace_id", "span_id")

#: Fields that are rendered structurally, not as args.
_STRUCTURAL = {"category", "name", "start", "duration", "bytes",
               "trace_id", "span_id", "parent_id"}


def is_span_record(rec: dict) -> bool:
    return all(k in rec for k in _SPAN_KEYS)


def to_perfetto(records: Iterable[dict], process_name: str = "flexio") -> dict:
    """Convert dumped records to a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds (the format's unit); record ``start``
    values are seconds (wall or simulated — either renders fine).

    Edge cases produce well-formed JSON rather than crashes or a trace
    the viewer rejects: an **empty** record stream yields a valid
    document with just the process-name metadata; a span still **open**
    at export time (``duration``/``start`` of ``None``) renders as a
    zero-length event tagged ``args["open"]``; **duplicate span ids**
    (the same record folded in twice via ``merge_from``) are emitted
    once, and distinct spans that collide on an id get a disambiguated
    ``span_id`` so ids stay unique within a trace.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    #: (trace_id, span_id) -> exact-content fingerprint already emitted.
    seen_spans: dict[tuple, tuple] = {}

    def tid_for(trace_id: Optional[str]) -> int:
        key = trace_id or "<untraced>"
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tids[key],
                "args": {"name": f"trace {key}" if trace_id else "untraced"},
            })
        return tids[key]

    events.append({
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    })
    for rec in records:
        span = is_span_record(rec)
        args = {k: v for k, v in rec.items() if k not in _STRUCTURAL}
        args["bytes"] = rec.get("bytes", 0)
        start = rec.get("start")
        duration = rec.get("duration")
        if duration is None:
            args["open"] = True  # still running at export time
        if span:
            args["trace_id"] = rec["trace_id"]
            span_id = rec["span_id"]
            key = (rec["trace_id"], span_id)
            fingerprint = (
                rec.get("name"), rec.get("category"), start, duration,
                rec.get("parent_id"),
            )
            previous = seen_spans.get(key)
            if previous == fingerprint:
                continue  # the same span merged in twice — emit once
            if previous is not None:
                # A genuinely different span landed on a taken id: keep
                # it, but under a unique disambiguated id.
                n = 2
                while (rec["trace_id"], f"{span_id}~{n}") in seen_spans:
                    n += 1
                span_id = f"{span_id}~{n}"
                args["span_id_collision"] = rec["span_id"]
            seen_spans[(rec["trace_id"], span_id)] = fingerprint
            args["span_id"] = span_id
            if rec.get("parent_id"):
                args["parent_id"] = rec["parent_id"]
        events.append({
            "ph": "X",
            "name": rec.get("name", "?"),
            "cat": rec.get("category", "?"),
            "ts": float(start if start is not None else 0.0) * 1e6,
            "dur": max(float(duration if duration is not None else 0.0) * 1e6, 0.0),
            "pid": 1,
            "tid": tid_for(rec.get("trace_id") if span else None),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(records: Iterable[dict], path: str, process_name: str = "flexio") -> int:
    """Write the Perfetto JSON file; returns the number of events."""
    doc = to_perfetto(records, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
