"""Central metric-name table: every counter/gauge/histogram name,
declared once.

:mod:`repro.core.hints` fixed hint-key drift and
:mod:`repro.obs.events` fixed event-code drift; this module is the same
cure for metric names.  Each metric is declared exactly once with its
kind and semantics, producers import the ``M_*`` constant, and the
FlexLint FXL013 rule fails any ``counter()``/``gauge()``/
``histogram()`` call whose name is an unregistered literal or a
computed f-string.

Two vocabularies share the table:

* **static names** (``METRICS``) — fixed metric series; and
* **families** (``FAMILIES``) — registered dotted prefixes under which
  per-instance series hang (``faults.injected.<kind>``,
  ``shm.pool.<suffix>``, ``rdma.regcache.<sender>.<suffix>``, ...).
  Producers build family members with :func:`metric_name`, which
  validates the prefix at runtime, so dynamic names stay inside the
  declared namespace instead of re-growing ad-hoc f-strings.

``METRIC_NAMES`` is the static-name set FXL013 checks literals against;
family members are accepted when they extend a registered family root.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "MetricSpec",
    "UnknownMetricError",
    "METRICS",
    "FAMILIES",
    "METRIC_NAMES",
    "FAMILY_ROOTS",
    "metric_name",
    "register_family",
    "validate_metric",
    "suggest",
]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric series (or family of series)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "family"
    description: str


class UnknownMetricError(ValueError):
    """A metric name that the central table does not declare."""

    def __init__(self, name: str, suggestion: Optional[str] = None) -> None:
        msg = f"unknown metric name {name!r}"
        if suggestion:
            msg += f"; did you mean {suggestion!r}?"
        super().__init__(msg)
        self.name = name
        self.suggestion = suggestion


# ---------------------------------------------------------------------------
# Static metric names — the only place these strings are spelled.
# ---------------------------------------------------------------------------

# Data plane (core/stream.py, tools/chaos.py)
M_BACKPRESSURE_WAITS = "dataplane.backpressure_waits"
M_DRAIN_BYTES_COMMITTED = "dataplane.drain.bytes_committed"
M_DRAIN_ERRORS = "dataplane.drain.errors"
M_DRAIN_FAULTS = "dataplane.drain.faults"
M_DRAIN_QUEUE_DEPTH = "dataplane.drain.queue_depth"
M_DRAIN_RECOVERED = "dataplane.drain.recovered"
M_DRAIN_RETRIES = "dataplane.drain.retries"
M_DRAIN_STEPS_COMMITTED = "dataplane.drain.steps_committed"
M_DRAIN_STEPS_LOST = "dataplane.drain.steps_lost"
M_DRAIN_WEDGED = "dataplane.drain.wedged"
M_STREAM_FAILURES = "dataplane.stream.failures"
M_TRANSPORT_DEGRADATIONS = "dataplane.transport.degradations"
M_TX_ABORTED = "dataplane.tx.aborted"
M_TX_COMMITTED = "dataplane.tx.committed"
M_PLAN_CACHE_HITS = "dataplane.plan_cache.hits"
M_PLAN_CACHE_MISSES = "dataplane.plan_cache.misses"
M_HANDSHAKE_CONTROL_BYTES = "handshake.control_bytes"
M_HANDSHAKE_MESSAGES = "handshake.messages"
M_REDIST_BYTES_MOVED = "redistribution.bytes_moved"
M_REDIST_STRIDE_MESSAGES = "redistribution.stride_messages"

# DC plug-in plane (core/plugins.py, core/stream.py, net/server.py)
M_PLUGIN_BLOCKS_SKIPPED = "plugin.blocks_skipped"
M_PLUGIN_FUSED_READS = "plugin.fused_reads"
M_PLUGIN_INTERPRETED_READS = "plugin.interpreted_reads"

# Fault injection (transport/faults.py, net/server.py)
M_FAULTS_INJECTED_TOTAL = "faults.injected.total"

# Buffer plane (transport/buffers.py)
M_TRANSPORT_COPIES = "transport.copies"

# Transport channel counters (transport/{shm,rdma,tcp}.py)
M_SHM_BYTES_SENT = "shm.bytes_sent"
M_SHM_MESSAGES_SENT = "shm.messages_sent"
M_SHM_CH_INLINE_SENDS = "shm.channel.inline_sends"
M_SHM_CH_LARGE_SENDS = "shm.channel.large_sends"
M_RDMA_BYTES_SENT = "rdma.bytes_sent"
M_RDMA_MESSAGES_SENT = "rdma.messages_sent"
M_RDMA_CH_SMALL_SENDS = "rdma.channel.small_sends"
M_RDMA_CH_LARGE_SENDS = "rdma.channel.large_sends"
M_TCP_BYTES_SENT = "tcp.bytes_sent"
M_TCP_MESSAGES_SENT = "tcp.messages_sent"
M_TCP_CH_BYTES_SENT = "tcp.channel.bytes_sent"
M_TCP_CH_MESSAGES_SENT = "tcp.channel.messages_sent"

# Multi-tenant directory (core/directory.py)
M_TENANT_ADMISSION_REJECTED = "tenant.admission.rejected"
M_TENANT_BYTES = "tenant.bytes"
M_TENANT_STREAMS = "tenant.streams"

# Network plane, daemon side (net/server.py)
M_NET_STEPS_PUBLISHED = "net.steps_published"
M_NET_STEPS_FETCHED = "net.steps_fetched"
M_NET_BYTES_PUBLISHED = "net.bytes_published"
M_NET_BYTES_FETCHED = "net.bytes_fetched"
M_NET_SESSIONS = "net.sessions"
M_NET_LEASE_EVICTIONS = "net.lease_evictions"
M_NET_RETAINED_STEPS = "net.retained_steps"
M_NET_DRAINS = "net.drains"
M_NET_CHECKPOINTS = "net.checkpoints"
M_NET_RESTORES = "net.restores"
M_NET_RESUMES = "net.resumes"
M_NET_DUP_PUBLISHES = "net.dup_publishes"

# Network plane, client side (net/client.py, tools/netchaos.py)
M_NET_RECONNECTS = "net.reconnects"
M_NET_SESSIONS_LOST = "net.sessions_lost"
M_NET_RESUME = "net.resume"
M_NET_HEARTBEATS = "net.heartbeats"

# Health SLO verdicts (obs/health.py)
M_HEALTH_VERDICT = "health.verdict"
M_HEALTH_STEPS_PER_S = "health.steps_per_s"
M_HEALTH_LOSS_RATE = "health.loss_rate"
M_HEALTH_P99 = "health.p99_latency"

_METRIC_SPECS = (
    MetricSpec(M_BACKPRESSURE_WAITS, "counter", "writer blocked on a full drain queue"),
    MetricSpec(M_DRAIN_BYTES_COMMITTED, "counter", "payload bytes committed by the drainer"),
    MetricSpec(M_DRAIN_ERRORS, "counter", "steps whose retries were exhausted"),
    MetricSpec(M_DRAIN_FAULTS, "counter", "transport faults seen by the drainer"),
    MetricSpec(M_DRAIN_QUEUE_DEPTH, "gauge", "current drain queue depth"),
    MetricSpec(M_DRAIN_RECOVERED, "counter", "retried sends that eventually succeeded"),
    MetricSpec(M_DRAIN_RETRIES, "counter", "drain attempts that were retried"),
    MetricSpec(M_DRAIN_STEPS_COMMITTED, "counter", "steps committed by the drainer"),
    MetricSpec(M_DRAIN_STEPS_LOST, "counter", "steps marked LOST after retry exhaustion"),
    MetricSpec(M_DRAIN_WEDGED, "counter", "drainer threads that missed their join"),
    MetricSpec(M_STREAM_FAILURES, "counter", "streams that ended abnormally"),
    MetricSpec(M_TRANSPORT_DEGRADATIONS, "counter", "falls down the transport ladder"),
    MetricSpec(M_TX_ABORTED, "counter", "2PC transactions aborted"),
    MetricSpec(M_TX_COMMITTED, "counter", "2PC transactions committed"),
    MetricSpec(M_PLAN_CACHE_HITS, "counter", "compiled-plan cache hits"),
    MetricSpec(M_PLAN_CACHE_MISSES, "counter", "compiled-plan cache misses"),
    MetricSpec(M_HANDSHAKE_CONTROL_BYTES, "counter", "handshake-protocol control bytes"),
    MetricSpec(M_HANDSHAKE_MESSAGES, "counter", "handshake-protocol messages"),
    MetricSpec(M_REDIST_BYTES_MOVED, "counter", "bytes moved by MxN redistribution"),
    MetricSpec(M_REDIST_STRIDE_MESSAGES, "counter", "redistribution stride messages"),
    MetricSpec(M_PLUGIN_BLOCKS_SKIPPED, "counter",
               "blocks not sent because a reader predicate provably drops them"),
    MetricSpec(M_PLUGIN_FUSED_READS, "counter",
               "reads served by the fused (compiled-chain) path"),
    MetricSpec(M_PLUGIN_INTERPRETED_READS, "counter",
               "plug-in reads that fell back to the interpreted pass"),
    MetricSpec(M_FAULTS_INJECTED_TOTAL, "counter", "total injected transport faults"),
    MetricSpec(M_TRANSPORT_COPIES, "histogram", "copies paid per delivered message"),
    MetricSpec(M_SHM_BYTES_SENT, "counter", "bytes sent over the SHM channel"),
    MetricSpec(M_SHM_MESSAGES_SENT, "counter", "messages sent over the SHM channel"),
    MetricSpec(M_SHM_CH_INLINE_SENDS, "gauge", "SHM sends that fit inline"),
    MetricSpec(M_SHM_CH_LARGE_SENDS, "gauge", "SHM sends routed via the pool"),
    MetricSpec(M_RDMA_BYTES_SENT, "counter", "bytes sent over the RDMA channel"),
    MetricSpec(M_RDMA_MESSAGES_SENT, "counter", "messages sent over the RDMA channel"),
    MetricSpec(M_RDMA_CH_SMALL_SENDS, "gauge", "RDMA sends below the large threshold"),
    MetricSpec(M_RDMA_CH_LARGE_SENDS, "gauge", "RDMA large (registered) sends"),
    MetricSpec(M_TCP_BYTES_SENT, "counter", "bytes sent over the TCP channel"),
    MetricSpec(M_TCP_MESSAGES_SENT, "counter", "messages sent over the TCP channel"),
    MetricSpec(M_TCP_CH_BYTES_SENT, "gauge", "per-channel TCP bytes sent"),
    MetricSpec(M_TCP_CH_MESSAGES_SENT, "gauge", "per-channel TCP messages sent"),
    MetricSpec(M_TENANT_ADMISSION_REJECTED, "counter", "admission-control rejections"),
    MetricSpec(M_TENANT_BYTES, "counter", "per-tenant bytes accepted (labeled)"),
    MetricSpec(M_TENANT_STREAMS, "gauge", "per-tenant live streams (labeled)"),
    MetricSpec(M_NET_STEPS_PUBLISHED, "counter", "steps accepted by the daemon broker"),
    MetricSpec(M_NET_STEPS_FETCHED, "counter", "steps served to remote readers"),
    MetricSpec(M_NET_BYTES_PUBLISHED, "counter", "payload bytes accepted by the broker"),
    MetricSpec(M_NET_BYTES_FETCHED, "counter", "payload bytes served to readers"),
    MetricSpec(M_NET_SESSIONS, "counter", "authenticated daemon sessions"),
    MetricSpec(M_NET_LEASE_EVICTIONS, "counter", "expired writer leases reaped"),
    MetricSpec(M_NET_RETAINED_STEPS, "gauge", "steps retained by the broker"),
    MetricSpec(M_NET_DRAINS, "counter", "graceful daemon drains"),
    MetricSpec(M_NET_CHECKPOINTS, "counter", "daemon checkpoints written"),
    MetricSpec(M_NET_RESTORES, "counter", "daemon restores from checkpoint"),
    MetricSpec(M_NET_RESUMES, "counter", "sessions re-bound via resume token"),
    MetricSpec(M_NET_DUP_PUBLISHES, "counter", "duplicate republishes suppressed"),
    MetricSpec(M_NET_RECONNECTS, "counter", "client reconnect attempts that succeeded"),
    MetricSpec(M_NET_SESSIONS_LOST, "counter", "client sessions lost after retries"),
    MetricSpec(M_NET_RESUME, "counter", "client sessions resumed by token"),
    MetricSpec(M_NET_HEARTBEATS, "counter", "client heartbeats sent"),
    MetricSpec(M_HEALTH_VERDICT, "gauge", "stream health verdict (labeled)"),
    MetricSpec(M_HEALTH_STEPS_PER_S, "gauge", "stream step throughput (labeled)"),
    MetricSpec(M_HEALTH_LOSS_RATE, "gauge", "stream loss rate (labeled)"),
    MetricSpec(M_HEALTH_P99, "gauge", "stream p99 write-visible latency (labeled)"),
)

#: Static metric registry, keyed by name.
METRICS: dict[str, MetricSpec] = {s.name: s for s in _METRIC_SPECS}


# ---------------------------------------------------------------------------
# Metric families — registered dotted prefixes for per-instance series.
# ---------------------------------------------------------------------------

F_FAULTS_INJECTED = "faults.injected"
F_PLUGIN = "plugin"
F_TRANSPORT_PATH = "transport.path"
F_LATENCY = "latency"
F_SHM_QUEUE = "shm.queue"
F_SHM_POOL = "shm.pool"
F_RDMA_REGCACHE = "rdma.regcache"

_FAMILY_SPECS = (
    MetricSpec(F_FAULTS_INJECTED, "family", "injected faults by FaultKind"),
    MetricSpec(F_PLUGIN, "family",
               "per-plug-in cost series (invocations/bytes/exec_ns by name)"),
    MetricSpec(F_TRANSPORT_PATH, "family", "deliveries by transport path"),
    MetricSpec(F_LATENCY, "family", "latency histograms by span category"),
    MetricSpec(F_SHM_QUEUE, "family", "SPSC queue stats (per queue instance)"),
    MetricSpec(F_SHM_POOL, "family", "SHM buffer-pool stats (per pool instance)"),
    MetricSpec(F_RDMA_REGCACHE, "family", "registration-cache stats (per NIC side)"),
)

#: Family registry, keyed by prefix; mutable via :func:`register_family`.
FAMILIES: dict[str, MetricSpec] = {s.name: s for s in _FAMILY_SPECS}

#: The static-name vocabulary FXL013 validates literals against.
METRIC_NAMES: frozenset[str] = frozenset(METRICS)

#: The declared family roots (a literal extending one is also valid).
FAMILY_ROOTS: tuple[str, ...] = tuple(sorted(FAMILIES))


def register_family(prefix: str, description: str = "ad-hoc family") -> str:
    """Register an additional family prefix at runtime (tests and
    embedding applications that hang private series off their own
    namespace).  Returns the prefix."""
    if not prefix or prefix.endswith("."):
        raise ValueError(f"invalid metric family prefix {prefix!r}")
    FAMILIES.setdefault(prefix, MetricSpec(prefix, "family", description))
    return prefix


def _family_root(name: str) -> Optional[str]:
    for root in FAMILIES:
        if name == root or name.startswith(root + "."):
            return root
    return None


def suggest(name: str) -> Optional[str]:
    """The closest registered name/family to a misspelled one, if any."""
    vocab = sorted(METRIC_NAMES | set(FAMILIES))
    matches = difflib.get_close_matches(name, vocab, n=1)
    return matches[0] if matches else None


def validate_metric(name: str) -> str:
    """Return ``name`` if it is a registered static name or extends a
    registered family; raise :class:`UnknownMetricError` otherwise."""
    if name in METRIC_NAMES or _family_root(name) is not None:
        return name
    raise UnknownMetricError(name, suggest(name))


def metric_name(family: str, *parts: object) -> str:
    """Build ``family.part1.part2...`` after validating that ``family``
    is (or extends) a registered family root.  This is the sanctioned
    spelling for dynamic metric names — FXL013 rejects raw f-strings.
    """
    if _family_root(family) is None:
        raise UnknownMetricError(family, suggest(family))
    if not parts:
        return family
    return ".".join([family, *[str(p) for p in parts]])
