"""Span-based tracing for the FlexIO stack.

The paper's Section II.G prescribes measurement points at every level of
the stack.  Flat per-category records answer "where did time go in
aggregate"; *spans* answer the causal question — which handshake, which
transport copy, which DC plug-in execution belonged to which timestep.
A span carries a ``trace_id`` shared by everything descending from one
root operation (e.g. one published timestep), a ``span_id``, and a
``parent_id`` linking it into the tree.

Design constraints honoured here:

* **Cheap when off.**  With tracing disabled every ``span()`` call
  returns one shared no-op object; no allocation, no clock read, no
  record appended.
* **Deterministic sampling.**  ``sample_rate`` keeps every *k*-th trace
  by a counter rule rather than a random draw, so runs are repeatable.
  Descendants of a sampled-out root are suppressed (no orphan traces).
* **No dependency on the monitor.**  The tracer hands finished spans to
  an injected ``sink`` callable; :class:`repro.core.monitoring.PerfMonitor`
  installs itself as that sink, turning spans into ordinary trace
  records (with ``trace_id``/``span_id``/``parent_id`` extras) so the
  existing dump/load/aggregate machinery applies unchanged.
"""

from __future__ import annotations

import math
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a live (or finished) span."""

    trace_id: str
    span_id: str


#: Sentinel for ``parent=``: inherit the tracer's current span (default).
CURRENT = object()

#: Sentinel stored in the current-span slot while inside a sampled-out
#: root, so descendants know to suppress themselves.
_UNSAMPLED = object()


class Span:
    """One timed operation in a trace tree.

    Usable as a context manager (sets itself as the tracer's current
    span) or manually via :meth:`finish` (for event-driven code where
    begin and end happen in different call stacks).
    """

    __slots__ = (
        "category", "name", "trace_id", "span_id", "parent_id",
        "start", "end", "attrs", "nbytes", "_tracer", "_token", "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        category: str,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        nbytes: int = 0,
        attrs: Optional[dict] = None,
    ) -> None:
        self.category = category
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs or {}
        self.nbytes = nbytes
        self._tracer = tracer
        self._token = None
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def recording(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else self._tracer.clock()
        return end - self.start

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def add_bytes(self, n: int) -> None:
        self.nbytes += n

    def finish(self, end: Optional[float] = None) -> None:
        """Close the span and deliver it to the tracer's sink (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self.end = end if end is not None else self._tracer.clock()
        self._tracer._deliver(self)

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = self._tracer._current.set(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.category}/{self.name} trace={self.trace_id} "
            f"span={self.span_id} parent={self.parent_id}>"
        )


class _NoopSpan:
    """Shared do-nothing span: returned whenever tracing is off."""

    __slots__ = ()

    context = None
    recording = False
    trace_id = None
    span_id = None
    parent_id = None
    duration = 0.0

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def add_bytes(self, n: int) -> None:
        pass

    def finish(self, end: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SuppressedSpan(_NoopSpan):
    """Root span that lost the sampling draw: records nothing, but marks
    the current-span slot so descendants suppress themselves too."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> "_SuppressedSpan":
        self._token = self._tracer._current.set(_UNSAMPLED)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None


class Tracer:
    """Creates spans, tracks the current one, applies sampling.

    ``sink(span)`` is called once per finished sampled span.  ``clock``
    supplies timestamps — wall time by default; DES components pass
    ``lambda: env.now`` so spans carry simulated time.
    """

    def __init__(
        self,
        sink: Callable[[Span], None],
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        sample_rate: float = 1.0,
        id_prefix: str = "",
    ) -> None:
        self._sink = sink
        self.clock = clock or time.perf_counter
        self._enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self._prefix = id_prefix
        self._trace_seq = 0
        self._span_seq = 0
        self._current: ContextVar = ContextVar("flexio_current_span", default=None)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, sample_rate: float = 1.0) -> None:
        if not (0.0 < sample_rate <= 1.0):
            raise ValueError("sample_rate must be in (0, 1]")
        self._enabled = True
        self.sample_rate = float(sample_rate)

    def disable(self) -> None:
        self._enabled = False

    def current(self) -> Optional[SpanContext]:
        cur = self._current.get()
        return cur if isinstance(cur, SpanContext) else None

    # ------------------------------------------------------------------
    def _sample_root(self) -> bool:
        """Deterministic proportional sampling: keep trace *n* iff the
        cumulative kept-count ``floor(n * rate)`` advances at *n*."""
        n = self._trace_seq
        self._trace_seq += 1
        return math.floor((n + 1) * self.sample_rate) > math.floor(n * self.sample_rate)

    def _new_span_id(self) -> str:
        self._span_seq += 1
        return f"{self._prefix}s{self._span_seq:06x}"

    def _deliver(self, span: Span) -> None:
        self._sink(span)

    def _make(self, category, name, parent, nbytes, attrs) -> "Span | _NoopSpan":
        """Shared span-construction logic for :meth:`span` and :meth:`begin`."""
        if not self._enabled:
            return NOOP_SPAN
        if parent is CURRENT:
            parent = self._current.get()
        if parent is _UNSAMPLED:
            return NOOP_SPAN
        if parent is None:
            # Root: this call decides the whole trace's sampling fate.
            if not self._sample_root():
                return _SuppressedSpan(self)
            trace_id = f"{self._prefix}t{self._trace_seq:06x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            self, category, name, trace_id, self._new_span_id(), parent_id,
            start=self.clock(), nbytes=nbytes, attrs=attrs,
        )

    def span(
        self,
        category: str,
        name: str,
        parent: Any = CURRENT,
        nbytes: int = 0,
        **attrs: Any,
    ) -> "Span | _NoopSpan":
        """Create a span for use as a context manager.

        ``parent`` is the current span by default; pass a
        :class:`SpanContext` to join a remote trace (e.g. the reader
        joining the writer's timestep trace), or ``None`` to suppress
        (used when the upstream trace was sampled out).
        """
        if parent is None and self._enabled:
            return _SuppressedSpan(self)
        return self._make(category, name, parent, nbytes, attrs)

    def begin(
        self,
        category: str,
        name: str,
        parent: Any = CURRENT,
        nbytes: int = 0,
        **attrs: Any,
    ) -> "Span | _NoopSpan":
        """Create a manual span: caller must invoke ``.finish()``.

        Unlike :meth:`span` used as a context manager, a begun span never
        occupies the current-span slot — right for event-driven code
        whose begin and end happen in different call stacks.
        """
        if parent is None:
            return NOOP_SPAN
        return self._make(category, name, parent, nbytes, attrs)
