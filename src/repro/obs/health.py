"""Per-stream health model: SLO evaluation over snapshot telemetry.

The flight recorder answers "what happened"; this module answers "is the
stream OK *right now*".  A :class:`StreamHealthModel` samples one
stream's metrics registry through a :class:`~repro.obs.snapshot.SnapshotCollector`
and grades the window against an :class:`SLOPolicy`:

* **p99 step latency** — the ``latency.writer_visible`` histogram must
  stay under ``max_p99_latency``;
* **loss rate** — LOST/ABORTED steps as a fraction of steps finished in
  the window must stay at or under ``max_loss_rate``;
* **stall detection** — steps queued behind the drainer with no commit
  progress for ``stall_window`` seconds means the pipeline is wedged.

Verdicts are published back into the same registry as **labeled
gauges** (``health.verdict{stream="..."}``, numeric per
:data:`VERDICT_CODES`) so they ride the existing snapshot/merge/export
machinery, recorded as flight events on every change, and consumed by
:meth:`repro.core.adaptive.AdaptiveGetScheduler.observe_health` as a
rate-mismatch signal: an unhealthy or stalled reader-side schedule
backs off its Get concurrency before it makes the problem worse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Optional

from repro.obs import recorder as flight
from repro.obs.events import EV_HEALTH
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import DeltaSnapshot, SnapshotCollector

#: Metric series the model reads (written by the stream data plane).
STEPS_COMMITTED = "dataplane.drain.steps_committed"
BYTES_COMMITTED = "dataplane.drain.bytes_committed"
STEPS_LOST = "dataplane.drain.steps_lost"
RETRIES = "dataplane.drain.retries"
QUEUE_DEPTH = "dataplane.drain.queue_depth"
DEGRADATIONS = "dataplane.transport.degradations"
WRITER_LATENCY = "latency.writer_visible"

#: Gauge names the model publishes (always with a ``stream`` label).
VERDICT_GAUGE = "health.verdict"
STEPS_PER_S_GAUGE = "health.steps_per_s"
LOSS_RATE_GAUGE = "health.loss_rate"
P99_GAUGE = "health.p99_latency"


class Verdict(Enum):
    """Health grade of one stream over the last window."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"      # working, but paying retries/latency/fallback
    UNHEALTHY = "unhealthy"    # losing data beyond the SLO
    STALLED = "stalled"        # queued work, no commit progress


#: Numeric encoding used when a verdict is published as a gauge.
VERDICT_CODES: dict[Verdict, int] = {
    Verdict.HEALTHY: 0,
    Verdict.DEGRADED: 1,
    Verdict.UNHEALTHY: 2,
    Verdict.STALLED: 3,
}


@dataclass(frozen=True)
class SLOPolicy:
    """Service-level objectives one stream is graded against."""

    #: p99 writer-visible step latency ceiling (seconds).
    max_p99_latency: float = 1.0
    #: Allowed fraction of steps LOST/ABORTED per window (0 = none).
    max_loss_rate: float = 0.0
    #: Seconds of queued-but-uncommitted inactivity before STALLED.
    stall_window: float = 5.0

    def __post_init__(self) -> None:
        if self.max_p99_latency <= 0:
            raise ValueError("max_p99_latency must be positive")
        if not (0.0 <= self.max_loss_rate <= 1.0):
            raise ValueError("max_loss_rate in [0, 1]")
        if self.stall_window <= 0:
            raise ValueError("stall_window must be positive")


@dataclass(frozen=True)
class HealthReport:
    """One evaluation of one stream."""

    stream: str
    verdict: Verdict
    at: float
    steps_per_s: float
    bytes_per_s: float
    p99_latency: float
    loss_rate: float
    retries: float            # retry attempts this window
    queue_depth: float
    reasons: tuple[str, ...]  # why the verdict is not HEALTHY

    @property
    def code(self) -> int:
        return VERDICT_CODES[self.verdict]

    def as_dict(self) -> dict:
        return {
            "stream": self.stream,
            "verdict": self.verdict.value,
            "at": self.at,
            "steps_per_s": self.steps_per_s,
            "bytes_per_s": self.bytes_per_s,
            "p99_latency": self.p99_latency,
            "loss_rate": self.loss_rate,
            "retries": self.retries,
            "queue_depth": self.queue_depth,
            "reasons": list(self.reasons),
        }


class StreamHealthModel:
    """Grades one stream; publishes its verdict as labeled gauges."""

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry,
        policy: Optional[SLOPolicy] = None,
        clock=None,
        extra_labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = name
        self.registry = registry
        self.policy = policy or SLOPolicy()
        self.clock = clock or time.monotonic
        #: Extra labels on every published gauge (tenant, shard, ...).
        self.extra_labels = dict(extra_labels) if extra_labels else {}
        self.collector = SnapshotCollector(registry, clock=self.clock)
        self.last_report: Optional[HealthReport] = None
        #: Clock time of the last observed commit progress.
        self._last_progress = self.clock()

    def evaluate(self, snap: Optional[DeltaSnapshot] = None) -> HealthReport:
        """Grade the window since the previous evaluation."""
        policy = self.policy
        if snap is None:
            snap = self.collector.collect()
        committed = snap.delta(STEPS_COMMITTED)
        lost = snap.delta(STEPS_LOST)
        finished = committed + lost
        loss_rate = lost / finished if finished > 0 else 0.0
        p99 = snap.percentile(WRITER_LATENCY, "p99")
        queue_depth = snap.gauge_value(QUEUE_DEPTH)
        if committed > 0:
            self._last_progress = snap.at
        stalled_for = snap.at - self._last_progress

        reasons: list[str] = []
        if queue_depth > 0 and committed == 0 and stalled_for >= policy.stall_window:
            verdict = Verdict.STALLED
            reasons.append(
                f"{queue_depth:g} step(s) queued, no commit for {stalled_for:.1f}s "
                f"(stall_window {policy.stall_window:g}s)"
            )
        elif loss_rate > policy.max_loss_rate:
            verdict = Verdict.UNHEALTHY
            reasons.append(
                f"loss rate {loss_rate:.3f} > SLO {policy.max_loss_rate:g}"
            )
        else:
            verdict = Verdict.HEALTHY
            if p99 > policy.max_p99_latency:
                verdict = Verdict.DEGRADED
                reasons.append(
                    f"p99 latency {p99:.4f}s > SLO {policy.max_p99_latency:g}s"
                )
            if snap.delta(RETRIES) > 0:
                verdict = Verdict.DEGRADED
                reasons.append(f"{snap.delta(RETRIES):g} retry attempt(s)")
            if snap.delta(DEGRADATIONS) > 0:
                verdict = Verdict.DEGRADED
                reasons.append("transport degraded down the ladder")

        report = HealthReport(
            stream=self.name,
            verdict=verdict,
            at=snap.at,
            steps_per_s=snap.rate(STEPS_COMMITTED),
            bytes_per_s=snap.rate(BYTES_COMMITTED),
            p99_latency=p99,
            loss_rate=loss_rate,
            retries=snap.delta(RETRIES),
            queue_depth=queue_depth,
            reasons=tuple(reasons),
        )
        self._publish(report)
        return report

    def _publish(self, report: HealthReport) -> None:
        labels = {"stream": self.name, **self.extra_labels}
        self.registry.gauge(VERDICT_GAUGE, labels).set(report.code)
        self.registry.gauge(STEPS_PER_S_GAUGE, labels).set(report.steps_per_s)
        self.registry.gauge(LOSS_RATE_GAUGE, labels).set(report.loss_rate)
        self.registry.gauge(P99_GAUGE, labels).set(report.p99_latency)
        previous = self.last_report
        if previous is None or previous.verdict is not report.verdict:
            flight.record(
                EV_HEALTH, stream=self.name, verdict=report.verdict.value,
                reasons="; ".join(report.reasons),
            )
        self.last_report = report


class HealthBoard:
    """Health models for every live stream (the monitor CLI's backend).

    ``sample`` takes a mapping of stream name → object exposing a
    ``monitor`` attribute (duck-typed on
    :class:`~repro.core.stream.StreamState`, so this module stays free of
    core imports) and returns one report per stream, creating models on
    first sight.
    """

    def __init__(self, policy: Optional[SLOPolicy] = None, clock=None) -> None:
        self.policy = policy or SLOPolicy()
        self.clock = clock
        self._models: dict[str, StreamHealthModel] = {}

    def model(
        self,
        name: str,
        registry: MetricsRegistry,
        extra_labels: Optional[Mapping[str, object]] = None,
    ) -> StreamHealthModel:
        model = self._models.get(name)
        if model is None or model.registry is not registry:
            model = StreamHealthModel(
                name, registry, policy=self.policy, clock=self.clock,
                extra_labels=extra_labels,
            )
            self._models[name] = model
        return model

    def sample(self, states: Mapping[str, object]) -> dict[str, HealthReport]:
        reports: dict[str, HealthReport] = {}
        for name, state in sorted(states.items()):
            registry = state.monitor.metrics
            tenant = getattr(state, "tenant", None)
            extra = {"tenant": tenant} if tenant else None
            reports[name] = self.model(name, registry, extra).evaluate()
        return reports
