"""Unified observability layer for the FlexIO stack (Section II.G, grown up).

The post-hoc pieces, all feeding one record stream:

* :mod:`repro.obs.tracing` — span-based tracing with trace/span/parent
  IDs propagated writer → handshake → redistribution → transport → DC
  plug-in, so one timestep can be followed end to end;
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed
  histograms with percentile queries (per-stream/per-tenant labels);
* :mod:`repro.obs.export` — JSONL (via ``PerfMonitor.dump``) and
  Chrome/Perfetto ``trace_event`` JSON, loadable in ``ui.perfetto.dev``;
* :mod:`repro.obs.analysis` — per-stage breakdowns, critical-path
  extraction, and bottleneck hints for the advisor and the adaptive
  controllers.

And the always-on telemetry plane (DESIGN.md §12):

* :mod:`repro.obs.events` — the central event-code table (enforced at
  run time by the recorder and statically by FlexLint FXL007);
* :mod:`repro.obs.recorder` — the flight recorder: a fixed-capacity
  ring of compact events, dumped to a JSON artifact on any fault;
* :mod:`repro.obs.snapshot` / :mod:`repro.obs.health` — periodic delta
  snapshots of the metrics registry feeding per-stream SLO verdicts;
* :mod:`repro.obs.live` — loopback HTTP export: Prometheus text
  exposition, flight-event JSONL tail, health/stream JSON.

Tracing is off by default (the hot path pays one boolean test).  Enable
it per monitor (``monitor.enable_tracing()``), per stream via the XML
hint ``trace=true``, globally via :func:`set_default_tracing`, or with
the ``FLEXIO_TRACE=1`` environment variable.  The flight recorder is
the opposite: on by default, disabled with ``FLEXIO_FLIGHT=0``.
"""

from __future__ import annotations

import os

from repro.obs.tracing import (
    CURRENT,
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import is_span_record, to_perfetto, write_perfetto
from repro.obs.analysis import (
    BottleneckHint,
    CriticalHop,
    FaultSummary,
    SpanNode,
    StageStat,
    build_traces,
    critical_path,
    fault_summary,
    find_bottleneck,
    longest_trace,
    stage_breakdown,
)
from repro.obs.events import EVENT_CODES, EventSpec, UnknownEventError
from repro.obs.recorder import FlightEvent, FlightRecorder, load_dump
from repro.obs.snapshot import DeltaSnapshot, SnapshotCollector
from repro.obs.health import (
    HealthBoard,
    HealthReport,
    SLOPolicy,
    StreamHealthModel,
    Verdict,
)
from repro.obs.live import (
    LiveTelemetryServer,
    render_prometheus,
    validate_exposition,
)

_DEFAULT = {"enabled": False, "sample_rate": 1.0}

_TRUTHY = ("1", "true", "yes", "on")


def set_default_tracing(enabled: bool, sample_rate: float = 1.0) -> None:
    """Process-wide default applied to monitors created afterwards."""
    _DEFAULT["enabled"] = bool(enabled)
    _DEFAULT["sample_rate"] = float(sample_rate)


def default_tracing() -> tuple[bool, float]:
    """(enabled, sample_rate) for a new monitor; honours ``FLEXIO_TRACE``."""
    env = os.environ.get("FLEXIO_TRACE", "").strip().lower()
    if env in _TRUTHY:
        return True, float(_DEFAULT["sample_rate"])
    return bool(_DEFAULT["enabled"]), float(_DEFAULT["sample_rate"])


__all__ = [
    "BottleneckHint",
    "Counter",
    "CriticalHop",
    "CURRENT",
    "DeltaSnapshot",
    "EVENT_CODES",
    "EventSpec",
    "FaultSummary",
    "fault_summary",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "HealthBoard",
    "HealthReport",
    "Histogram",
    "LiveTelemetryServer",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SLOPolicy",
    "SnapshotCollector",
    "Span",
    "SpanContext",
    "SpanNode",
    "StageStat",
    "StreamHealthModel",
    "Tracer",
    "UnknownEventError",
    "Verdict",
    "build_traces",
    "critical_path",
    "default_tracing",
    "find_bottleneck",
    "is_span_record",
    "load_dump",
    "longest_trace",
    "render_prometheus",
    "set_default_tracing",
    "stage_breakdown",
    "to_perfetto",
    "validate_exposition",
    "write_perfetto",
]
