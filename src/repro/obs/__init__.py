"""Unified observability layer for the FlexIO stack (Section II.G, grown up).

Four pieces, all feeding one record stream:

* :mod:`repro.obs.tracing` — span-based tracing with trace/span/parent
  IDs propagated writer → handshake → redistribution → transport → DC
  plug-in, so one timestep can be followed end to end;
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed
  histograms with percentile queries;
* :mod:`repro.obs.export` — JSONL (via ``PerfMonitor.dump``) and
  Chrome/Perfetto ``trace_event`` JSON, loadable in ``ui.perfetto.dev``;
* :mod:`repro.obs.analysis` — per-stage breakdowns, critical-path
  extraction, and bottleneck hints for the advisor and the adaptive
  controllers.

Tracing is off by default (the hot path pays one boolean test).  Enable
it per monitor (``monitor.enable_tracing()``), per stream via the XML
hint ``trace=true``, globally via :func:`set_default_tracing`, or with
the ``FLEXIO_TRACE=1`` environment variable.
"""

from __future__ import annotations

import os

from repro.obs.tracing import (
    CURRENT,
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import is_span_record, to_perfetto, write_perfetto
from repro.obs.analysis import (
    BottleneckHint,
    CriticalHop,
    FaultSummary,
    SpanNode,
    StageStat,
    build_traces,
    critical_path,
    fault_summary,
    find_bottleneck,
    longest_trace,
    stage_breakdown,
)

_DEFAULT = {"enabled": False, "sample_rate": 1.0}

_TRUTHY = ("1", "true", "yes", "on")


def set_default_tracing(enabled: bool, sample_rate: float = 1.0) -> None:
    """Process-wide default applied to monitors created afterwards."""
    _DEFAULT["enabled"] = bool(enabled)
    _DEFAULT["sample_rate"] = float(sample_rate)


def default_tracing() -> tuple[bool, float]:
    """(enabled, sample_rate) for a new monitor; honours ``FLEXIO_TRACE``."""
    env = os.environ.get("FLEXIO_TRACE", "").strip().lower()
    if env in _TRUTHY:
        return True, float(_DEFAULT["sample_rate"])
    return bool(_DEFAULT["enabled"]), float(_DEFAULT["sample_rate"])


__all__ = [
    "BottleneckHint",
    "Counter",
    "CriticalHop",
    "CURRENT",
    "FaultSummary",
    "fault_summary",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanContext",
    "SpanNode",
    "StageStat",
    "Tracer",
    "build_traces",
    "critical_path",
    "default_tracing",
    "find_bottleneck",
    "is_span_record",
    "longest_trace",
    "set_default_tracing",
    "stage_breakdown",
    "to_perfetto",
    "write_perfetto",
]
