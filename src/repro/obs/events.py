"""Central event table: every telemetry event name, declared once.

The flight recorder (:mod:`repro.obs.recorder`) and the flat trace
records (:meth:`repro.core.monitoring.PerfMonitor.record`) both name
events with short dotted strings.  Scattered ad-hoc literals are how
the hint keys got out of sync before :mod:`repro.core.hints` existed —
this module is the same cure for event names: each code is declared
exactly once with its semantics, producers import the constant, and the
FlexLint FXL007 rule fails any hot-path ``record()`` call whose event
name is an unregistered literal or a computed f-string.

Two registries share the table:

* **flight event codes** (``EV_*``) — the compact structured events the
  always-on flight recorder keeps in its ring buffer; and
* **trace categories** — the ``category`` names of flat
  ``PerfMonitor.record`` records (drain faults, lost steps, ...).

``EVENT_CODES`` is their union: the single vocabulary FXL007 checks
against.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one telemetry event name."""

    code: str
    description: str


class UnknownEventError(ValueError):
    """An event code that the central table does not declare."""

    def __init__(self, code: str, suggestion: Optional[str] = None) -> None:
        msg = f"unknown event code {code!r}"
        if suggestion:
            msg += f"; did you mean {suggestion!r}?"
        super().__init__(msg)
        self.code = code
        self.suggestion = suggestion


# ---------------------------------------------------------------------------
# Flight-recorder event codes — the only place these strings are spelled.
# ---------------------------------------------------------------------------

EV_STEP_BEGIN = "step.begin"
EV_STEP_COMMIT = "step.commit"
EV_STEP_LOST = "step.lost"
EV_STEP_ABORTED = "step.aborted"
EV_RETRY = "drain.retry"
EV_FAULT = "transport.fault"
EV_DEGRADE = "transport.degrade"
EV_BACKPRESSURE = "queue.backpressure"
EV_QUEUE_HIGH_WATER = "queue.high_water"
EV_LEASE_REAP = "lease.reap"
EV_STREAM_FAILED = "stream.failed"
EV_DRAIN_WEDGED = "drain.wedged"
EV_SANITIZER = "sanitizer.violation"
EV_HEALTH = "health.verdict"
EV_FLIGHT_DUMP = "flight.dump"
EV_NET_CONNECT = "net.connect"
EV_NET_DISCONNECT = "net.disconnect"
EV_NET_STREAM_OPEN = "net.stream.open"
EV_NET_STEP_PUBLISH = "net.step.publish"
EV_NET_STEP_FETCH = "net.step.fetch"
EV_ADMISSION_REJECT = "tenant.admission.reject"
EV_NET_RECONNECT = "net.reconnect"
EV_NET_RESUME = "net.resume"
EV_NET_SESSION_LOST = "net.session_lost"
EV_NET_RETRY_AFTER = "net.retry_after"
EV_NET_DRAIN = "net.drain"
EV_NET_CHECKPOINT = "net.checkpoint"
EV_NET_RESTORE = "net.restore"
EV_NET_DUP_PUBLISH = "net.dup_publish"

_FLIGHT_SPECS = (
    EventSpec(EV_STEP_BEGIN, "a timestep was sealed and handed to the drainer"),
    EventSpec(EV_STEP_COMMIT, "a step cleared the transport and became readable"),
    EventSpec(EV_STEP_LOST, "retries exhausted; the step's payload was discarded"),
    EventSpec(EV_STEP_ABORTED, "the step's transaction aborted; payload discarded"),
    EventSpec(EV_RETRY, "a drain attempt is being retried after a fault"),
    EventSpec(EV_FAULT, "the fault injector (or a real fault) hit one send"),
    EventSpec(EV_DEGRADE, "the stream fell down the transport ladder"),
    EventSpec(EV_BACKPRESSURE, "the writer blocked on a full drain queue"),
    EventSpec(EV_QUEUE_HIGH_WATER, "the drain queue reached a new high-water depth"),
    EventSpec(EV_LEASE_REAP, "the directory evicted an expired writer lease"),
    EventSpec(EV_STREAM_FAILED, "a stream ended abnormally (writer death)"),
    EventSpec(EV_DRAIN_WEDGED, "a drainer thread failed to join at stop()"),
    EventSpec(EV_SANITIZER, "the concurrency sanitizer recorded a violation"),
    EventSpec(EV_HEALTH, "a stream's health verdict changed"),
    EventSpec(EV_FLIGHT_DUMP, "the recorder wrote a dump artifact"),
    EventSpec(EV_NET_CONNECT, "a client authenticated to the directory daemon"),
    EventSpec(EV_NET_DISCONNECT, "a client connection to the daemon ended"),
    EventSpec(EV_NET_STREAM_OPEN, "a named stream was opened through the daemon"),
    EventSpec(EV_NET_STEP_PUBLISH, "a writer published one step to the daemon broker"),
    EventSpec(EV_NET_STEP_FETCH, "a reader fetched one step from the daemon broker"),
    EventSpec(EV_ADMISSION_REJECT, "admission control rejected a tenant request"),
    EventSpec(EV_NET_RECONNECT, "a client rebuilt a connection after a network fault"),
    EventSpec(EV_NET_RESUME, "a session was resumed via its resume token"),
    EventSpec(EV_NET_SESSION_LOST, "reconnect retries were exhausted; session lost"),
    EventSpec(EV_NET_RETRY_AFTER, "the daemon asked a peer to back off (draining)"),
    EventSpec(EV_NET_DRAIN, "the daemon entered graceful drain"),
    EventSpec(EV_NET_CHECKPOINT, "the daemon wrote a durability checkpoint"),
    EventSpec(EV_NET_RESTORE, "the daemon restored state from a checkpoint"),
    EventSpec(EV_NET_DUP_PUBLISH, "the broker suppressed a duplicate republish"),
)

#: Flight event registry, keyed by code.
FLIGHT_EVENTS: dict[str, EventSpec] = {s.code: s for s in _FLIGHT_SPECS}


# ---------------------------------------------------------------------------
# Trace categories of flat PerfMonitor.record() records.
# ---------------------------------------------------------------------------

_CATEGORY_SPECS = (
    EventSpec("fault", "one injected transport fault (faults.record_injected)"),
    EventSpec("drain_fault", "one failed drain attempt (will retry or fail)"),
    EventSpec("drain_recovered", "a retried send eventually succeeded"),
    EventSpec("drain_error", "a step's retries were exhausted"),
    EventSpec("drain_wedged", "the drain thread missed its join timeout"),
    EventSpec("step_lost", "a step was marked LOST/ABORTED"),
    EventSpec("stream_publish", "a step was committed to the published list"),
    EventSpec("stream_failed", "a stream ended abnormally"),
    EventSpec("stream_read", "one reader-side read completed"),
    EventSpec("transport_degraded", "the active transport fell down the ladder"),
    EventSpec("transport", "one transport-level data movement"),
    EventSpec("redistribution", "one MxN redistribution execution"),
    EventSpec("handshake", "one handshake-protocol accounting round"),
    EventSpec("dc_migration", "the placement controller migrated a codelet"),
)

#: Flat-record category registry, keyed by category name.
TRACE_CATEGORIES: dict[str, EventSpec] = {s.code: s for s in _CATEGORY_SPECS}

#: The single vocabulary FXL007 validates record() literals against.
EVENT_CODES: frozenset[str] = frozenset(FLIGHT_EVENTS) | frozenset(TRACE_CATEGORIES)


def suggest(code: str) -> Optional[str]:
    """The closest registered code to a misspelled one, if any."""
    matches = difflib.get_close_matches(code, sorted(EVENT_CODES), n=1)
    return matches[0] if matches else None


def validate_code(code: str) -> str:
    """Return ``code`` if registered; raise :class:`UnknownEventError`."""
    if code not in EVENT_CODES:
        raise UnknownEventError(code, suggest(code))
    return code
