"""Periodic delta snapshots of a metrics registry.

The counters in :class:`~repro.obs.metrics.MetricsRegistry` are
cumulative — good for totals, useless for "how fast is this stream
moving *right now*".  A :class:`SnapshotCollector` turns them into
windowed telemetry: each :meth:`~SnapshotCollector.collect` diffs the
registry against the previous collection and reports per-counter
**deltas and rates** over the elapsed interval, alongside the current
gauge values and cumulative histogram percentiles.

This is the sampling layer under the stream health model
(:mod:`repro.obs.health`) and the live exposition server
(:mod:`repro.obs.live`): both ask the collector, never the raw
registry, so "steps per second" means the same thing everywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class DeltaSnapshot:
    """One collection window over a registry."""

    at: float                      # collector clock at collection
    interval: float                # seconds since the previous collection
    counters: dict                 # series key -> cumulative value
    deltas: dict                   # series key -> increase this window
    rates: dict                    # series key -> delta / interval
    gauges: dict                   # series key -> {"value", "max"}
    histograms: dict               # series key -> percentile summary

    def rate(self, name: str, default: float = 0.0) -> float:
        return float(self.rates.get(name, default))

    def delta(self, name: str, default: float = 0.0) -> float:
        return float(self.deltas.get(name, default))

    def counter(self, name: str, default: float = 0.0) -> float:
        return float(self.counters.get(name, default))

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        g = self.gauges.get(name)
        return float(g["value"]) if g else default

    def percentile(self, name: str, q: str = "p99", default: float = 0.0) -> float:
        h = self.histograms.get(name)
        return float(h[q]) if h and q in h else default

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "interval": self.interval,
            "counters": dict(self.counters),
            "deltas": dict(self.deltas),
            "rates": dict(self.rates),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class SnapshotCollector:
    """Stateful delta sampler over one registry.

    Not thread-safe by design: one consumer (the health model or the
    live server's sampling loop) owns each collector.  The registry it
    reads *is* written concurrently, but counter reads are single
    attribute loads — a torn window misattributes at most one increment
    to the neighbouring window.
    """

    def __init__(self, registry: MetricsRegistry, clock=None) -> None:
        self.registry = registry
        self.clock = clock or time.monotonic
        self._last_at: float = self.clock()
        self._last_counters: dict[str, float] = {}
        self.collections = 0

    def collect(self) -> DeltaSnapshot:
        """Diff the registry against the previous collection."""
        now = self.clock()
        interval = max(now - self._last_at, 1e-9)
        snap = self.registry.snapshot()
        counters = {k: float(v) for k, v in snap["counters"].items()}
        deltas = {
            k: v - self._last_counters.get(k, 0.0) for k, v in counters.items()
        }
        rates = {k: d / interval for k, d in deltas.items()}
        self._last_at = now
        self._last_counters = counters
        self.collections += 1
        return DeltaSnapshot(
            at=now,
            interval=interval,
            counters=counters,
            deltas=deltas,
            rates=rates,
            gauges=snap["gauges"],
            histograms=snap["histograms"],
        )
