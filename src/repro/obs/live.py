"""Live telemetry export: loopback HTTP server + Prometheus exposition.

The first brick of the ROADMAP's networked control plane: while streams
are running, a tiny asyncio server on the loopback interface serves the
process's telemetry to scrapers and the ``repro.tools.monitor`` CLI —
no third-party dependency, just ``asyncio.start_server`` speaking
enough HTTP/1.1 for ``curl`` and a Prometheus scraper.

Endpoints:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of
  every live stream's metrics registry; series carry a ``stream``
  label, histograms render as summaries (quantiles + ``_sum`` +
  ``_count``);
* ``GET /events?n=100`` — JSONL tail of the flight recorder ring;
* ``GET /health`` — per-stream SLO verdicts as JSON;
* ``GET /streams`` — the monitor CLI's per-stream table rows;
* ``GET /`` — endpoint index.

The server runs its event loop in a daemon thread so the data plane
never awaits it; every request reads a point-in-time snapshot.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Callable, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs import recorder as flight_recorder
from repro.obs.health import HealthBoard, SLOPolicy
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Prometheus metric-name alphabet; anything else becomes ``_``.
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
#: Sample line shape checked by :func:`validate_exposition`.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[Nn]a[Nn]|[Ii]nf)$"
)
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

#: Quantiles a histogram exposes when rendered as a summary.
_QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))


def metric_name(name: str, prefix: str = "flexio_") -> str:
    """Sanitize a dotted instrument name to the Prometheus alphabet."""
    safe = _NAME_OK.sub("_", name)
    if not re.match(r"^[a-zA-Z_:]", safe):
        safe = "_" + safe
    return prefix + safe


def _label_str(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", k)}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(v: object) -> str:
    return str(v).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def render_prometheus(
    registries: Mapping[str, MetricsRegistry], prefix: str = "flexio_"
) -> str:
    """Text exposition of several registries, one ``stream`` label each.

    ``registries`` maps a stream name (or ``""`` for process-level
    series, which then get no ``stream`` label) to its registry.  Series
    of the same metric across streams group under a single ``# TYPE``
    family, as the format requires.
    """
    counters: dict[str, list[tuple[dict, Counter]]] = {}
    gauges: dict[str, list[tuple[dict, Gauge]]] = {}
    histograms: dict[str, list[tuple[dict, Histogram]]] = {}
    for stream, registry in sorted(registries.items()):
        base = {"stream": stream} if stream else {}
        for c in registry.counters():
            counters.setdefault(metric_name(c.name, prefix), []).append(
                ({**base, **c.labels}, c)
            )
        for g in registry.gauges():
            gauges.setdefault(metric_name(g.name, prefix), []).append(
                ({**base, **g.labels}, g)
            )
        for h in registry.histograms():
            histograms.setdefault(metric_name(h.name, prefix), []).append(
                ({**base, **h.labels}, h)
            )
    lines: list[str] = []
    for name in sorted(counters):
        lines.append(f"# TYPE {name} counter")
        for labels, c in counters[name]:
            lines.append(f"{name}{_label_str(labels)} {float(c.value):g}")
    for name in sorted(gauges):
        lines.append(f"# TYPE {name} gauge")
        for labels, g in gauges[name]:
            lines.append(f"{name}{_label_str(labels)} {float(g.value):g}")
    for name in sorted(histograms):
        lines.append(f"# TYPE {name} summary")
        for labels, h in histograms[name]:
            for q, pct in _QUANTILES:
                ql = {**labels, "quantile": f"{q:g}"}
                v = h.percentile(pct) if h.count else 0.0
                lines.append(f"{name}{_label_str(ql)} {v:g}")
            lines.append(f"{name}_sum{_label_str(labels)} {h.total:g}")
            lines.append(f"{name}_count{_label_str(labels)} {h.count:g}")
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> list[str]:
    """Check Prometheus text-format rules; returns problems (empty = OK).

    Covers what a scraper actually rejects: malformed sample lines,
    unknown or duplicate ``# TYPE`` declarations, samples whose family
    was never typed, and non-comment garbage.
    """
    problems: list[str] = []
    typed: set[str] = set()
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    problems.append(f"line {i}: malformed TYPE comment: {line!r}")
                elif parts[2] in typed:
                    problems.append(f"line {i}: duplicate TYPE for {parts[2]}")
                else:
                    typed.add(parts[2])
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {i}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = re.sub(r"_(sum|count|bucket|total)$", "", name)
        if name not in typed and family not in typed:
            problems.append(f"line {i}: sample {name!r} has no TYPE declaration")
    return problems


def _default_states() -> Mapping[str, object]:
    """Live streams of the in-process registry (imported lazily: core
    imports obs, so obs.live must not import core at module load)."""
    from repro.core.stream import stream_registry

    return dict(stream_registry._states)


class LiveTelemetryServer:
    """Loopback asyncio HTTP server over the process's telemetry.

    ``states`` is a zero-argument callable returning the streams to
    expose (name → object with ``monitor``/``closed``/``error``);
    defaults to the process-wide stream registry.
    """

    def __init__(
        self,
        states: Optional[Callable[[], Mapping[str, object]]] = None,
        policy: Optional[SLOPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._states = states or _default_states
        self.board = HealthBoard(policy=policy)
        self.host = host
        self.port = port          # 0 → ephemeral; fixed after start()
        self.requests = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, port)."""
        if self._thread is not None:
            return self.host, self.port
        self._thread = threading.Thread(
            target=self._serve, name="flexio-live", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"live server failed to start: {self._startup_error!r}"
            )
        if not self._ready.is_set():
            raise RuntimeError("live server did not start within 10s")
        return self.host, self.port

    def _serve(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        # flexlint: ok(FXL001) any bind/loop failure must unblock start(), whatever its type
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._loop = None
        self._server = None
        self._thread = None
        self._ready.clear()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling --------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers; loopback peers send few
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                body, ctype, status = b"method not allowed\n", "text/plain", 405
            else:
                body, ctype, status = self._route(parts[1])
            self.requests += 1
            head = (
                f"HTTP/1.1 {status} {'OK' if status == 200 else 'ERR'}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to clean up
        finally:
            writer.close()

    def _route(self, target: str) -> tuple[bytes, str, int]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/metrics":
            return self._metrics()
        if path == "/events":
            return self._events(query)
        if path == "/health":
            return self._health()
        if path == "/streams":
            return self._streams()
        if path == "/":
            index = {"endpoints": ["/metrics", "/events", "/health", "/streams"]}
            return json.dumps(index).encode(), "application/json", 200
        return b"not found\n", "text/plain", 404

    def _registries(self) -> dict[str, MetricsRegistry]:
        return {
            name: state.monitor.metrics
            for name, state in sorted(self._states().items())
        }

    def _metrics(self) -> tuple[bytes, str, int]:
        text = render_prometheus(self._registries())
        return text.encode(), "text/plain", 200

    def _events(self, query) -> tuple[bytes, str, int]:
        rec = flight_recorder.get()
        if rec is None:
            return b"", "application/x-ndjson", 200
        try:
            n = int(query.get("n", ["256"])[0])
        except ValueError:
            return b"bad n\n", "text/plain", 400
        stream = query.get("stream", [None])[0]
        events = rec.events(stream=stream, limit=max(0, n))
        body = "".join(json.dumps(e.as_dict()) + "\n" for e in events)
        return body.encode(), "application/x-ndjson", 200

    def _health(self) -> tuple[bytes, str, int]:
        reports = self.board.sample(self._states())
        doc = {name: r.as_dict() for name, r in reports.items()}
        return json.dumps(doc).encode(), "application/json", 200

    def _streams(self) -> tuple[bytes, str, int]:
        states = self._states()
        reports = self.board.sample(states)
        rows = []
        for name, state in sorted(states.items()):
            r = reports.get(name)
            if state.error is not None:
                status = "failed"
            elif state.closed:
                status = "closed"
            else:
                status = "open"
            rows.append({
                "stream": name,
                "state": status,
                "transport": getattr(state, "active_transport", ""),
                "steps_per_s": r.steps_per_s if r else 0.0,
                "bytes_per_s": r.bytes_per_s if r else 0.0,
                "p99_latency": r.p99_latency if r else 0.0,
                "loss_rate": r.loss_rate if r else 0.0,
                "queue_depth": r.queue_depth if r else 0.0,
                "health": r.verdict.value if r else "healthy",
                "reasons": list(r.reasons) if r else [],
            })
        return json.dumps({"streams": rows}).encode(), "application/json", 200
