"""Offline trace analysis: stage breakdowns, critical path, bottleneck.

Consumes the JSONL dump produced by :meth:`PerfMonitor.dump` (a list of
dicts after :meth:`PerfMonitor.load`).  Span records — those carrying
``trace_id``/``span_id`` — are assembled into per-trace trees; analysis
then answers the three questions the paper's offline-tuning loop needs:

1. *Where does time go?* — per-stage (category) totals using **exclusive**
   time (a span's duration minus its children's), so nested spans are not
   double counted;
2. *What limits one timestep?* — the **critical path** through the span
   tree of a trace, computed by the standard last-finishing-child walk;
3. *What should I turn?* — a :class:`BottleneckHint` naming the dominant
   stage with a FlexIO-specific suggestion, consumable by
   ``repro.tools.advisor`` and :mod:`repro.core.adaptive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.export import is_span_record


@dataclass
class SpanNode:
    """One span record plus its resolved children."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def category(self) -> str:
        return self.record.get("category", "?")

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def start(self) -> float:
        return float(self.record.get("start", 0.0))

    @property
    def duration(self) -> float:
        return float(self.record.get("duration", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def span_id(self) -> str:
        return self.record["span_id"]

    @property
    def exclusive(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))


def span_records(records: Iterable[dict]) -> list[dict]:
    return [r for r in records if is_span_record(r)]


def build_traces(records: Iterable[dict]) -> dict[str, list[SpanNode]]:
    """Group span records into trees; returns ``trace_id -> roots``.

    A span whose parent is absent from the dump (e.g. partial capture)
    is promoted to a root of its trace rather than dropped.
    """
    by_trace: dict[str, dict[str, SpanNode]] = {}
    for rec in span_records(records):
        by_trace.setdefault(rec["trace_id"], {})[rec["span_id"]] = SpanNode(rec)
    out: dict[str, list[SpanNode]] = {}
    for trace_id, nodes in by_trace.items():
        roots: list[SpanNode] = []
        for node in nodes.values():
            parent_id = node.record.get("parent_id") or None
            parent = nodes.get(parent_id) if parent_id else None
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.start, n.span_id))
        roots.sort(key=lambda n: (n.start, n.span_id))
        out[trace_id] = roots
    return out


# ---------------------------------------------------------------------------
# Stage breakdown
# ---------------------------------------------------------------------------

@dataclass
class StageStat:
    """Aggregate over every span of one category (pipeline stage)."""

    stage: str
    spans: int = 0
    total_time: float = 0.0
    exclusive_time: float = 0.0
    total_bytes: int = 0


def stage_breakdown(records: Iterable[dict]) -> list[StageStat]:
    """Per-stage totals over all traces, sorted by exclusive time."""
    traces = build_traces(records)
    stats: dict[str, StageStat] = {}

    def visit(node: SpanNode) -> None:
        st = stats.get(node.category)
        if st is None:
            st = stats[node.category] = StageStat(node.category)
        st.spans += 1
        st.total_time += node.duration
        st.exclusive_time += node.exclusive
        st.total_bytes += int(node.record.get("bytes", 0))
        for c in node.children:
            visit(c)

    for roots in traces.values():
        for root in roots:
            visit(root)
    return sorted(stats.values(), key=lambda s: -s.exclusive_time)


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CriticalHop:
    """One span on the critical path, with its depth in the tree."""

    node: SpanNode
    depth: int


def critical_path(root: SpanNode) -> list[CriticalHop]:
    """Longest dependency chain through one trace tree.

    Standard last-finishing-child walk: starting from the end of the
    tree, repeatedly descend into the child whose *subtree* finishes
    last before the current cursor, then continue leftward from that
    child's start.  Subtree (not span) end times matter because in a
    cross-program trace the reader's spans outlast the writer-side root
    span they hang off.  Returned in execution (start-time) order.
    """
    eps = 1e-12
    hops: list[CriticalHop] = []
    ends: dict[int, float] = {}

    def subtree_end(node: SpanNode) -> float:
        key = id(node)
        if key not in ends:
            ends[key] = max([node.end] + [subtree_end(c) for c in node.children])
        return ends[key]

    def walk(node: SpanNode, cut: float, depth: int) -> None:
        hops.append(CriticalHop(node, depth))
        cursor = min(subtree_end(node), cut)
        remaining = list(node.children)
        while remaining:
            eligible = [c for c in remaining if subtree_end(c) <= cursor + eps]
            if not eligible:
                break
            last = max(eligible, key=lambda c: (subtree_end(c), c.start))
            walk(last, cursor, depth + 1)
            cursor = last.start
            remaining = [c for c in remaining if subtree_end(c) < last.start + eps]

    walk(root, subtree_end(root), 0)
    return sorted(hops, key=lambda h: (h.node.start, h.depth))


def longest_trace(traces: dict[str, list[SpanNode]]) -> Optional[str]:
    """The trace whose root spans cover the most time (the worst step)."""
    best, best_t = None, -1.0
    for trace_id, roots in sorted(traces.items()):
        t = sum(r.duration for r in roots)
        if t > best_t:
            best, best_t = trace_id, t
    return best


# ---------------------------------------------------------------------------
# Bottleneck hinting
# ---------------------------------------------------------------------------

#: Stage → what a FlexIO operator should try first.  Keys match the span
#: categories emitted by the stream/transport/plug-in layers.
SUGGESTIONS: dict[str, str] = {
    "write": "enable asynchronous writes (sync=false) and the XPMEM path "
             "for large members so the simulation stops blocking on output",
    "redistribute": "enable handshake caching (caching=all) and variable "
                    "batching (batching=true) to amortize the 4-step protocol",
    "transport": "raise the bulk-Get concurrency bound / move analytics "
                 "closer to the data (helper cores or same-node staging)",
    "read": "widen the reader partition or pipeline reads with analysis",
    "dc_plugin": "migrate reducer plug-ins writer-side and expander "
                 "plug-ins reader-side; check codelet cost against the "
                 "writer CPU budget",
    "handshake": "enable handshake caching (caching=all) and batching",
}


@dataclass(frozen=True)
class BottleneckHint:
    """The dominant stage of a dump, with a share and a suggestion.

    ``stage`` matches a span category; ``share`` is its fraction of total
    exclusive time in [0, 1].  Consumed by ``repro.tools.advisor``
    (placement advice) and :mod:`repro.core.adaptive` (policy tuning).
    """

    stage: str
    share: float
    exclusive_time: float
    suggestion: str

    def __str__(self) -> str:
        return (
            f"bottleneck: {self.stage} ({self.share:.0%} of exclusive time, "
            f"{self.exclusive_time:.6f}s) — {self.suggestion}"
        )


def find_bottleneck(records: Iterable[dict]) -> Optional[BottleneckHint]:
    """Name the stage dominating exclusive time, or ``None`` if no spans."""
    breakdown = stage_breakdown(records)
    total = sum(s.exclusive_time for s in breakdown)
    if not breakdown or total <= 0:
        return None
    top = breakdown[0]
    return BottleneckHint(
        stage=top.stage,
        share=top.exclusive_time / total,
        exclusive_time=top.exclusive_time,
        suggestion=SUGGESTIONS.get(top.stage, "profile this stage further"),
    )


# ---------------------------------------------------------------------------
# Fault/recovery summary
# ---------------------------------------------------------------------------

@dataclass
class FaultSummary:
    """Aggregate of the data plane's fault and recovery records.

    Built from the non-span records the resilient pipeline emits:
    injected transport faults (category ``fault``), per-attempt drain
    failures and recoveries, steps lost after exhausted retries,
    transport degradations, and abnormal stream ends.
    """

    #: ``"<transport>.<kind>" -> count`` of injected faults.
    injected: dict = field(default_factory=dict)
    drain_faults: int = 0
    recovered: int = 0
    drain_errors: int = 0
    steps_lost: int = 0
    #: ``(src, dst)`` transport pairs, one per degradation event.
    degradations: list = field(default_factory=list)
    #: Failure reasons of streams that ended abnormally.
    stream_failures: list = field(default_factory=list)
    wedged_drains: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def any(self) -> bool:
        """True when the dump shows any fault activity at all."""
        return bool(
            self.injected or self.drain_faults or self.drain_errors
            or self.steps_lost or self.degradations or self.stream_failures
            or self.wedged_drains
        )

    def lines(self) -> list[str]:
        """Human-readable one-liners (what ``repro.tools.trace`` prints)."""
        out = []
        for key in sorted(self.injected):
            out.append(f"injected {self.injected[key]}x {key}")
        if self.drain_faults:
            out.append(
                f"{self.drain_faults} drain attempts faulted, "
                f"{self.recovered} steps recovered by retry, "
                f"{self.drain_errors} exhausted retries"
            )
        if self.steps_lost:
            out.append(f"{self.steps_lost} steps lost/aborted (typed gaps)")
        for src, dst in self.degradations:
            out.append(f"transport degraded {src} -> {dst}")
        for reason in self.stream_failures:
            out.append(f"stream failed: {reason}")
        if self.wedged_drains:
            out.append(f"{self.wedged_drains} wedged drain threads")
        return out


def fault_summary(records: Iterable[dict]) -> FaultSummary:
    """Aggregate every fault/recovery record of one dump."""
    s = FaultSummary()
    for rec in records:
        cat = rec.get("category")
        if cat == "fault":
            key = rec.get("name", "?")
            s.injected[key] = s.injected.get(key, 0) + 1
        elif cat == "drain_fault":
            s.drain_faults += 1
        elif cat == "drain_recovered":
            s.recovered += 1
        elif cat == "drain_error":
            s.drain_errors += 1
        elif cat == "step_lost":
            s.steps_lost += 1
        elif cat == "transport_degraded":
            s.degradations.append((rec.get("src", "?"), rec.get("dst", "?")))
        elif cat == "stream_failed":
            s.stream_failures.append(rec.get("error", "?"))
        elif cat == "drain_wedged":
            s.wedged_drains += 1
    return s


# ---------------------------------------------------------------------------
# Copy accounting (zero-copy buffer plane)
# ---------------------------------------------------------------------------

@dataclass
class CopySummary:
    """Aggregate of per-delivery copy counts on the transport plane.

    Every ``recv`` span carries ``path`` (inline/pool/xpmem/put_small/
    get_bulk) and ``copies`` (CPU memcpys between producer buffer and the
    consumer-visible view: 0 xpmem, 1 pool/RDMA, 2 inline) attributes;
    this rolls them up so the trace CLI can show whether the memory plane
    actually ran zero-copy.
    """

    #: ``path -> [messages, bytes, total copies]``.
    per_path: dict = field(default_factory=dict)

    @property
    def messages(self) -> int:
        return sum(v[0] for v in self.per_path.values())

    @property
    def total_copies(self) -> int:
        return sum(v[2] for v in self.per_path.values())

    def any(self) -> bool:
        return bool(self.per_path)

    def lines(self) -> list[str]:
        """Human-readable one-liners (what ``repro.tools.trace`` prints)."""
        from repro.util import fmt_bytes

        out = []
        for path in sorted(self.per_path):
            msgs, nbytes, copies = self.per_path[path]
            per_msg = copies / msgs if msgs else 0.0
            out.append(
                f"{path}: {msgs} messages, {fmt_bytes(nbytes)}, "
                f"{per_msg:.1f} copies/message"
            )
        if self.messages:
            out.append(
                f"total: {self.messages} messages, "
                f"{self.total_copies} copies"
            )
        return out


def copy_summary(records: Iterable[dict]) -> CopySummary:
    """Aggregate the copy counts of every delivery span in one dump."""
    s = CopySummary()
    for rec in records:
        copies = rec.get("copies")
        if copies is None:
            continue
        path = str(rec.get("path", "?"))
        entry = s.per_path.setdefault(path, [0, 0, 0])
        entry[0] += 1
        entry[1] += int(rec.get("bytes", 0))
        entry[2] += int(copies)
    return s
