"""Small shared helpers: byte units, cache-line math, deterministic RNG."""

from __future__ import annotations

import numpy as np

#: Byte-size unit constants used throughout the cost models.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Canonical x86 cache line size (bytes) — the FastForward queue layout and
#: the false-sharing math in the shm transport are expressed in these.
CACHE_LINE = 64

#: Virtual-memory page size assumed by the RDMA registration cost model.
PAGE_SIZE = 4096


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if b <= 0:
        raise ValueError(f"ceil_div by non-positive {b}")
    return -(-a // b)


def align_up(n: int, alignment: int) -> int:
    """Round ``n`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ceil_div(n, alignment) * alignment


def pages_of(nbytes: int) -> int:
    """Number of VM pages spanned by a buffer of ``nbytes``."""
    return ceil_div(max(nbytes, 1), PAGE_SIZE)


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``110.0 MiB``."""
    n = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def rng(seed: int | None) -> np.random.Generator:
    """A deterministic NumPy generator; ``None`` maps to a fixed seed.

    Every stochastic element of the reproduction flows through this so that
    repeated runs (and the test suite) are bit-stable.
    """
    return np.random.default_rng(0xF1E710 if seed is None else seed)
