"""Placement machinery (paper Section III).

FlexIO makes analytics placement a tunable: these modules implement the
metrics and the three heuristic placement algorithms the paper evaluates.

* :mod:`repro.placement.metrics` — Total Execution Time, Total CPU Hours,
  Data Movement Volume (Section III.A);
* :mod:`repro.placement.commgraph` — weighted communication graphs over
  simulation + analytics processes: inter-program edges from the MxN plan,
  intra-program edges from the applications' halo/collective patterns;
* :mod:`repro.placement.partition` — balanced graph partitioning by
  recursive bisection with Kernighan–Lin/FM refinement (our stand-in for
  the graph partitioner behind data-aware mapping);
* :mod:`repro.placement.graphmap` — Scotch-like dual recursive
  bipartitioning that maps a communication graph onto the machine's
  architecture tree (2-level for holistic, cache/NUMA-deep for
  node-topology-aware placement);
* :mod:`repro.placement.algorithms` — the three placement policies:
  data-aware mapping, holistic placement (resource allocation + binding,
  sync and async variants), and node-topology-aware placement.
"""

from repro.placement.metrics import RunMetrics, cpu_hours
from repro.placement.commgraph import CommGraph, grid_edges, ring_edges
from repro.placement.partition import bisect_graph, partition_graph
from repro.placement.graphmap import map_to_tree, mapping_cost
from repro.placement.algorithms import (
    AnalyticsProfile,
    DataAwareMapping,
    HolisticPlacement,
    NodeTopologyAwarePlacement,
    Placement,
    PlacementAlgorithm,
    SimProfile,
    allocate_analytics_async,
    allocate_analytics_sync,
)

__all__ = [
    "AnalyticsProfile",
    "CommGraph",
    "DataAwareMapping",
    "HolisticPlacement",
    "NodeTopologyAwarePlacement",
    "Placement",
    "PlacementAlgorithm",
    "RunMetrics",
    "SimProfile",
    "allocate_analytics_async",
    "allocate_analytics_sync",
    "bisect_graph",
    "cpu_hours",
    "grid_edges",
    "map_to_tree",
    "mapping_cost",
    "partition_graph",
    "ring_edges",
]
