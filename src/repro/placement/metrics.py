"""Performance and cost metrics (paper Section III.A).

Three metrics matter to science end users:

* **Total Execution Time** — start of simulation+analytics to completion
  of both;
* **Total CPU Hours** — nodes used × total execution time, the unit
  supercomputing centers charge in;
* **Data Movement Volume** — bytes moved between simulation and analytics
  (we also split intra-node vs inter-node, since the paper's "90 % less
  inter-node movement" claims hinge on that split).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def cpu_hours(num_nodes: int, total_execution_time_s: float, cores_per_node: int = 16) -> float:
    """Charged core-hours: nodes × cores × wall hours.

    Centers charge whole nodes; partial-node usage still pays for the node.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if total_execution_time_s < 0:
        raise ValueError("time must be >= 0")
    return num_nodes * cores_per_node * total_execution_time_s / 3600.0


@dataclass
class RunMetrics:
    """Outcome of one coupled run under one placement."""

    placement_name: str
    total_execution_time: float
    num_nodes: int
    cores_per_node: int = 16
    #: Simulation↔analytics bytes staying within a node (shm/inline).
    intra_node_bytes: float = 0.0
    #: Simulation↔analytics bytes crossing the interconnect.
    inter_node_bytes: float = 0.0
    #: Bytes written/read through the parallel file system.
    file_bytes: float = 0.0
    #: Breakdown of wall time (seconds) by phase, e.g. {"compute": ..}.
    phase_times: dict = field(default_factory=dict)

    @property
    def total_cpu_hours(self) -> float:
        return cpu_hours(self.num_nodes, self.total_execution_time, self.cores_per_node)

    @property
    def data_movement_volume(self) -> float:
        return self.intra_node_bytes + self.inter_node_bytes + self.file_bytes

    def gap_to(self, lower_bound_s: float) -> float:
        """Fractional distance above a lower-bound runtime (e.g. solo sim)."""
        if lower_bound_s <= 0:
            raise ValueError("lower bound must be positive")
        return self.total_execution_time / lower_bound_s - 1.0

    def summary_row(self) -> dict:
        return {
            "placement": self.placement_name,
            "tet_s": round(self.total_execution_time, 3),
            "nodes": self.num_nodes,
            "cpu_hours": round(self.total_cpu_hours, 3),
            "inter_node_MB": round(self.inter_node_bytes / 2**20, 1),
            "intra_node_MB": round(self.intra_node_bytes / 2**20, 1),
            "file_MB": round(self.file_bytes / 2**20, 1),
        }
