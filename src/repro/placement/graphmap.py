"""Scotch-like graph mapping onto the architecture tree.

Holistic placement "uses the graph mapping algorithm provided by the
SCOTCH library to map the communication graph to the architecture graph"
(Section III.B.2).  We implement the same idea — dual recursive
bipartitioning — from scratch: at each tree vertex, partition the
processes among the children (capacity = child slot counts) so the cut
crossing children is minimized; recurse until processes sit on cores.

A vertex with weight T (a rank with T OpenMP threads) receives T cores,
all within the subtree where recursion bottoms out — so topology-aware
mapping keeps a rank's threads inside one NUMA domain whenever they fit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.machine.topology import Machine, TreeNode
from repro.placement.commgraph import CommGraph
from repro.placement.partition import partition_graph


class MappingError(RuntimeError):
    """The graph does not fit the architecture (sub)tree."""


def map_to_tree(
    graph: CommGraph,
    tree: TreeNode,
    vertices: Optional[Sequence[int]] = None,
) -> dict[int, list[int]]:
    """Map every vertex to a list of cores (one per unit of weight).

    Returns ``{vertex: [core, ...]}`` with ``len(cores) ==
    vertex_weights[vertex]`` and all of a vertex's cores inside one leaf
    group.
    """
    verts = list(vertices) if vertices is not None else list(range(graph.n))
    need = sum(graph.vertex_weights[v] for v in verts)
    have = tree.total_slots()
    if need > have:
        raise MappingError(f"need {need} cores, subtree {tree.label!r} has {have}")
    mapping: dict[int, list[int]] = {}
    _recurse(graph, tree, verts, mapping)
    return mapping


def subtree_bins(tree: TreeNode) -> list[int]:
    """Leaf-group sizes beneath a tree vertex.

    A "leaf group" is the deepest non-core level (a NUMA domain in a
    3-level tree, a whole node in a 2-level one): multi-threaded ranks
    must fit within one group, so packing feasibility is per-group.
    """
    if tree.is_leaf or all(child.is_leaf for child in tree.children):
        return [tree.total_slots()]
    out: list[int] = []
    for child in tree.children:
        out.extend(subtree_bins(child))
    return out


def _recurse(
    graph: CommGraph, tree: TreeNode, verts: list[int], mapping: dict[int, list[int]]
) -> None:
    if not verts:
        return
    # Bottom out when children are single cores (or we're at a leaf):
    # assign cores sequentially, keeping each vertex's threads contiguous.
    if tree.is_leaf or all(child.is_leaf for child in tree.children):
        cores = list(tree.cores)
        pos = 0
        for v in verts:
            w = graph.vertex_weights[v]
            if pos + w > len(cores):
                raise MappingError(
                    f"vertex {v} (weight {w}) does not fit in {tree.label!r}"
                )
            mapping[v] = cores[pos : pos + w]
            pos += w
        return
    capacities = [subtree_bins(child) for child in tree.children]
    try:
        parts = partition_graph(graph, capacities, verts)
    except ValueError as exc:
        raise MappingError(str(exc)) from exc
    for child, part in zip(tree.children, parts):
        _recurse(graph, child, part, mapping)


def mapping_cost(graph: CommGraph, mapping: dict[int, list[int]], machine: Machine) -> float:
    """Σ over edges of bytes × relative core-to-core cost.

    The objective both holistic and topology-aware placement minimize; the
    topology-aware variant sees a finer cost structure because the machine
    tree distinguishes NUMA domains.
    """
    cost = 0.0
    for u, v, w in graph.edges():
        cu = mapping.get(u)
        cv = mapping.get(v)
        if cu is None or cv is None:
            raise MappingError(f"edge ({u},{v}) has an unmapped endpoint")
        cost += w * machine.comm_cost(cu[0], cv[0])
    return cost


def nodes_used(mapping: dict[int, list[int]], machine: Machine) -> set[int]:
    """Distinct nodes the mapping touches (for the CPU-hours metric)."""
    out: set[int] = set()
    for cores in mapping.values():
        for c in cores:
            out.add(machine.node_of(c))
    return out
