"""The three placement algorithms (paper Section III.B).

All three separate **resource allocation** (how many analytics processes)
from **resource binding** (which process goes on which core):

* :class:`DataAwareMapping` — binding only, driven by the inter-program
  communication matrix: graph-partition processes into node-sized groups,
  map each group to a node, each process to a core (reference [51]).
* :class:`HolisticPlacement` — adds (a) resource allocation by
  rate-matching (sync) or movement+compute ≤ I/O interval (async), and
  (b) binding that also sees the programs' *internal* MPI traffic, mapping
  the full communication graph onto a two-level machine tree.
* :class:`NodeTopologyAwarePlacement` — the same, but the machine tree
  descends into cache/NUMA domains, so thread groups stay inside NUMA
  boundaries and FlexIO's shm buffers get a NUMA home.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.machine.topology import Machine
from repro.placement.commgraph import CommGraph, grid_edges, ring_edges
from repro.placement.graphmap import MappingError, map_to_tree, mapping_cost, nodes_used
from repro.placement.partition import partition_graph
from repro.util import ceil_div


# ---------------------------------------------------------------------------
# Workload profiles (inputs obtained by performance profiling, per paper)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimProfile:
    """Steady-state behaviour of the simulation."""

    num_ranks: int
    threads_per_rank: int
    #: Compute time between consecutive outputs (seconds).
    io_interval: float
    #: Output bytes per rank per I/O step.
    bytes_per_rank: int
    #: Process-grid shape for the halo pattern (row-major ranks).
    grid: tuple[int, ...] = ()
    #: Halo bytes exchanged per neighbouring pair per interval.
    halo_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.threads_per_rank <= 0:
            raise ValueError("ranks and threads must be positive")
        if self.io_interval <= 0:
            raise ValueError("io_interval must be positive")
        if self.grid:
            n = 1
            for d in self.grid:
                n *= d
            if n != self.num_ranks:
                raise ValueError(f"grid {self.grid} does not cover {self.num_ranks} ranks")

    @property
    def bytes_per_step(self) -> int:
        return self.num_ranks * self.bytes_per_rank


@dataclass(frozen=True)
class AnalyticsProfile:
    """Strong-scaling behaviour of the analytics (Amdahl form)."""

    #: Time to process one step's data on a single process (seconds).
    time_single: float
    #: Serial fraction of that work.
    serial_fraction: float = 0.05
    #: Internal MPI bytes per ring link per step (histogram reduce, etc.).
    internal_ring_bytes: float = 0.0
    threads_per_rank: int = 1

    def __post_init__(self) -> None:
        if self.time_single <= 0:
            raise ValueError("time_single must be positive")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise ValueError("serial_fraction in [0, 1]")

    def time(self, num_procs: int) -> float:
        """Strong-scaled processing time for one step."""
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        f = self.serial_fraction
        return self.time_single * (f + (1.0 - f) / num_procs)


# ---------------------------------------------------------------------------
# Resource allocation (Section III.B.2)
# ---------------------------------------------------------------------------

def allocate_analytics_sync(
    sim: SimProfile, ana: AnalyticsProfile, max_procs: int = 4096
) -> int:
    """Smallest analytics process count whose consumption rate matches the
    simulation's production rate (two-stage pipeline, no stalls)."""
    for n in range(1, max_procs + 1):
        if ana.time(n) <= sim.io_interval:
            return n
    return max_procs


def allocate_analytics_async(
    sim: SimProfile,
    ana: AnalyticsProfile,
    p2p_bandwidth: float,
    max_procs: int = 4096,
) -> int:
    """Async variant: movement time + analytics time must fit the interval.

    Movement is estimated *conservatively* as the whole step's data moving
    sequentially at point-to-point RDMA bandwidth — the paper notes this
    may over-provision analytics, which is cheap and absorbs variability.
    """
    if p2p_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    movement = sim.bytes_per_step / p2p_bandwidth
    budget = sim.io_interval - movement
    if budget <= 0:
        return max_procs
    for n in range(1, max_procs + 1):
        if ana.time(n) <= budget:
            return n
    return max_procs


# ---------------------------------------------------------------------------
# Placement result
# ---------------------------------------------------------------------------

@dataclass
class Placement:
    """A complete binding of both programs onto the machine."""

    name: str
    machine: Machine
    #: sim rank -> cores (len == threads_per_rank).
    sim_mapping: dict[int, list[int]]
    #: analytics rank -> cores.
    ana_mapping: dict[int, list[int]]
    graph: CommGraph
    cost: float

    @property
    def num_analytics(self) -> int:
        return len(self.ana_mapping)

    @property
    def nodes(self) -> set[int]:
        both = dict(self.sim_mapping)
        both.update({-1 - k: v for k, v in self.ana_mapping.items()})
        return nodes_used(both, self.machine)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def analytics_colocated_fraction(self) -> float:
        """Fraction of analytics ranks sharing a node with some sim rank."""
        if not self.ana_mapping:
            return 0.0
        sim_nodes = {
            self.machine.node_of(c) for cores in self.sim_mapping.values() for c in cores
        }
        hits = sum(
            1
            for cores in self.ana_mapping.values()
            if self.machine.node_of(cores[0]) in sim_nodes
        )
        return hits / len(self.ana_mapping)

    def style(self) -> str:
        """'helper-core' / 'staging' / 'hybrid' by where analytics sit."""
        frac = self.analytics_colocated_fraction()
        if frac >= 0.99:
            return "helper-core"
        if frac <= 0.01:
            return "staging"
        return "hybrid"

    def thread_numa_splits(self) -> int:
        """Sim ranks whose threads straddle a NUMA boundary (the penalty
        topology-aware placement exists to avoid)."""
        splits = 0
        for cores in self.sim_mapping.values():
            domains = {self.machine.numa_of(c) for c in cores}
            if len(domains) > 1:
                splits += 1
        return splits

    def interprogram_internode_bytes(self) -> float:
        """Sim↔analytics bytes that cross the interconnect per step."""
        total = 0.0
        anas = set(self.graph.ana_vertices())
        nsim = len(self.sim_mapping)
        for u, v, w in self.graph.edges():
            if (u in anas) == (v in anas):
                continue
            su, av = (u, v) if v in anas else (v, u)
            cu = self.sim_mapping[su][0]
            cv = self.ana_mapping[av - nsim][0]
            if not self.machine.same_node(cu, cv):
                total += w
        return total

    def _core_of(self, v: int) -> int:
        nsim = len(self.sim_mapping)
        if v < nsim:
            return self.sim_mapping[v][0]
        return self.ana_mapping[v - nsim][0]

    def intraprogram_internode_bytes(self) -> float:
        """Program-internal MPI bytes crossing the interconnect per step."""
        total = 0.0
        anas = set(self.graph.ana_vertices())
        for u, v, w in self.graph.edges():
            if (u in anas) != (v in anas):
                continue
            if not self.machine.same_node(self._core_of(u), self._core_of(v)):
                total += w
        return total

    def intraprogram_crossnuma_bytes(self) -> float:
        """Program-internal bytes crossing NUMA domains *within* nodes.

        The alignment the node-topology-aware algorithm improves over
        holistic placement (paper: "slightly better performance ... by
        further aligning processes' communication with the compute node's
        NUMA structure")."""
        total = 0.0
        anas = set(self.graph.ana_vertices())
        for u, v, w in self.graph.edges():
            if (u in anas) != (v in anas):
                continue
            cu, cv = self._core_of(u), self._core_of(v)
            if self.machine.same_node(cu, cv) and not self.machine.same_numa(cu, cv):
                total += w
        return total


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------

def build_graph(
    sim: SimProfile,
    num_ana: int,
    ana: AnalyticsProfile,
    comm_matrix: np.ndarray,
    include_intraprogram: bool,
) -> CommGraph:
    """Combined communication graph over sim + analytics ranks."""
    g = CommGraph.coupled(
        sim.num_ranks, num_ana, sim.threads_per_rank, ana.threads_per_rank
    )
    g.add_interprogram_matrix(comm_matrix)
    if include_intraprogram:
        if sim.grid and sim.halo_bytes > 0:
            for u, v, w in grid_edges(sim.grid, sim.halo_bytes):
                g.add_edge(u, v, w)
        if ana.internal_ring_bytes > 0 and num_ana > 1:
            for u, v, w in ring_edges(num_ana, ana.internal_ring_bytes, offset=sim.num_ranks):
                g.add_edge(u, v, w)
    return g


def process_group_matrix(num_sim: int, num_ana: int, bytes_per_rank: int) -> np.ndarray:
    """The process-group pattern's matrix: sim rank i feeds analytics rank
    i * num_ana // num_sim (contiguous rank blocks), as GTS does."""
    if num_sim <= 0 or num_ana <= 0:
        raise ValueError("need positive rank counts")
    mat = np.zeros((num_sim, num_ana), dtype=np.int64)
    for i in range(num_sim):
        mat[i, i * num_ana // num_sim] = bytes_per_rank
    return mat


# ---------------------------------------------------------------------------
# The algorithms
# ---------------------------------------------------------------------------

class PlacementAlgorithm:
    """Base: resource allocation defaults to holistic sync rate-matching."""

    name = "abstract"

    def allocate(
        self, machine: Machine, sim: SimProfile, ana: AnalyticsProfile,
        asynchronous: bool = False,
    ) -> int:
        if asynchronous:
            ic = machine.interconnect
            bw = ic.params.peak_bw if ic is not None else 5e9
            return allocate_analytics_async(sim, ana, bw)
        return allocate_analytics_sync(sim, ana)

    def place(
        self,
        machine: Machine,
        sim: SimProfile,
        ana: AnalyticsProfile,
        comm_matrix: np.ndarray,
        num_ana: Optional[int] = None,
        asynchronous: bool = False,
    ) -> Placement:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    @staticmethod
    def _split_mapping(
        mapping: dict[int, list[int]], num_sim: int
    ) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
        sim_map = {v: cores for v, cores in mapping.items() if v < num_sim}
        ana_map = {v - num_sim: cores for v, cores in mapping.items() if v >= num_sim}
        return sim_map, ana_map

    def _candidate_node_sets(
        self, machine: Machine, total_slots: int, sim_slots: int, ana_slots: int
    ) -> list[list[int]]:
        """Node subsets to consider: packed (min nodes) and separated
        (dedicated staging nodes after the simulation's nodes)."""
        cpn = machine.node_type.cores_per_node
        packed = list(range(ceil_div(total_slots, cpn)))
        sim_nodes = ceil_div(sim_slots, cpn)
        ana_nodes = max(1, ceil_div(ana_slots, cpn))
        separated = list(range(sim_nodes + ana_nodes))
        candidates = [packed]
        if separated != packed:
            candidates.append(separated)
        return [c for c in candidates if len(c) <= machine.num_nodes]


class DataAwareMapping(PlacementAlgorithm):
    """Binding from the inter-program matrix alone (Section III.B.1)."""

    name = "data-aware"

    def place(self, machine, sim, ana, comm_matrix, num_ana=None, asynchronous=False):
        if num_ana is None:
            num_ana = self.allocate(machine, sim, ana, asynchronous)
        # The objective sees only sim↔analytics traffic.
        graph = build_graph(sim, num_ana, ana, comm_matrix, include_intraprogram=False)
        cpn = machine.node_type.cores_per_node
        total_slots = graph.total_vertex_weight()
        k = ceil_div(total_slots, cpn)
        if k > machine.num_nodes:
            raise ValueError(f"workload needs {k} nodes, machine has {machine.num_nodes}")
        parts = partition_graph(graph, [cpn] * k)
        mapping: dict[int, list[int]] = {}
        for node_id, part in enumerate(parts):
            base = node_id * cpn
            pos = 0
            for v in part:
                w = graph.vertex_weights[v]
                mapping[v] = list(range(base + pos, base + pos + w))
                pos += w
        # Report cost against the *full* graph so algorithms compare fairly.
        full = build_graph(sim, num_ana, ana, comm_matrix, include_intraprogram=True)
        cost = mapping_cost(full, mapping, machine)
        sim_map, ana_map = self._split_mapping(mapping, sim.num_ranks)
        return Placement(self.name, machine, sim_map, ana_map, full, cost)


class HolisticPlacement(PlacementAlgorithm):
    """Allocation + binding on the full graph, two-level machine tree."""

    name = "holistic"
    include_numa = False

    def place(self, machine, sim, ana, comm_matrix, num_ana=None, asynchronous=False):
        if num_ana is None:
            num_ana = self.allocate(machine, sim, ana, asynchronous)
        graph = build_graph(sim, num_ana, ana, comm_matrix, include_intraprogram=True)
        cpn = machine.node_type.cores_per_node
        sim_slots = sim.num_ranks * sim.threads_per_rank
        ana_slots = num_ana * ana.threads_per_rank
        candidates: list[tuple[tuple, dict]] = []

        # Candidate 1: packed — one joint mapping over the minimal node set
        # (analytics free to co-locate with their feeders: helper cores).
        packed_nodes = list(range(ceil_div(sim_slots + ana_slots, cpn)))
        if len(packed_nodes) <= machine.num_nodes:
            tree = machine.arch_tree(nodes=packed_nodes, include_numa=self.include_numa)
            mapping = map_to_tree(graph, tree)
            candidates.append(
                ((mapping_cost(graph, mapping, machine), len(packed_nodes)), mapping)
            )

        # Candidate 2: separated — the simulation keeps dedicated nodes and
        # the analytics go to staging nodes; each program mapped on its own
        # subtree (resource allocation granting extra nodes).
        sim_nodes = ceil_div(sim_slots, cpn)
        ana_nodes = max(1, ceil_div(ana_slots, cpn))
        if num_ana > 0 and sim_nodes + ana_nodes <= machine.num_nodes:
            sim_tree = machine.arch_tree(
                nodes=list(range(sim_nodes)), include_numa=self.include_numa
            )
            ana_tree = machine.arch_tree(
                nodes=list(range(sim_nodes, sim_nodes + ana_nodes)),
                include_numa=self.include_numa,
            )
            try:
                mapping = map_to_tree(graph, sim_tree, vertices=graph.sim_vertices())
                mapping.update(
                    map_to_tree(graph, ana_tree, vertices=graph.ana_vertices())
                )
            except (MappingError, ValueError):
                # Thread groups may not pack into the reduced node count
                # (NUMA fragmentation); only the packed layout is feasible.
                pass
            else:
                candidates.append(
                    (
                        (mapping_cost(graph, mapping, machine), sim_nodes + ana_nodes),
                        mapping,
                    )
                )

        if not candidates:
            raise ValueError(
                f"workload needs more nodes than machine {machine.name!r} has"
            )
        # Lowest communication cost; tie-break toward fewer nodes.
        candidates.sort(key=lambda c: c[0])
        best = candidates[0]
        mapping = best[1]
        sim_map, ana_map = self._split_mapping(mapping, sim.num_ranks)
        return Placement(
            self.name, machine, sim_map, ana_map, graph, best[0][0]
        )


class NodeTopologyAwarePlacement(HolisticPlacement):
    """Holistic with the machine modeled down to NUMA domains; also the
    policy that pins FlexIO's shm buffers in the simulation's domain."""

    name = "topology-aware"
    include_numa = True
