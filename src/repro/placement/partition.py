"""Balanced graph partitioning: recursive bisection + KL/FM refinement.

The data-aware mapping algorithm "applies graph partitioning to divide
simulation and analytics processes into as many groups as the number of
nodes" (Section III.B.1).  The paper uses an external partitioner; we
implement the same algorithmic family from scratch: a greedy BFS-based
initial bisection followed by Kernighan–Lin-style refinement passes, then
recursion for k-way splits.

Capacities are *bin lists*, not flat slot counts: a part destined for one
NUMA-structured node is ``[4, 4, 4, 4]`` (four domains of four cores), and
a multi-threaded rank (vertex weight > 1) must fit inside a single bin.
Feasibility is checked with first-fit-decreasing packing, which keeps
thread groups from straddling NUMA boundaries during mapping.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.placement.commgraph import CommGraph


def packable(weights: Sequence[int], bins: Sequence[int]) -> bool:
    """Can items of ``weights`` pack into ``bins`` (best-fit decreasing)?"""
    remaining = sorted(bins, reverse=True)
    for w in sorted(weights, reverse=True):
        # Best fit: the fullest bin that still takes w.
        best = -1
        best_rem = None
        for i, r in enumerate(remaining):
            if r >= w and (best_rem is None or r < best_rem):
                best, best_rem = i, r
        if best < 0:
            return False
        remaining[best] -= w
    return True


class _Part:
    """Mutable part state during bisection."""

    def __init__(self, graph: CommGraph, bins: Sequence[int]) -> None:
        self.graph = graph
        self.bins = list(bins)
        self.members: set[int] = set()
        self._weights: list[int] = []

    @property
    def load(self) -> int:
        return sum(self._weights)

    def can_take(self, v: int) -> bool:
        w = self.graph.vertex_weights[v]
        return packable(self._weights + [w], self.bins)

    def add(self, v: int) -> None:
        self.members.add(v)
        self._weights.append(self.graph.vertex_weights[v])

    def remove(self, v: int) -> None:
        self.members.discard(v)
        self._weights.remove(self.graph.vertex_weights[v])


def _bfs_order(graph: CommGraph, vertices: list[int]) -> list[int]:
    """Heaviest-edge-first BFS over the induced subgraph: keeps tightly
    connected vertices adjacent in the fill order."""
    inset = set(vertices)
    visited: set[int] = set()
    order: list[int] = []
    remaining = sorted(
        vertices,
        key=lambda v: (
            -sum(w for u, w in graph.neighbors(v).items() if u in inset),
            v,
        ),
    )
    for seed in remaining:
        if seed in visited:
            continue
        frontier = [seed]
        visited.add(seed)
        while frontier:
            v = frontier.pop(0)
            order.append(v)
            nbrs = sorted(
                (u for u in graph.neighbors(v) if u in inset and u not in visited),
                key=lambda u: (-graph.edge(v, u), u),
            )
            for u in nbrs:
                visited.add(u)
                frontier.append(u)
    return order


def _heavy_edge_matching(
    graph: CommGraph, verts: list[int], max_cluster: int
) -> list[list[int]]:
    """Greedy heavy-edge matching (the METIS/Scotch coarsening step).

    Pairs each vertex with its heaviest unmatched neighbour; returns
    clusters of one or two fine vertices.  Merging a rank with its
    heaviest partner (e.g. an analytics process with the simulation rank
    feeding it) is what lets bisection keep such pairs on one node.
    """
    inset = set(verts)
    matched: set[int] = set()
    clusters: list[list[int]] = []
    edges = sorted(
        (
            (w, u, v)
            for u in verts
            for v, w in graph.neighbors(u).items()
            if u < v and v in inset
        ),
        key=lambda t: (-t[0], t[1], t[2]),
    )
    for w, u, v in edges:
        if u in matched or v in matched:
            continue
        if graph.vertex_weights[u] + graph.vertex_weights[v] > max_cluster:
            continue
        matched.add(u)
        matched.add(v)
        clusters.append([u, v])
    for u in verts:
        if u not in matched:
            clusters.append([u])
    return clusters


def _coarsen(
    graph: CommGraph, verts: list[int], max_cluster: int
) -> tuple[CommGraph, list[list[int]]]:
    """Build the coarse graph over heavy-edge clusters."""
    clusters = _heavy_edge_matching(graph, verts, max_cluster)
    coarse = CommGraph(len(clusters))
    owner: dict[int, int] = {}
    for ci, cluster in enumerate(clusters):
        owner.update({v: ci for v in cluster})
        coarse.set_vertex_weight(
            ci, sum(graph.vertex_weights[v] for v in cluster)
        )
    for u in verts:
        for v, w in graph.neighbors(u).items():
            if u < v and v in owner:
                cu, cv = owner[u], owner[v]
                if cu != cv:
                    coarse.add_edge(cu, cv, w)
    return coarse, clusters


def _gain(graph: CommGraph, v: int, me: set[int], other: set[int]) -> float:
    """KL gain of moving ``v`` to the other side: external − internal."""
    ext = inn = 0.0
    for u, w in graph.neighbors(v).items():
        if u in other:
            ext += w
        elif u in me:
            inn += w
    return ext - inn


def bisect_graph(
    graph: CommGraph,
    vertices: Optional[Sequence[int]] = None,
    bins_a: Optional[Sequence[int]] = None,
    bins_b: Optional[Sequence[int]] = None,
    refinement_passes: int = 6,
    _depth: int = 0,
) -> tuple[list[int], list[int]]:
    """Split ``vertices`` into two packable parts minimizing the cut.

    Multilevel: above a size threshold the graph is coarsened by
    heavy-edge matching, the coarse graph is bisected recursively, and the
    projection is refined at the fine level.  Defaults: two bins of half
    the total weight each.
    """
    verts = list(vertices) if vertices is not None else list(range(graph.n))
    if not verts:
        return [], []
    total_w = sum(graph.vertex_weights[v] for v in verts)
    if bins_a is None or bins_b is None:
        half = (total_w + 1) // 2
        bins_a = [half]
        bins_b = [total_w - half]
    part_a = _Part(graph, bins_a)
    part_b = _Part(graph, bins_b)

    seeded = False
    if len(verts) > 8 and _depth < 16:
        # A coarse cluster is an atom: it must still fit inside one bin.
        max_cluster = min(max(bins_a), max(bins_b))
        coarse, clusters = _coarsen(graph, verts, max_cluster)
        if coarse.n < len(verts):
            try:
                ca, cb = bisect_graph(
                    coarse, None, bins_a, bins_b, refinement_passes, _depth + 1
                )
            except ValueError:
                # Coarse atoms can be unpackable (e.g. weight-2 clusters vs
                # odd bins) even when fine vertices pack; fill fine-level.
                pass
            else:
                seed_a = [v for ci in ca for v in clusters[ci]]
                seed_b = [v for ci in cb for v in clusters[ci]]
                for v in seed_a:
                    part_a.add(v)
                for v in seed_b:
                    part_b.add(v)
                seeded = True

    if not seeded:
        # Initial fill: BFS order packs connected runs into A, rest into B.
        order = _bfs_order(graph, verts)
        overflow: list[int] = []
        for v in order:
            if part_a.can_take(v):
                part_a.add(v)
            elif part_b.can_take(v):
                part_b.add(v)
            else:
                overflow.append(v)
        for v in overflow:
            # Try again after others settled (rare); either side will do.
            if part_a.can_take(v):
                part_a.add(v)
            elif part_b.can_take(v):
                part_b.add(v)
            else:
                # Greedy fill wedged itself; restart with first-fit
                # decreasing, which is packing-safe (quality recovered by
                # the refinement passes below).
                part_a = _Part(graph, bins_a)
                part_b = _Part(graph, bins_b)
                for u in sorted(verts, key=lambda x: -graph.vertex_weights[x]):
                    if part_a.load <= part_b.load and part_a.can_take(u):
                        part_a.add(u)
                    elif part_b.can_take(u):
                        part_b.add(u)
                    elif part_a.can_take(u):
                        part_a.add(u)
                    else:
                        raise ValueError(
                            f"vertex {u} (weight {graph.vertex_weights[u]}) "
                            f"fits neither {bins_a} nor {bins_b}"
                        )
                break

    # KL/FM refinement: single-vertex moves and pair swaps that cut weight.
    for _ in range(refinement_passes):
        improved = False
        for v in sorted(part_a.members | part_b.members):
            in_a = v in part_a.members
            me, other = (part_a, part_b) if in_a else (part_b, part_a)
            g = _gain(graph, v, me.members, other.members)
            if g <= 0:
                continue
            if other.can_take(v):
                me.remove(v)
                other.add(v)
                improved = True
                continue
            # Pair swap: find a counterpart whose reverse move keeps both
            # sides packable and the combined gain positive.
            best_u, best_total = None, 0.0
            for u in other.members:
                gu = _gain(graph, u, other.members, me.members)
                total = g + gu - 2 * graph.edge(u, v)
                if total > best_total:
                    me.remove(v)
                    other.remove(u)
                    if other.can_take(v) and me.can_take(u):
                        best_u, best_total = u, total
                    me.add(v)
                    other.add(u)
            if best_u is not None:
                me.remove(v)
                other.remove(best_u)
                other.add(v)
                me.add(best_u)
                improved = True
        if not improved:
            break

    return sorted(part_a.members), sorted(part_b.members)


def partition_graph(
    graph: CommGraph,
    capacities: Sequence[Sequence[int] | int],
    vertices: Optional[Sequence[int]] = None,
) -> list[list[int]]:
    """k-way partition by recursive bisection.

    ``capacities[i]`` is part i's bin list (an int means one bin of that
    size).  Returns one vertex list per part, in capacity order.
    """
    verts = list(vertices) if vertices is not None else list(range(graph.n))
    caps: list[list[int]] = [
        [c] if isinstance(c, int) else list(c) for c in capacities
    ]
    if not caps:
        raise ValueError("need at least one part")
    weights = [graph.vertex_weights[v] for v in verts]
    if len(caps) == 1:
        if not packable(weights, caps[0]):
            raise ValueError(
                f"vertices (weights {sorted(weights, reverse=True)[:8]}...) "
                f"do not pack into bins {caps[0]}"
            )
        return [sorted(verts)]
    half = len(caps) // 2
    caps_a, caps_b = caps[:half], caps[half:]
    flat_a = [b for cap in caps_a for b in cap]
    flat_b = [b for cap in caps_b for b in cap]
    part_a, part_b = bisect_graph(graph, verts, bins_a=flat_a, bins_b=flat_b)
    return partition_graph(graph, caps_a, part_a) + partition_graph(
        graph, caps_b, part_b
    )


def cut_weight(graph: CommGraph, parts: Sequence[Sequence[int]]) -> float:
    """Total edge weight crossing between different parts."""
    owner: dict[int, int] = {}
    for i, part in enumerate(parts):
        for v in part:
            owner[v] = i
    cut = 0.0
    for u, v, w in graph.edges():
        if owner.get(u) != owner.get(v):
            cut += w
    return cut
