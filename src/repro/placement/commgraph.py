"""Weighted communication graphs over coupled-program processes.

Vertices are processes (simulation ranks followed by analytics ranks);
vertex weights are the cores each occupies (OpenMP threads); edge weights
are bytes exchanged per I/O interval.  Data-aware mapping sees only the
inter-program edges; holistic placement adds the programs' *internal* MPI
traffic (halo exchanges, collectives), which is what flips the best
placement from helper-core (GTS: inter-program dominant) to staging
(S3D: intra-program dominant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np


class CommGraph:
    """An undirected weighted graph with integer vertex weights (slots)."""

    def __init__(self, num_vertices: int, labels: Optional[Sequence[str]] = None) -> None:
        if num_vertices <= 0:
            raise ValueError("graph needs at least one vertex")
        self.n = int(num_vertices)
        self.vertex_weights = [1] * self.n
        self.labels = list(labels) if labels is not None else [str(i) for i in range(self.n)]
        if len(self.labels) != self.n:
            raise ValueError("one label per vertex required")
        self._adj: list[dict[int, float]] = [dict() for _ in range(self.n)]
        self.total_edge_weight = 0.0

    # ------------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise IndexError(f"vertex {v} out of range [0, {self.n})")

    def set_vertex_weight(self, v: int, weight: int) -> None:
        self._check(v)
        if weight < 1:
            raise ValueError("vertex weight must be >= 1")
        self.vertex_weights[v] = int(weight)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Accumulate ``weight`` bytes on edge (u, v); self-loops ignored."""
        self._check(u)
        self._check(v)
        if weight < 0:
            raise ValueError("edge weight must be >= 0")
        if u == v or weight == 0:
            return
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        self._adj[v][u] = self._adj[v].get(u, 0.0) + weight
        self.total_edge_weight += weight

    def edge(self, u: int, v: int) -> float:
        self._check(u)
        self._check(v)
        return self._adj[u].get(v, 0.0)

    def neighbors(self, v: int) -> dict[int, float]:
        self._check(v)
        return self._adj[v]

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def degree_weight(self, v: int) -> float:
        return sum(self._adj[v].values())

    def total_vertex_weight(self) -> int:
        return sum(self.vertex_weights)

    def subgraph_cut(self, part_a: Iterable[int]) -> float:
        """Total weight of edges crossing between ``part_a`` and the rest."""
        a = set(part_a)
        cut = 0.0
        for u in a:
            for v, w in self._adj[u].items():
                if v not in a:
                    cut += w
        return cut

    # ------------------------------------------------------------------
    @classmethod
    def coupled(
        cls,
        num_sim: int,
        num_ana: int,
        sim_threads: int = 1,
        ana_threads: int = 1,
    ) -> "CommGraph":
        """A graph with sim ranks [0, num_sim) and analytics ranks after."""
        if num_sim <= 0 or num_ana < 0:
            raise ValueError("need at least one simulation rank")
        labels = [f"sim:{i}" for i in range(num_sim)] + [
            f"ana:{j}" for j in range(num_ana)
        ]
        g = cls(num_sim + num_ana, labels)
        for i in range(num_sim):
            g.set_vertex_weight(i, sim_threads)
        for j in range(num_ana):
            g.set_vertex_weight(num_sim + j, ana_threads)
        return g

    def sim_vertices(self) -> list[int]:
        return [i for i, lb in enumerate(self.labels) if lb.startswith("sim:")]

    def ana_vertices(self) -> list[int]:
        return [i for i, lb in enumerate(self.labels) if lb.startswith("ana:")]

    def add_interprogram_matrix(self, matrix: np.ndarray) -> None:
        """Edges from an (num_sim × num_ana) byte-volume matrix."""
        sims, anas = self.sim_vertices(), self.ana_vertices()
        if matrix.shape != (len(sims), len(anas)):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({len(sims)}, {len(anas)})"
            )
        for i, u in enumerate(sims):
            for j, v in enumerate(anas):
                if matrix[i, j]:
                    self.add_edge(u, v, float(matrix[i, j]))

    def interprogram_bytes(self) -> float:
        anas = set(self.ana_vertices())
        total = 0.0
        for u, v, w in self.edges():
            if (u in anas) != (v in anas):
                total += w
        return total

    def intraprogram_bytes(self) -> float:
        return self.total_edge_weight - self.interprogram_bytes()


# ---------------------------------------------------------------------------
# Intra-program communication patterns
# ---------------------------------------------------------------------------

def grid_edges(dims: Sequence[int], halo_bytes: float) -> Iterator[tuple[int, int, float]]:
    """Nearest-neighbour halo exchange on a Cartesian process grid.

    ``dims`` is the process-grid shape; ranks are row-major.  Yields one
    edge per adjacent pair with ``halo_bytes`` per interval.  GTS uses a 2D
    grid, S3D a 3D one.
    """
    if any(d <= 0 for d in dims):
        raise ValueError(f"grid dims must be positive, got {dims}")
    if halo_bytes < 0:
        raise ValueError("halo_bytes must be >= 0")
    strides = []
    acc = 1
    for d in reversed(dims):
        strides.append(acc)
        acc *= d
    strides.reverse()
    total = acc

    def rank_of(coords):
        return sum(c * s for c, s in zip(coords, strides))

    def coords_of(rank):
        out = []
        for s in strides:
            out.append(rank // s)
            rank %= s
        return out

    for r in range(total):
        coords = coords_of(r)
        for axis in range(len(dims)):
            if coords[axis] + 1 < dims[axis]:
                nb = list(coords)
                nb[axis] += 1
                yield (r, rank_of(nb), halo_bytes)


def ring_edges(n: int, bytes_per_link: float, offset: int = 0) -> Iterator[tuple[int, int, float]]:
    """A ring (e.g. an allreduce's steady-state traffic) over ``n`` ranks."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return
    if n == 2:
        yield (offset, offset + 1, bytes_per_link)
        return
    for i in range(n):
        yield (offset + i, offset + (i + 1) % n, bytes_per_link)
