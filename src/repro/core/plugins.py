"""Data Conditioning (DC) plug-ins (paper Section II.F).

DC plug-ins are *stateless mobile codelets* created on the reader side to
customize writer-side outputs on the fly: data markup, annotation,
sampling, bounding box, unit conversion, selection.  In FlexIO they are
C-on-demand (CoD) source strings compiled by dynamic binary code
generation and installed into either the simulation's or the analytics'
address space — and migrated between the two at runtime.

Here the codelet language is a *restricted Python subset*, validated by an
AST whitelist before compilation (the analogue of CoD's restricted-C
subset): no imports, no attribute access on dunders, no I/O, no access to
anything beyond the record passed in and a numeric toolbox (`np`, `len`,
`min`, ...).  The codelet must define::

    def condition(vars):
        ...
        return vars

where ``vars`` maps variable names to numpy arrays.

Shipped plug-ins additionally carry a **compilable form** — a
:class:`PluginKernel` describing the codelet's per-block effect on a
single variable.  A chain of kernels lowers to a
:class:`CompiledChain`, which the redistribution layer fuses into the
compiled plan (:class:`repro.core.redistribution.FusedPlan`): the chain
runs *while* wire spans scatter, instead of as a second interpreted pass
over a fully materialized array.  Value-level filters also expose a
:class:`BlockPredicate` (the ``might_match`` index-pruning idiom of
:mod:`repro.adios.query`) that the writer side uses to skip sending
blocks the chain provably drops.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.hints import STAGE_DC_PLUGIN
from repro.core.monitoring import PerfMonitor
from repro.obs.names import (
    F_PLUGIN,
    M_PLUGIN_FUSED_READS,
    M_PLUGIN_INTERPRETED_READS,
    metric_name,
)

# Optional accelerator: kernels JIT-compile when the ``numba`` extra is
# installed; the baseline environment falls back to pure numpy silently.
try:
    from numba import njit as _njit  # type: ignore
except Exception:  # pragma: no cover - numba absent in the baseline env
    _njit = None


def _jit(fn: Callable) -> Callable:
    """numba-compile ``fn`` when importable; silent numpy fallback."""
    if _njit is None:
        return fn
    try:  # pragma: no cover - exercised only with the numba extra
        return _njit(cache=False)(fn)
    # flexlint: ok(FXL001) numba failure must never break the numpy path
    except Exception:
        return fn


def _range_mask(col: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return (col >= lo) & (col <= hi)


_range_mask_jit = _jit(_range_mask)


class CodeletError(RuntimeError):
    """Codelet failed validation, compilation, or execution."""


class PluginSide(Enum):
    """Which address space the codelet executes in."""

    WRITER = "writer"
    READER = "reader"


class Capability(Enum):
    """Declared effect class of a kernel — what fusion may assume."""

    #: Drops rows of the targeted variables (sampling, range selection).
    FILTER = "filter"
    #: Elementwise, shape-preserving map (unit conversion).
    TRANSFORM = "transform"
    #: Adds *other* variables; the targeted variable passes unchanged.
    ANNOTATE = "annotate"


_ALLOWED_NODES = {
    ast.Module, ast.FunctionDef, ast.arguments, ast.arg, ast.Return,
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Pass,
    ast.Name, ast.Load, ast.Store, ast.Del, ast.Delete,
    ast.Subscript, ast.Slice, ast.Index if hasattr(ast, "Index") else ast.Slice,
    ast.Tuple, ast.List, ast.Dict, ast.Set, ast.Constant,
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.MatMult, ast.LShift, ast.RShift, ast.BitOr, ast.BitAnd, ast.BitXor,
    ast.USub, ast.UAdd, ast.Invert, ast.Not, ast.And, ast.Or,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Is, ast.IsNot,
    ast.In, ast.NotIn,
    ast.If, ast.For, ast.While, ast.Break, ast.Continue,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.comprehension, ast.Call, ast.keyword, ast.Attribute, ast.Starred,
    ast.JoinedStr, ast.FormattedValue,
}

#: Names the codelet namespace provides (nothing else resolves).
_SAFE_GLOBALS: dict = {
    "np": np,
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "sum": sum,
    "range": range,
    "enumerate": enumerate,
    "zip": zip,
    "float": float,
    "int": int,
    "bool": bool,
    "round": round,
    "sorted": sorted,
    "dict": dict,
    "list": list,
    "tuple": tuple,
}


def _validate(tree: ast.AST, source: str) -> None:
    for node in ast.walk(tree):
        if type(node) not in _ALLOWED_NODES:
            raise CodeletError(
                f"codelet uses forbidden construct {type(node).__name__}"
            )
        if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
            raise CodeletError(f"codelet accesses private attribute {node.attr!r}")
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            raise CodeletError(f"codelet references dunder name {node.id!r}")
    # Exactly one top-level function named `condition`.
    assert isinstance(tree, ast.Module)
    funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(funcs) != 1 or funcs[0].name != "condition":
        raise CodeletError("codelet must define exactly one function: condition(vars)")
    if len(funcs[0].args.args) != 1:
        raise CodeletError("condition() must take exactly one argument")
    extra = [n for n in tree.body if not isinstance(n, ast.FunctionDef)]
    if extra:
        raise CodeletError("codelet body must contain only the condition() function")


def _metric_label(name: str) -> str:
    """Plug-in names (``sample/4:zion``) flattened to metric-safe parts."""
    return re.sub(r"[^A-Za-z0-9_]+", "_", name).strip("_")


@dataclass
class PluginStats:
    """One plug-in's lifetime cost counters.

    The same numbers are mirrored into the stream monitor's metrics
    registry under the ``plugin.*`` family (``plugin.invocations.<name>``
    etc. via :func:`repro.obs.names.metric_name`), which is what
    ``trace``/``monitor`` report; this object remains the in-process
    view used by the adaptive layer's :attr:`DCPlugin.reduction_ratio`.
    """

    invocations: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    exec_time: float = 0.0


# ---------------------------------------------------------------------------
# Compilable kernels and chains
# ---------------------------------------------------------------------------


class PluginKernel:
    """The compilable per-block form of one shipped plug-in.

    A kernel expresses the codelet's effect on a *single block* of a
    single variable — which is what lets the compiled plan run the chain
    while scattering wire spans:

    * ``FILTER`` kernels drop rows, either index-level (``stride``: keep
      every s-th row of the stream flowing into the kernel) or
      value-level (``mask_fn``: boolean row mask);
    * ``TRANSFORM`` kernels map rows elementwise (``fn(arr, out=None)``);
    * ``ANNOTATE`` kernels add *other* variables and are an identity on
      the fused path (``fuse_safe=False`` opts a kernel out of fusion —
      e.g. ``bbox``, whose reduction over an empty selection raises).

    ``might_match(lo, hi)`` answers whether a block whose values lie
    entirely in ``[lo, hi]`` could contribute any row after the filter
    (the :mod:`repro.adios.query` index-pruning idiom, conservatively
    using whole-block bounds); ``map_bounds`` lets transforms ahead of
    the filter keep that predicate sound.  ``pushdown_term`` is the
    kernel's serializable predicate contribution carried to the writer
    side and the net broker.
    """

    __slots__ = (
        "capability", "targets", "requires_target", "fuse_safe",
        "stride", "mask_fn", "might_match", "fn", "map_bounds",
        "fingerprint", "pushdown_term",
    )

    def __init__(
        self,
        capability: Capability,
        *,
        fingerprint: str,
        targets: Sequence[str] = (),
        requires_target: bool = False,
        fuse_safe: bool = True,
        stride: Optional[int] = None,
        mask_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        might_match: Optional[Callable[[float, float], bool]] = None,
        fn: Optional[Callable] = None,
        map_bounds: Optional[Callable[[float, float], tuple]] = None,
        pushdown_term: Optional[dict] = None,
    ) -> None:
        if capability is Capability.FILTER and stride is None and mask_fn is None:
            raise CodeletError("FILTER kernel needs a stride or a mask_fn")
        if capability is Capability.TRANSFORM and fn is None:
            raise CodeletError("TRANSFORM kernel needs fn")
        self.capability = capability
        self.targets = tuple(targets)
        self.requires_target = requires_target
        self.fuse_safe = fuse_safe
        self.stride = int(stride) if stride is not None else None
        self.mask_fn = mask_fn
        self.might_match = might_match
        self.fn = fn
        self.map_bounds = map_bounds
        self.fingerprint = fingerprint
        self.pushdown_term = pushdown_term

    def applies_to(self, name: str) -> bool:
        return not self.targets or name in self.targets


class BlockPredicate:
    """Conservatively-sound, serializable block predicate of a chain.

    Built from the chain's value-level terms in deployment order:
    ``scale`` terms map the block's value bounds through the transform,
    ``range`` terms prune.  :meth:`might_match` returns ``False`` only
    when a block with the given whole-block bounds **provably**
    contributes no row for ``var`` — the pushdown contract.
    """

    _KINDS = ("range", "scale")

    def __init__(self, terms: Sequence[dict]) -> None:
        self.terms = [dict(t) for t in terms]

    def might_match(self, var: str, lo: float, hi: float) -> bool:
        blo, bhi = float(lo), float(hi)
        for t in self.terms:
            if t["var"] != var:
                continue
            if t["kind"] == "scale":
                a, b = blo * t["factor"], bhi * t["factor"]
                blo, bhi = (a, b) if a <= b else (b, a)
            elif bhi < t["lo"] or blo > t["hi"]:
                return False
        return True

    def spec(self) -> str:
        return json.dumps(self.terms, sort_keys=True)

    @classmethod
    def parse(cls, text: str) -> "BlockPredicate":
        try:
            terms = json.loads(text)
        except ValueError as exc:
            raise CodeletError(f"bad predicate spec: {exc}") from exc
        if not isinstance(terms, list):
            raise CodeletError("predicate spec must be a JSON list")
        clean = []
        for t in terms:
            if not isinstance(t, dict) or t.get("kind") not in cls._KINDS:
                raise CodeletError(f"bad predicate term: {t!r}")
            if not isinstance(t.get("var"), str):
                raise CodeletError(f"predicate term needs a var: {t!r}")
            keys = ("factor",) if t["kind"] == "scale" else ("lo", "hi")
            term = {"kind": t["kind"], "var": t["var"]}
            for k in keys:
                term[k] = float(t[k])
            clean.append(term)
        return cls(clean)


def parse_predicate(text: str) -> Optional[BlockPredicate]:
    """Parse a serialized predicate spec; empty text means no predicate."""
    if not text or not text.strip():
        return None
    return BlockPredicate.parse(text)


def combine_predicates(preds: Sequence[BlockPredicate]):
    """A block is needed if *any* registered reader might match it."""
    preds = [p for p in preds if p is not None]
    if not preds:
        return None

    class _Any:
        def might_match(self, var: str, lo: float, hi: float) -> bool:
            return any(p.might_match(var, lo, hi) for p in preds)

    return _Any()


class _ChainCursor:
    """Sequential per-block applier for one variable's fused read.

    Carries, per kernel, the number of rows that already flowed into it
    from earlier blocks, so index-level filters (sampling) keep their
    global phase across the block sequence.  Blocks must arrive in
    ascending row order — the fused plan guarantees it.
    """

    __slots__ = ("chain", "name", "_entered", "_in_bytes", "_out_bytes",
                 "_elapsed")

    def __init__(self, chain: "CompiledChain", name: str) -> None:
        self.chain = chain
        self.name = name
        n = len(chain.pairs)
        self._entered = [0] * n
        self._in_bytes = [0] * n
        self._out_bytes = [0] * n
        self._elapsed = [0.0] * n

    def apply_block(self, arr: np.ndarray) -> np.ndarray:
        for i, (_, k) in enumerate(self.chain.pairs):
            if k.capability is Capability.ANNOTATE or not k.applies_to(self.name):
                continue
            t0 = time.perf_counter()
            nbytes_in = arr.nbytes
            if k.capability is Capability.FILTER:
                if k.stride is not None:
                    phase = (-self._entered[i]) % k.stride
                    self._entered[i] += int(arr.shape[0])
                    arr = arr[phase::k.stride]
                else:
                    arr = arr[k.mask_fn(arr)]
            else:  # TRANSFORM
                arr = k.fn(arr)
            self._elapsed[i] += time.perf_counter() - t0
            self._in_bytes[i] += nbytes_in
            self._out_bytes[i] += arr.nbytes
        return arr

    def apply_block_into(self, arr: np.ndarray, dst: np.ndarray) -> None:
        """Shape-preserving variant: transforms land in ``dst`` directly
        (first with ``out=``, the rest in place) — the ``execute_into``
        half of the fused plan.  Only legal for filter-free chains."""
        wrote = False
        for i, (_, k) in enumerate(self.chain.pairs):
            if k.capability is not Capability.TRANSFORM or not k.applies_to(self.name):
                continue
            t0 = time.perf_counter()
            if wrote:
                k.fn(dst, out=dst)
            else:
                k.fn(arr, out=dst)
                wrote = True
            self._elapsed[i] += time.perf_counter() - t0
            self._in_bytes[i] += arr.nbytes
            self._out_bytes[i] += dst.nbytes
        if not wrote:
            dst[...] = arr

    def finish(self, monitor: Optional[PerfMonitor] = None) -> None:
        """Account one fused read: per-kernel stats + monitor records."""
        for i, (plugin, _) in enumerate(self.chain.pairs):
            plugin._account(
                monitor,
                nbytes_in=self._in_bytes[i],
                nbytes_out=self._out_bytes[i],
                elapsed=self._elapsed[i],
                fused=True,
            )


class CompiledChain:
    """One side's plug-in chain lowered to kernels, in deployment order.

    Exists only when *every* plug-in on the side carries a kernel —
    free-form codelets keep the interpreted path.  ``chain_hash`` is a
    stable digest of the kernel fingerprints; the plan cache appends it
    to its keys so plans fused against different chains never collide.
    """

    __slots__ = ("pairs", "chain_hash")

    def __init__(self, pairs: Sequence[tuple]) -> None:
        self.pairs = list(pairs)
        digest = hashlib.sha1(
            "|".join(k.fingerprint for _, k in self.pairs).encode("utf-8")
        ).hexdigest()
        self.chain_hash = digest[:16]

    def supports(self, name: str) -> bool:
        """Can the chain run fused for reads of variable ``name``?

        A kernel that *requires* its target (range select, unit
        conversion) would raise on the interpreted path when reading any
        other variable, so fusion refuses too; ``fuse_safe=False``
        kernels (bbox) always keep the interpreted path.
        """
        for _, k in self.pairs:
            if not k.fuse_safe:
                return False
            if k.requires_target and name not in k.targets:
                return False
        return True

    def has_filter(self, name: str) -> bool:
        return any(
            k.capability is Capability.FILTER and k.applies_to(name)
            for _, k in self.pairs
        )

    def cursor(self, name: str) -> _ChainCursor:
        return _ChainCursor(self, name)

    def transforms(self, name: str) -> list:
        return [
            (p, k) for p, k in self.pairs
            if k.capability is Capability.TRANSFORM and k.applies_to(name)
        ]

    def block_predicate(self) -> Optional[BlockPredicate]:
        """The chain's writer-side pushdown predicate, if it has one.

        Terms accumulate in deployment order; a transform without a
        bounds map ends accumulation (later filters would be unsound),
        and so does a stride filter: sampling keeps cross-block row
        phase, so a block pruned for a *later* range term would still
        have advanced the sampler's cursor — dropping it before the
        reader ever sees it changes which rows later blocks contribute.
        A stateless per-row mask filter without a term is skipped
        (pruning rows other terms prove dead cannot change its output).
        A chain with no value-level filter has no predicate.
        """
        terms: list[dict] = []
        for _, k in self.pairs:
            if k.capability is Capability.TRANSFORM:
                if k.pushdown_term is None:
                    break
                terms.append(k.pushdown_term)
            elif k.capability is Capability.FILTER:
                if k.stride is not None:
                    break
                if k.pushdown_term is not None:
                    terms.append(k.pushdown_term)
        if not any(t["kind"] == "range" for t in terms):
            return None
        return BlockPredicate(terms)


class DCPlugin:
    """One compiled codelet, deployable on either side of a stream."""

    def __init__(
        self,
        name: str,
        source: str,
        kernel: Optional[PluginKernel] = None,
    ) -> None:
        if not name:
            raise CodeletError("plug-in needs a name")
        self.name = name
        self.source = source
        self.side = PluginSide.READER  # created reader-side by default
        self.stats = PluginStats()
        self.kernel = kernel
        self._metric_label = _metric_label(name)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise CodeletError(f"codelet syntax error: {exc}") from exc
        _validate(tree, source)
        namespace: dict = {"__builtins__": {}}
        namespace.update(_SAFE_GLOBALS)
        try:
            exec(compile(tree, f"<dcplugin:{name}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - validation catches most
            raise CodeletError(f"codelet failed to compile: {exc}") from exc
        self._func: Callable[[dict], dict] = namespace["condition"]

    @property
    def capability(self) -> Optional[Capability]:
        return self.kernel.capability if self.kernel is not None else None

    @staticmethod
    def _record_bytes(record: dict) -> int:
        total = 0
        for v in record.values():
            if isinstance(v, np.ndarray):
                total += v.nbytes
        return total

    def _account(
        self,
        monitor: Optional[PerfMonitor],
        *,
        nbytes_in: int,
        nbytes_out: int,
        elapsed: float,
        fused: bool,
    ) -> None:
        """Fold one execution into the stats and the metrics registry."""
        self.stats.invocations += 1
        self.stats.bytes_in += nbytes_in
        self.stats.bytes_out += nbytes_out
        self.stats.exec_time += elapsed
        if monitor is None:
            return
        mm = monitor.metrics
        label = self._metric_label
        mm.counter(metric_name(F_PLUGIN, "invocations", label)).inc()
        mm.counter(metric_name(F_PLUGIN, "bytes_in", label)).inc(nbytes_in)
        mm.counter(metric_name(F_PLUGIN, "bytes_out", label)).inc(nbytes_out)
        mm.counter(metric_name(F_PLUGIN, "exec_ns", label)).inc(
            int(elapsed * 1e9)
        )
        if fused:
            monitor.record(
                STAGE_DC_PLUGIN, self.name, start=0.0, duration=elapsed,
                nbytes=nbytes_in, side=self.side.value, fused=True,
            )

    def apply(self, record: dict, monitor: Optional[PerfMonitor] = None) -> dict:
        """Run the codelet on one record (dict of variable name → array).

        With tracing enabled the execution becomes a span (nesting under
        the active write/read span of the timestep); otherwise it is the
        classic flat measurement point.
        """
        nbytes_in = self._record_bytes(record)
        if monitor:
            if monitor.tracing_enabled:
                cm = monitor.span("dc_plugin", self.name, nbytes=nbytes_in, side=self.side.value)
            else:
                cm = monitor.measure("dc_plugin", self.name, nbytes=nbytes_in, side=self.side.value)
            cm.__enter__()
        t0 = time.perf_counter()
        try:
            out = self._func(dict(record))
        except Exception as exc:
            raise CodeletError(f"codelet {self.name!r} raised: {exc!r}") from exc
        finally:
            elapsed = time.perf_counter() - t0
            if monitor:
                cm.__exit__(None, None, None)
        if not isinstance(out, dict):
            raise CodeletError(
                f"codelet {self.name!r} returned {type(out).__name__}, expected dict"
            )
        self._account(
            monitor,
            nbytes_in=nbytes_in,
            nbytes_out=self._record_bytes(out),
            elapsed=elapsed,
            fused=False,
        )
        return out

    @property
    def reduction_ratio(self) -> float:
        """Output bytes / input bytes over the plug-in's lifetime."""
        if self.stats.bytes_in == 0:
            return 1.0
        return self.stats.bytes_out / self.stats.bytes_in


class PluginManager:
    """The per-stream plug-in chain with runtime deployment and migration.

    Deployment of a reader-created plug-in to the writer side travels "a
    communication channel separate from the ones used for data movement"
    (Section II.F) — modelled by the deploy/migrate calls happening outside
    the stream's step flow.
    """

    def __init__(self, monitor: Optional[PerfMonitor] = None) -> None:
        self.monitor = monitor
        self._chain: list[DCPlugin] = []
        self._version = 0
        self._compiled: dict[PluginSide, tuple[int, Optional[CompiledChain]]] = {}

    # ------------------------------------------------------------------
    def deploy(self, plugin: DCPlugin, side: PluginSide = PluginSide.READER) -> DCPlugin:
        if any(p.name == plugin.name for p in self._chain):
            raise CodeletError(f"plug-in {plugin.name!r} already deployed")
        plugin.side = side
        self._chain.append(plugin)
        self._version += 1
        return plugin

    def undeploy(self, name: str) -> DCPlugin:
        for i, p in enumerate(self._chain):
            if p.name == name:
                self._version += 1
                return self._chain.pop(i)
        raise CodeletError(f"no plug-in {name!r} deployed")

    def migrate(self, name: str, to_side: PluginSide) -> DCPlugin:
        """Move a codelet across address spaces at runtime."""
        for p in self._chain:
            if p.name == name:
                p.side = to_side
                self._version += 1
                return p
        raise CodeletError(f"no plug-in {name!r} deployed")

    def plugins(self, side: Optional[PluginSide] = None) -> list[DCPlugin]:
        if side is None:
            return list(self._chain)
        return [p for p in self._chain if p.side == side]

    def has_side(self, side: PluginSide) -> bool:
        """True when at least one plug-in is installed on ``side`` —
        the no-plugin fast path check (skips the dict round-trip)."""
        return any(p.side == side for p in self._chain)

    # -- compiled form --------------------------------------------------
    def compiled_chain(self, side: PluginSide) -> Optional[CompiledChain]:
        """The side's chain lowered to kernels, or ``None`` when empty or
        when any plug-in on the side is a free-form codelet (no kernel).
        Memoized per deploy/undeploy/migrate generation."""
        cached = self._compiled.get(side)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        pairs = [(p, p.kernel) for p in self._chain if p.side == side]
        chain: Optional[CompiledChain] = None
        if pairs and all(k is not None for _, k in pairs):
            chain = CompiledChain(pairs)
        self._compiled[side] = (self._version, chain)
        return chain

    def chain_hash(self, side: PluginSide) -> str:
        chain = self.compiled_chain(side)
        return chain.chain_hash if chain is not None else ""

    def block_predicate(self, side: PluginSide) -> Optional[BlockPredicate]:
        chain = self.compiled_chain(side)
        return chain.block_predicate() if chain is not None else None

    # ------------------------------------------------------------------
    def apply_side(self, side: PluginSide, record: dict) -> dict:
        """Run every codelet installed on ``side``, in deployment order."""
        out = record
        for p in self._chain:
            if p.side == side:
                out = p.apply(out, self.monitor)
        return out

    def count_fused_read(self) -> None:
        if self.monitor is not None:
            self.monitor.metrics.counter(M_PLUGIN_FUSED_READS).inc()

    def count_interpreted_read(self) -> None:
        if self.monitor is not None:
            self.monitor.metrics.counter(M_PLUGIN_INTERPRETED_READS).inc()


# ---------------------------------------------------------------------------
# A library of useful codelets (paper's examples)
# ---------------------------------------------------------------------------

SAMPLING_SRC = """
def condition(vars):
    out = dict(vars)
    only = {only}
    for name in list(out):
        if only and name not in only:
            continue
        v = out[name]
        out[name] = v[::{stride}]
    return out
"""

RANGE_SELECT_SRC = """
def condition(vars):
    v = vars['{var}']
    mask = (v[:, {column}] >= {lo}) & (v[:, {column}] <= {hi})
    out = dict(vars)
    out['{var}'] = v[mask]
    return out
"""

BOUNDING_BOX_SRC = """
def condition(vars):
    out = dict(vars)
    for name in list(out):
        v = out[name]
        out[name + '_bbox_min'] = np.min(v, axis=0)
        out[name + '_bbox_max'] = np.max(v, axis=0)
    return out
"""

UNIT_CONVERSION_SRC = """
def condition(vars):
    out = dict(vars)
    out['{var}'] = vars['{var}'] * {factor}
    return out
"""

ANNOTATION_SRC = """
def condition(vars):
    out = dict(vars)
    out['{key}'] = np.array([{value}])
    return out
"""


def sampling_plugin(stride: int = 2, only: Optional[Sequence[str]] = None) -> DCPlugin:
    """Keep every ``stride``-th element of each variable.

    ``only`` restricts sampling to the named variables, leaving the rest
    untouched — e.g. sample particle arrays but preserve a field grid
    whose block distribution must stay intact for global-array reads.
    """
    names = tuple(only) if only else ()
    label = f"sample/{stride}" if not names else f"sample/{stride}:{','.join(names)}"
    stride = int(stride)
    kernel = PluginKernel(
        Capability.FILTER,
        fingerprint=f"sample:{stride}:{','.join(names)}",
        targets=names,
        stride=stride,
    )
    return DCPlugin(
        label, SAMPLING_SRC.format(stride=stride, only=repr(names)), kernel=kernel
    )


def range_select_plugin(var: str, column: int, lo: float, hi: float) -> DCPlugin:
    """Select rows of 2-D ``var`` whose ``column`` lies in [lo, hi]."""
    column, lo, hi = int(column), float(lo), float(hi)

    def _mask(arr: np.ndarray, _c=column, _lo=lo, _hi=hi) -> np.ndarray:
        return _range_mask_jit(arr[:, _c], _lo, _hi)

    kernel = PluginKernel(
        Capability.FILTER,
        fingerprint=f"range:{var}:{column}:{lo!r}:{hi!r}",
        targets=(var,),
        requires_target=True,
        mask_fn=_mask,
        might_match=lambda blo, bhi, _lo=lo, _hi=hi: not (bhi < _lo or blo > _hi),
        pushdown_term={"kind": "range", "var": var, "lo": lo, "hi": hi},
    )
    return DCPlugin(
        f"range/{var}[{column}]",
        RANGE_SELECT_SRC.format(var=var, column=column, lo=lo, hi=hi),
        kernel=kernel,
    )


def bounding_box_plugin() -> DCPlugin:
    """Attach per-variable bounding-box metadata."""
    kernel = PluginKernel(
        Capability.ANNOTATE,
        fingerprint="bbox",
        # np.min over an emptied selection raises, exactly as the codelet
        # does — bbox chains therefore keep the interpreted path.
        fuse_safe=False,
    )
    return DCPlugin("bbox", BOUNDING_BOX_SRC, kernel=kernel)


def unit_conversion_plugin(var: str, factor: float) -> DCPlugin:
    """Scale ``var`` by ``factor`` (e.g. unit conversion)."""
    factor = float(factor)

    def _scale(arr: np.ndarray, out: Optional[np.ndarray] = None, _f=factor):
        return np.multiply(arr, _f, out=out)

    def _bounds(blo: float, bhi: float, _f=factor) -> tuple:
        a, b = blo * _f, bhi * _f
        return (a, b) if a <= b else (b, a)

    kernel = PluginKernel(
        Capability.TRANSFORM,
        fingerprint=f"units:{var}:{factor!r}",
        targets=(var,),
        requires_target=True,
        fn=_scale,
        map_bounds=_bounds,
        pushdown_term={"kind": "scale", "var": var, "factor": factor},
    )
    return DCPlugin(
        f"units/{var}",
        UNIT_CONVERSION_SRC.format(var=var, factor=factor),
        kernel=kernel,
    )


def annotation_plugin(key: str, value: float) -> DCPlugin:
    """Add a scalar markup variable to every record."""
    value = float(value)
    kernel = PluginKernel(
        Capability.ANNOTATE,
        fingerprint=f"annotate:{key}:{value!r}",
    )
    return DCPlugin(
        f"annotate/{key}", ANNOTATION_SRC.format(key=key, value=value), kernel=kernel
    )
