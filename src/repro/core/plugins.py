"""Data Conditioning (DC) plug-ins (paper Section II.F).

DC plug-ins are *stateless mobile codelets* created on the reader side to
customize writer-side outputs on the fly: data markup, annotation,
sampling, bounding box, unit conversion, selection.  In FlexIO they are
C-on-demand (CoD) source strings compiled by dynamic binary code
generation and installed into either the simulation's or the analytics'
address space — and migrated between the two at runtime.

Here the codelet language is a *restricted Python subset*, validated by an
AST whitelist before compilation (the analogue of CoD's restricted-C
subset): no imports, no attribute access on dunders, no I/O, no access to
anything beyond the record passed in and a numeric toolbox (`np`, `len`,
`min`, ...).  The codelet must define::

    def condition(vars):
        ...
        return vars

where ``vars`` maps variable names to numpy arrays.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.monitoring import PerfMonitor


class CodeletError(RuntimeError):
    """Codelet failed validation, compilation, or execution."""


class PluginSide(Enum):
    """Which address space the codelet executes in."""

    WRITER = "writer"
    READER = "reader"


_ALLOWED_NODES = {
    ast.Module, ast.FunctionDef, ast.arguments, ast.arg, ast.Return,
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Pass,
    ast.Name, ast.Load, ast.Store, ast.Del, ast.Delete,
    ast.Subscript, ast.Slice, ast.Index if hasattr(ast, "Index") else ast.Slice,
    ast.Tuple, ast.List, ast.Dict, ast.Set, ast.Constant,
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.MatMult, ast.LShift, ast.RShift, ast.BitOr, ast.BitAnd, ast.BitXor,
    ast.USub, ast.UAdd, ast.Invert, ast.Not, ast.And, ast.Or,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Is, ast.IsNot,
    ast.In, ast.NotIn,
    ast.If, ast.For, ast.While, ast.Break, ast.Continue,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.comprehension, ast.Call, ast.keyword, ast.Attribute, ast.Starred,
    ast.JoinedStr, ast.FormattedValue,
}

#: Names the codelet namespace provides (nothing else resolves).
_SAFE_GLOBALS: dict = {
    "np": np,
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "sum": sum,
    "range": range,
    "enumerate": enumerate,
    "zip": zip,
    "float": float,
    "int": int,
    "bool": bool,
    "round": round,
    "sorted": sorted,
    "dict": dict,
    "list": list,
    "tuple": tuple,
}


def _validate(tree: ast.AST, source: str) -> None:
    for node in ast.walk(tree):
        if type(node) not in _ALLOWED_NODES:
            raise CodeletError(
                f"codelet uses forbidden construct {type(node).__name__}"
            )
        if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
            raise CodeletError(f"codelet accesses private attribute {node.attr!r}")
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            raise CodeletError(f"codelet references dunder name {node.id!r}")
    # Exactly one top-level function named `condition`.
    assert isinstance(tree, ast.Module)
    funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(funcs) != 1 or funcs[0].name != "condition":
        raise CodeletError("codelet must define exactly one function: condition(vars)")
    if len(funcs[0].args.args) != 1:
        raise CodeletError("condition() must take exactly one argument")
    extra = [n for n in tree.body if not isinstance(n, ast.FunctionDef)]
    if extra:
        raise CodeletError("codelet body must contain only the condition() function")


@dataclass
class PluginStats:
    invocations: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    exec_time: float = 0.0


class DCPlugin:
    """One compiled codelet, deployable on either side of a stream."""

    def __init__(self, name: str, source: str) -> None:
        if not name:
            raise CodeletError("plug-in needs a name")
        self.name = name
        self.source = source
        self.side = PluginSide.READER  # created reader-side by default
        self.stats = PluginStats()
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise CodeletError(f"codelet syntax error: {exc}") from exc
        _validate(tree, source)
        namespace: dict = {"__builtins__": {}}
        namespace.update(_SAFE_GLOBALS)
        try:
            exec(compile(tree, f"<dcplugin:{name}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - validation catches most
            raise CodeletError(f"codelet failed to compile: {exc}") from exc
        self._func: Callable[[dict], dict] = namespace["condition"]

    @staticmethod
    def _record_bytes(record: dict) -> int:
        total = 0
        for v in record.values():
            if isinstance(v, np.ndarray):
                total += v.nbytes
        return total

    def apply(self, record: dict, monitor: Optional[PerfMonitor] = None) -> dict:
        """Run the codelet on one record (dict of variable name → array).

        With tracing enabled the execution becomes a span (nesting under
        the active write/read span of the timestep); otherwise it is the
        classic flat measurement point.
        """
        nbytes_in = self._record_bytes(record)
        if monitor:
            if monitor.tracing_enabled:
                cm = monitor.span("dc_plugin", self.name, nbytes=nbytes_in, side=self.side.value)
            else:
                cm = monitor.measure("dc_plugin", self.name, nbytes=nbytes_in, side=self.side.value)
            cm.__enter__()
        t0 = time.perf_counter()
        try:
            out = self._func(dict(record))
        except Exception as exc:
            raise CodeletError(f"codelet {self.name!r} raised: {exc!r}") from exc
        finally:
            self.stats.exec_time += time.perf_counter() - t0
            if monitor:
                cm.__exit__(None, None, None)
        if not isinstance(out, dict):
            raise CodeletError(
                f"codelet {self.name!r} returned {type(out).__name__}, expected dict"
            )
        self.stats.invocations += 1
        self.stats.bytes_in += nbytes_in
        self.stats.bytes_out += self._record_bytes(out)
        return out

    @property
    def reduction_ratio(self) -> float:
        """Output bytes / input bytes over the plug-in's lifetime."""
        if self.stats.bytes_in == 0:
            return 1.0
        return self.stats.bytes_out / self.stats.bytes_in


class PluginManager:
    """The per-stream plug-in chain with runtime deployment and migration.

    Deployment of a reader-created plug-in to the writer side travels "a
    communication channel separate from the ones used for data movement"
    (Section II.F) — modelled by the deploy/migrate calls happening outside
    the stream's step flow.
    """

    def __init__(self, monitor: Optional[PerfMonitor] = None) -> None:
        self.monitor = monitor
        self._chain: list[DCPlugin] = []

    # ------------------------------------------------------------------
    def deploy(self, plugin: DCPlugin, side: PluginSide = PluginSide.READER) -> DCPlugin:
        if any(p.name == plugin.name for p in self._chain):
            raise CodeletError(f"plug-in {plugin.name!r} already deployed")
        plugin.side = side
        self._chain.append(plugin)
        return plugin

    def undeploy(self, name: str) -> DCPlugin:
        for i, p in enumerate(self._chain):
            if p.name == name:
                return self._chain.pop(i)
        raise CodeletError(f"no plug-in {name!r} deployed")

    def migrate(self, name: str, to_side: PluginSide) -> DCPlugin:
        """Move a codelet across address spaces at runtime."""
        for p in self._chain:
            if p.name == name:
                p.side = to_side
                return p
        raise CodeletError(f"no plug-in {name!r} deployed")

    def plugins(self, side: Optional[PluginSide] = None) -> list[DCPlugin]:
        if side is None:
            return list(self._chain)
        return [p for p in self._chain if p.side == side]

    # ------------------------------------------------------------------
    def apply_side(self, side: PluginSide, record: dict) -> dict:
        """Run every codelet installed on ``side``, in deployment order."""
        out = record
        for p in self._chain:
            if p.side == side:
                out = p.apply(out, self.monitor)
        return out


# ---------------------------------------------------------------------------
# A library of useful codelets (paper's examples)
# ---------------------------------------------------------------------------

SAMPLING_SRC = """
def condition(vars):
    out = dict(vars)
    only = {only}
    for name in list(out):
        if only and name not in only:
            continue
        v = out[name]
        out[name] = v[::{stride}]
    return out
"""

RANGE_SELECT_SRC = """
def condition(vars):
    v = vars['{var}']
    mask = (v[:, {column}] >= {lo}) & (v[:, {column}] <= {hi})
    out = dict(vars)
    out['{var}'] = v[mask]
    return out
"""

BOUNDING_BOX_SRC = """
def condition(vars):
    out = dict(vars)
    for name in list(out):
        v = out[name]
        out[name + '_bbox_min'] = np.min(v, axis=0)
        out[name + '_bbox_max'] = np.max(v, axis=0)
    return out
"""

UNIT_CONVERSION_SRC = """
def condition(vars):
    out = dict(vars)
    out['{var}'] = vars['{var}'] * {factor}
    return out
"""

ANNOTATION_SRC = """
def condition(vars):
    out = dict(vars)
    out['{key}'] = np.array([{value}])
    return out
"""


def sampling_plugin(stride: int = 2, only: Optional[Sequence[str]] = None) -> DCPlugin:
    """Keep every ``stride``-th element of each variable.

    ``only`` restricts sampling to the named variables, leaving the rest
    untouched — e.g. sample particle arrays but preserve a field grid
    whose block distribution must stay intact for global-array reads.
    """
    names = tuple(only) if only else ()
    label = f"sample/{stride}" if not names else f"sample/{stride}:{','.join(names)}"
    return DCPlugin(label, SAMPLING_SRC.format(stride=int(stride), only=repr(names)))


def range_select_plugin(var: str, column: int, lo: float, hi: float) -> DCPlugin:
    """Select rows of 2-D ``var`` whose ``column`` lies in [lo, hi]."""
    return DCPlugin(
        f"range/{var}[{column}]",
        RANGE_SELECT_SRC.format(var=var, column=int(column), lo=float(lo), hi=float(hi)),
    )


def bounding_box_plugin() -> DCPlugin:
    """Attach per-variable bounding-box metadata."""
    return DCPlugin("bbox", BOUNDING_BOX_SRC)


def unit_conversion_plugin(var: str, factor: float) -> DCPlugin:
    """Scale ``var`` by ``factor`` (e.g. unit conversion)."""
    return DCPlugin(f"units/{var}", UNIT_CONVERSION_SRC.format(var=var, factor=float(factor)))


def annotation_plugin(key: str, value: float) -> DCPlugin:
    """Add a scalar markup variable to every record."""
    return DCPlugin(f"annotate/{key}", ANNOTATION_SRC.format(key=key, value=float(value)))
