"""Central registry of stream-hint keys (paper Section IV.B.1 knobs).

Every ``<method>`` parameter the FLEXPATH stream method understands is
declared here exactly once: its key, its value type, its default, and —
for enumerated hints — the admissible values.  Consumers
(:mod:`repro.core.stream`, :mod:`repro.core.api`, the examples, the
chaos harness) reference the module-level key constants instead of
scattering string literals, and :func:`validate_keys` turns a typo like
``cachign=ALL`` into a hard error with a suggestion instead of a
silently-ignored hint.

The registry is also the ground truth for the FlexLint FXL002 rule
(:mod:`repro.analysis.flexlint`): any hint-key literal used at a call
site that is not declared here fails the lint.

Use :func:`stream_params` to build the ``key=value;key=value`` parameter
string of a ``<method>`` element programmatically::

    from repro.core.hints import CACHING_ALL, stream_params

    params = stream_params(caching=CACHING_ALL, batching=True)
    # -> "caching=all;batching=true"
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional


class UnknownHintError(ValueError):
    """A hint key that no registered method parameter declares."""

    def __init__(self, key: str, suggestion: Optional[str] = None,
                 context: str = "") -> None:
        msg = f"unknown stream hint {key!r}"
        if context:
            msg += f" ({context})"
        if suggestion:
            msg += f"; did you mean {suggestion!r}?"
        super().__init__(msg)
        self.key = key
        self.suggestion = suggestion


class HintValueError(ValueError):
    """A hint value outside the registered choices for its key."""


@dataclass(frozen=True)
class HintSpec:
    """Declaration of one ``<method>`` hint parameter."""

    key: str
    #: Value type: ``str`` / ``bool`` / ``int`` / ``float`` / ``enum``.
    kind: str
    default: Any
    description: str
    #: Admissible (lower-cased) values when ``kind == "enum"``.
    choices: Optional[tuple[str, ...]] = None


# ---------------------------------------------------------------------------
# Key constants — the only place hint-key strings are spelled out.
# ---------------------------------------------------------------------------

CACHING = "caching"
BATCHING = "batching"
SYNC = "sync"
XPMEM = "xpmem"
BUFFER_STEPS = "buffer_steps"
TRACE = "trace"
QUEUE_DEPTH = "queue_depth"
TRANSPORT = "transport"
TRANSACTIONAL = "transactional"
MAX_RETRIES = "max_retries"
RETRY_TIMEOUT = "retry_timeout"
RETRY_BACKOFF = "retry_backoff"
RETRY_JITTER = "retry_jitter"
FAULTS = "faults"
DEGRADE_AFTER = "degrade_after"
LEASE = "lease"
FUSED = "fused"
PUSHDOWN = "pushdown"
#: ``MPI_AGGREGATE`` file-method parameter (aggregator fan-in).
AGGREGATORS = "aggregators"

#: Values of the ``caching`` hint (handshake-protocol levels).
CACHING_NONE = "none"
CACHING_LOCAL = "local"
CACHING_ALL = "all"

#: Values of the ``transport`` hint (drain channels).
TRANSPORT_SHM = "shm"
TRANSPORT_RDMA = "rdma"
TRANSPORT_TCP = "tcp"

#: Method names that select the FLEXPATH stream engine.
STREAM_METHODS = ("FLEXPATH", "FLEXIO")


# ---------------------------------------------------------------------------
# Trace-stage names (span categories) consumed by the adaptive layer.
# ---------------------------------------------------------------------------

STAGE_WRITE = "write"
STAGE_DRAIN = "drain"
STAGE_TRANSPORT = "transport"
STAGE_REDISTRIBUTE = "redistribute"
STAGE_READ = "read"
STAGE_DC_PLUGIN = "dc_plugin"
STAGE_HANDSHAKE = "handshake"

#: Stages whose dominance means data movement is the bottleneck — the
#: placement policy then favours writer-side reducers.
MOVEMENT_STAGES = (STAGE_WRITE, STAGE_TRANSPORT)


_STREAM_SPECS = (
    HintSpec(CACHING, "enum", CACHING_NONE,
             "Handshake plan caching: none / local / all.",
             choices=(CACHING_NONE, CACHING_LOCAL, CACHING_ALL)),
    HintSpec(BATCHING, "bool", False,
             "Aggregate every variable of a step into one handshake round."),
    HintSpec(SYNC, "bool", False,
             "Block the writer until the transport drain completes."),
    HintSpec(XPMEM, "bool", False,
             "Zero-copy page-mapping path for large SHM messages."),
    HintSpec(BUFFER_STEPS, "int", 4,
             "Buffered-step depth before backpressure is counted."),
    HintSpec(TRACE, "bool", False,
             "Enable span tracing on the stream's monitor."),
    HintSpec(QUEUE_DEPTH, "int", 2,
             "Bounded depth of the async publication queue."),
    HintSpec(TRANSPORT, "enum", TRANSPORT_SHM,
             "Drain channel: shm (intra-node), rdma (inter-node), or "
             "tcp (cross-process sockets).",
             choices=(TRANSPORT_SHM, TRANSPORT_RDMA, TRANSPORT_TCP)),
    HintSpec(TRANSACTIONAL, "bool", False,
             "All-or-nothing step visibility via 2PC across ranks."),
    HintSpec(MAX_RETRIES, "int", 3,
             "Bounded retries per step drain."),
    HintSpec(RETRY_TIMEOUT, "float", 0.25,
             "Per-send timeout (seconds); also the backoff base delay."),
    HintSpec(RETRY_BACKOFF, "float", 2.0,
             "Exponential backoff multiplier between retries."),
    HintSpec(RETRY_JITTER, "float", 0.1,
             "Jitter fraction added to backoff delays."),
    HintSpec(FAULTS, "str", "",
             "Fault-injection schedule, e.g. rate=0.1,seed=7,kinds=timeout."),
    HintSpec(DEGRADE_AFTER, "int", 2,
             "Consecutive failed steps before degrading the transport."),
    HintSpec(LEASE, "float", 0.0,
             "Directory lease in seconds (0 = no lease)."),
    HintSpec(FUSED, "bool", True,
             "Fuse compilable plug-in chains into the redistribution "
             "plan (single-pass reads); false keeps the interpreted pass."),
    HintSpec(PUSHDOWN, "bool", False,
             "Register reader block predicates with the directory so the "
             "writer drain skips blocks the chain provably drops."),
)

#: The FLEXPATH stream method's hints, keyed by hint name.
STREAM_HINTS: dict[str, HintSpec] = {s.key: s for s in _STREAM_SPECS}

#: Per-method hint registries (methods not listed accept free-form params).
METHOD_HINTS: dict[str, dict[str, HintSpec]] = {
    **{m: STREAM_HINTS for m in STREAM_METHODS},
    "MPI_AGGREGATE": {
        AGGREGATORS: HintSpec(
            AGGREGATORS, "int", 0,
            "Aggregator processes for the MPI_AGGREGATE file method."),
    },
}


def known_keys(method: Optional[str] = None) -> frozenset[str]:
    """Hint keys registered for ``method`` (or for every method)."""
    if method is not None:
        return frozenset(METHOD_HINTS.get(method, {}))
    keys: set[str] = set()
    for registry in METHOD_HINTS.values():
        keys.update(registry)
    return frozenset(keys)


def suggest(key: str, method: Optional[str] = None) -> Optional[str]:
    """The closest registered key to a misspelled one, if any."""
    matches = difflib.get_close_matches(key, sorted(known_keys(method)), n=1)
    return matches[0] if matches else None


def validate_keys(
    keys: Iterable[str], method: str = "FLEXPATH", context: str = ""
) -> None:
    """Raise :class:`UnknownHintError` for any key the method ignores."""
    registry = METHOD_HINTS.get(method)
    if registry is None:
        return  # free-form method (e.g. BP): nothing to check against
    for key in keys:
        if key not in registry:
            raise UnknownHintError(key, suggest(key, method), context=context)


def validate_spec(spec) -> None:
    """Validate a :class:`~repro.adios.config.MethodSpec` (duck-typed:
    only ``.method`` and ``.parameters`` are read) against the registry."""
    validate_keys(
        spec.parameters, method=spec.method,
        context=f"method {spec.method} for group {getattr(spec, 'group', '?')!r}",
    )


def validate_config(config) -> None:
    """Validate every method binding of an
    :class:`~repro.adios.config.AdiosConfig` (duck-typed: ``.methods``)."""
    for spec in getattr(config, "methods", {}).values():
        validate_spec(spec)


def _format_value(spec: HintSpec, value: Any) -> str:
    if spec.kind == "bool":
        if isinstance(value, str):
            return value
        return "true" if value else "false"
    text = str(value)
    if spec.kind == "enum":
        assert spec.choices is not None
        if text.strip().lower() not in spec.choices:
            raise HintValueError(
                f"hint {spec.key}={text!r}: expected one of "
                f"{'/'.join(spec.choices)}"
            )
    return text


def stream_params(_method: str = "FLEXPATH", **hints: Any) -> str:
    """Build the ``key=value;key=value`` parameter string of a
    ``<method>`` element from registered hint keys.

    Keys are validated against the method's registry (a typo raises
    :class:`UnknownHintError` at build time, not silently at run time);
    booleans serialize as ``true``/``false``; enum values are checked
    against their registered choices.
    """
    pieces = []
    registry = METHOD_HINTS.get(_method, STREAM_HINTS)
    for key, value in hints.items():
        spec = registry.get(key)
        if spec is None:
            raise UnknownHintError(key, suggest(key, _method),
                                   context=f"stream_params for {_method}")
        pieces.append(f"{key}={_format_value(spec, value)}")
    return ";".join(pieces)


def defaults(method: str = "FLEXPATH") -> Mapping[str, Any]:
    """The registered default value of every hint of ``method``."""
    return {k: s.default for k, s in METHOD_HINTS.get(method, {}).items()}
