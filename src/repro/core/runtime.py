"""FlexIO runtime: transport auto-selection and NUMA buffer policy.

"Intra- vs inter-node transports are automatically configured according to
the placements of communicating simulation and online analytics processes"
(paper Section II.B).  The runtime holds the process→core binding and
answers, for every communicating pair, which transport applies and what a
transfer costs — including the NUMA placement of FlexIO's internal queues
and buffer pools (Section III.B.3): by default they live in the
*simulation's* local NUMA domain, favouring the producer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.machine.topology import Machine
from repro.transport.shm import ShmCostModel


class TransportKind(Enum):
    """Which low-level transport a pair of processes uses."""

    INLINE = "inline"      # same process: a function call
    SHM = "shm"            # same node: shared-memory queues
    RDMA = "rdma"          # different nodes: NNTI/RDMA
    FILE = "file"          # offline: through the parallel file system


class NumaBufferPolicy(Enum):
    """Where the shm queues/pools live relative to the communicating pair."""

    WRITER_LOCAL = "writer-local"   # paper default: favour the simulation
    READER_LOCAL = "reader-local"
    INTERLEAVED = "interleaved"


@dataclass
class FlexIORuntime:
    """Per-job runtime context: machine + bindings + buffer policy."""

    machine: Machine
    numa_policy: NumaBufferPolicy = NumaBufferPolicy.WRITER_LOCAL

    def __post_init__(self) -> None:
        self._shm = ShmCostModel(self.machine.node_type)

    # ------------------------------------------------------------------
    def select_transport(
        self, writer_core: Optional[int], reader_core: Optional[int]
    ) -> TransportKind:
        """Choose the transport for one communicating pair.

        ``None`` for the reader core means the analytics run offline.
        """
        if reader_core is None:
            return TransportKind.FILE
        if writer_core is None:
            raise ValueError("writer must always be placed")
        if writer_core == reader_core:
            return TransportKind.INLINE
        if self.machine.same_node(writer_core, reader_core):
            return TransportKind.SHM
        return TransportKind.RDMA

    # ------------------------------------------------------------------
    def _shm_cross_numa(self, writer_core: int, reader_core: int) -> tuple[bool, bool]:
        """(writer_pays_cross_numa, reader_pays_cross_numa) for the queues.

        The queue sits in one NUMA domain; whichever side is remote to it
        pays the remote-access penalty on its copy.
        """
        same = self.machine.same_numa(writer_core, reader_core)
        if same:
            return (False, False)
        if self.numa_policy is NumaBufferPolicy.WRITER_LOCAL:
            return (False, True)
        if self.numa_policy is NumaBufferPolicy.READER_LOCAL:
            return (True, False)
        return (True, True)  # interleaved: both pay a blended penalty

    def transfer_time(
        self,
        nbytes: int,
        writer_core: int,
        reader_core: Optional[int],
        asynchronous: bool = False,
        concurrent_flows: int = 1,
        xpmem: bool = False,
    ) -> float:
        """Price one transfer between two placed processes.

        For async transfers this is the *total* movement time (the caller
        decides how much overlaps computation); file transport prices a
        write of ``nbytes`` by one client.
        """
        kind = self.select_transport(writer_core, reader_core)
        if kind is TransportKind.INLINE:
            return 0.0
        if kind is TransportKind.SHM:
            w_cross, r_cross = self._shm_cross_numa(writer_core, reader_core)  # type: ignore[arg-type]
            # Producer copy into the queue + consumer copy out; each side's
            # copy speed depends on its NUMA distance to the buffer.
            t = self._shm.small_msg_time(w_cross or r_cross)
            if xpmem:
                t += 1.5e-6 + nbytes / self._shm.copy_bw(r_cross)
            else:
                t += nbytes / self._shm.copy_bw(w_cross) + nbytes / self._shm.copy_bw(r_cross)
            return t
        if kind is TransportKind.RDMA:
            ic = self.machine.interconnect
            if ic is None:
                raise RuntimeError("machine has no interconnect model")
            return ic.params.control_msg_time + ic.bulk_transfer_time(
                nbytes, concurrent_flows
            )
        fs = self.machine.filesystem
        if fs is None:
            raise RuntimeError("machine has no filesystem model")
        return fs.write_time(nbytes, num_clients=1)

    # ------------------------------------------------------------------
    def writer_visible_transfer_time(
        self,
        nbytes: int,
        writer_core: int,
        reader_core: Optional[int],
        asynchronous: bool,
        concurrent_flows: int = 1,
    ) -> float:
        """What the *writer* blocks for.

        Async sends cost the writer only the copy into FlexIO's send
        buffer; the wire/second-copy time overlaps its computation.
        """
        if not asynchronous:
            return self.transfer_time(
                nbytes, writer_core, reader_core, concurrent_flows=concurrent_flows
            )
        kind = self.select_transport(writer_core, reader_core)
        if kind is TransportKind.INLINE:
            return 0.0
        if kind is TransportKind.SHM:
            w_cross, _ = self._shm_cross_numa(writer_core, reader_core)  # type: ignore[arg-type]
            return nbytes / self._shm.copy_bw(w_cross)
        if kind is TransportKind.RDMA:
            # Copy into the registered send buffer; the Get happens later.
            return nbytes / self.machine.node_type.mem_bw_local
        # File writes are handed to the I/O layer synchronously here.
        return self.transfer_time(nbytes, writer_core, reader_core)


def make_stream_channel(kind: str = "shm", monitor=None, interconnect=None, injector=None):
    """Build the drain channel behind a stream's async publication pipeline.

    ``kind`` follows the ``transport`` stream hint: ``shm`` yields an
    intra-node :class:`~repro.transport.shm.ShmChannel`; ``rdma`` wires a
    writer/reader endpoint pair over an NNTI fabric (InfiniBand cost
    parameters unless ``interconnect`` overrides them) and returns the
    writer-side :class:`~repro.transport.rdma.RdmaChannel`.

    ``injector`` (a :class:`~repro.transport.faults.TransportFaultInjector`)
    makes the built channel inject send faults, for chaos testing and the
    ``faults=`` stream hint.

    Note the drain channel always uses the pool (two-copy) path even when
    the ``xpmem`` hint is set: the xpmem protocol's synchronous
    consumer-detach semantics would deadlock a single drainer thread that
    both sends and receives; xpmem continues to inform the cost models.
    """
    kind = (kind or "shm").strip().lower()
    if kind == "shm":
        from repro.transport.shm import ShmChannel

        return ShmChannel(monitor=monitor, injector=injector)
    if kind == "tcp":
        from repro.transport.tcp import TcpChannel

        # Loopback socketpair: real kernel sockets, one process — the
        # single-process shape of the cross-process rung.
        return TcpChannel(monitor=monitor, injector=injector)
    if kind == "rdma":
        from repro.machine.interconnect import InfinibandInterconnect
        from repro.transport.rdma import NntiFabric, RdmaChannel

        fabric = NntiFabric(interconnect or InfinibandInterconnect())
        writer_ep = fabric.endpoint(0, "stream-writer")
        reader_ep = fabric.endpoint(1, "stream-reader")
        conn = fabric.connect(writer_ep, reader_ep)
        return RdmaChannel(conn, writer_ep, monitor=monitor, injector=injector)
    raise ValueError(
        f"unknown stream transport {kind!r}; expected shm, tcp, or rdma"
    )
