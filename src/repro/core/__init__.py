"""The FlexIO middleware core (paper Section II).

This package is the paper's primary contribution, layered on the
substrates below it:

* :mod:`repro.core.monitoring` — runtime performance monitoring with
  measurement points at every stack level, trace dump, and online
  aggregation (Section II.G);
* :mod:`repro.core.plugins` — Data Conditioning plug-ins: stateless
  mobile codelets compiled from source at runtime, installable in the
  writer's or reader's address space and migratable between them
  (Section II.F);
* :mod:`repro.core.directory` — the directory server + per-program
  coordinators used for stream discovery and connection setup
  (Section II.C.1);
* :mod:`repro.core.redistribution` — MxN global-array redistribution:
  overlap mapping, the 4-step handshake with NO_CACHING /
  CACHING_LOCAL / CACHING_ALL options, variable batching, and sync vs
  async writes (Sections II.B–II.C);
* :mod:`repro.core.stream` — the FLEXPATH stream I/O method plugged into
  the ADIOS method registry: named streams, process-group and
  global-array read patterns, End-of-Stream semantics;
* :mod:`repro.core.runtime` — transport auto-selection from placement
  (shm within a node, RDMA across nodes, files for offline) and NUMA
  buffer-placement policy;
* :mod:`repro.core.hints` — the central stream-hint registry: every
  ``<method>`` parameter declared once (key, type, default, choices),
  validated at config load and enforced statically by FlexLint FXL002.
"""

from repro.core.hints import (
    HintSpec,
    HintValueError,
    UnknownHintError,
    stream_params,
)
from repro.core.monitoring import MeasurementPoint, PerfMonitor, TraceRecord
from repro.core.plugins import (
    CodeletError,
    DCPlugin,
    PluginManager,
    PluginSide,
)
from repro.core.directory import CoordinatorInfo, DirectoryServer
from repro.core.redistribution import (
    CachingOption,
    CompiledPlan,
    HandshakeCost,
    PlanCache,
    RedistributionEngine,
    RedistributionPlan,
    global_plan_cache,
)
from repro.core.directory import DirectoryError
from repro.core.stream import (
    FlexpathMethod,
    StepState,
    StreamError,
    StreamHints,
    StreamStalled,
    stream_registry,
)
from repro.core.runtime import (
    FlexIORuntime,
    NumaBufferPolicy,
    TransportKind,
    make_stream_channel,
)
from repro.core.resilience import (
    FaultInjector,
    MovementFailed,
    ReliableChannel,
    RetryPolicy,
    TransactionAborted,
    TransactionCoordinator,
    TransactionalStreamWriter,
)
from repro.core.adaptive import (
    AdaptiveGetScheduler,
    AdaptivePolicy,
    DCPlacementController,
    policy_from_hint,
)
from repro.core.api import FlexIO

__all__ = [
    "AdaptiveGetScheduler",
    "AdaptivePolicy",
    "CachingOption",
    "DCPlacementController",
    "policy_from_hint",
    "FaultInjector",
    "MovementFailed",
    "ReliableChannel",
    "RetryPolicy",
    "TransactionAborted",
    "TransactionCoordinator",
    "TransactionalStreamWriter",
    "CodeletError",
    "CompiledPlan",
    "CoordinatorInfo",
    "DCPlugin",
    "DirectoryServer",
    "FlexIO",
    "FlexIORuntime",
    "FlexpathMethod",
    "HandshakeCost",
    "HintSpec",
    "HintValueError",
    "MeasurementPoint",
    "NumaBufferPolicy",
    "PerfMonitor",
    "PlanCache",
    "PluginManager",
    "PluginSide",
    "global_plan_cache",
    "make_stream_channel",
    "RedistributionEngine",
    "RedistributionPlan",
    "DirectoryError",
    "StepState",
    "StreamError",
    "StreamHints",
    "StreamStalled",
    "TraceRecord",
    "TransportKind",
    "UnknownHintError",
    "stream_params",
    "stream_registry",
]
