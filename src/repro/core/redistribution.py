"""MxN global-array redistribution (paper Sections II.B–II.C, Figure 3).

A multi-dimensional array distributed over M writer processes is passed to
N reader processes that may request a *different* distribution.  The
engine:

1. computes the redistribution **plan** — for every (writer, reader) pair,
   the overlap of the writer's block with the reader's requested block;
2. accounts for the **4-step handshake** that establishes the plan at
   runtime, honouring the caching options:

   * ``NO_CACHING`` — full protocol each variable each timestep;
   * ``CACHING_LOCAL`` — reuse the local side's gathered distribution
     (skip step 1), still exchange with the peer (steps 2–4);
   * ``CACHING_ALL`` — reuse both sides' distributions (only step 4);

3. optionally **batches** several variables so handshake and data messages
   aggregate;
4. actually **moves the data**: writer-local numpy blocks are sliced into
   strides per the plan and assembled into each reader's target buffer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Sequence

import numpy as np

from repro.adios.selection import BoundingBox, intersect
from repro.core.monitoring import PerfMonitor


class CachingOption(Enum):
    """How much handshake state carries over between timesteps."""

    NO_CACHING = "none"
    CACHING_LOCAL = "local"
    CACHING_ALL = "all"


@dataclass(frozen=True)
class OverlapPair:
    """One writer→reader stride transfer of the plan."""

    writer: int
    reader: int
    overlap: BoundingBox

    def nbytes(self, itemsize: int) -> int:
        return self.overlap.size * itemsize


@dataclass
class RedistributionPlan:
    """The computed MxN mapping for one (writer dist, reader dist) pair."""

    writer_boxes: list[BoundingBox]
    reader_boxes: list[BoundingBox]
    pairs: list[OverlapPair]
    _by_writer: dict[int, list[OverlapPair]] = field(default_factory=dict)
    _by_reader: dict[int, list[OverlapPair]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for p in self.pairs:
            self._by_writer.setdefault(p.writer, []).append(p)
            self._by_reader.setdefault(p.reader, []).append(p)

    @property
    def num_writers(self) -> int:
        return len(self.writer_boxes)

    @property
    def num_readers(self) -> int:
        return len(self.reader_boxes)

    def sends_of(self, writer: int) -> list[OverlapPair]:
        return self._by_writer.get(writer, [])

    def recvs_of(self, reader: int) -> list[OverlapPair]:
        return self._by_reader.get(reader, [])

    def total_bytes(self, itemsize: int) -> int:
        return sum(p.nbytes(itemsize) for p in self.pairs)

    def data_message_count(self) -> int:
        """Stride messages in step 4 (one per overlapping pair)."""
        return len(self.pairs)

    def communication_matrix(self, itemsize: int) -> np.ndarray:
        """(M, N) byte-volume matrix — input to the placement algorithms."""
        mat = np.zeros((self.num_writers, self.num_readers), dtype=np.int64)
        for p in self.pairs:
            mat[p.writer, p.reader] += p.nbytes(itemsize)
        return mat


def compute_plan(
    writer_boxes: Sequence[BoundingBox], reader_boxes: Sequence[BoundingBox]
) -> RedistributionPlan:
    """Overlap every writer block with every reader block.

    O(M·N) box intersections — exact and plenty fast at the scales the
    paper exercises; each process in the real system computes only its own
    row/column of this product independently (after step 3 of the
    handshake everyone knows all distributions).
    """
    if not writer_boxes:
        raise ValueError("need at least one writer box")
    if not reader_boxes:
        raise ValueError("need at least one reader box")
    ndim = writer_boxes[0].ndim
    for b in list(writer_boxes) + list(reader_boxes):
        if b.ndim != ndim:
            raise ValueError("all boxes must share dimensionality")
    pairs = []
    for w, wb in enumerate(writer_boxes):
        for r, rb in enumerate(reader_boxes):
            ov = intersect(wb, rb)
            if ov is not None:
                pairs.append(OverlapPair(w, r, ov))
    return RedistributionPlan(list(writer_boxes), list(reader_boxes), pairs)


class CompiledPlan:
    """A :class:`RedistributionPlan` lowered to replayable slice assignments.

    Compilation walks the plan's overlap pairs **once** and records, per
    reader, the ``(writer, src_slices, dst_slices)`` triples needed to
    scatter writer blocks into reader buffers.  Subsequent steps replay
    those triples as pure numpy slice assignments — no box intersection,
    no slice arithmetic, no per-block bookkeeping on the hot path.

    Coverage of each reader box is also detected at compile time so fully
    covered targets can be allocated with :func:`numpy.empty` instead of
    :func:`numpy.full`.
    """

    __slots__ = (
        "plan",
        "writer_boxes",
        "reader_boxes",
        "assignments",
        "covered",
        "elements_moved",
    )

    def __init__(self, plan: RedistributionPlan) -> None:
        self.plan = plan
        self.writer_boxes = list(plan.writer_boxes)
        self.reader_boxes = list(plan.reader_boxes)
        # assignments[r] = [(writer_idx, src_slices, dst_slices), ...] in
        # plan-pair order, so overwrite semantics match seed assemble().
        self.assignments: list[list[tuple[int, tuple, tuple]]] = [
            [] for _ in self.reader_boxes
        ]
        self.elements_moved = 0
        for pair in plan.pairs:
            wbox = self.writer_boxes[pair.writer]
            rbox = self.reader_boxes[pair.reader]
            src = pair.overlap.slices(relative_to=wbox)
            dst = pair.overlap.slices(relative_to=rbox)
            self.assignments[pair.reader].append((pair.writer, src, dst))
            self.elements_moved += pair.overlap.size
        # A reader box is "covered" when the union of its incoming
        # overlaps fills it entirely; detected once with a boolean mask.
        self.covered: list[bool] = []
        for r, rbox in enumerate(self.reader_boxes):
            if not self.assignments[r]:
                self.covered.append(rbox.size == 0)
                continue
            mask = np.zeros(rbox.count, dtype=bool)
            for _, _, dst in self.assignments[r]:
                mask[dst] = True
            self.covered.append(bool(mask.all()))

    def _coerce_blocks(
        self,
        writer_blocks: Sequence,
        dtype: Optional[np.dtype],
        check: bool,
    ) -> tuple[list[np.ndarray], np.dtype]:
        """Normalize incoming blocks to shaped arrays.

        A block may be an ndarray or a wire span
        (:class:`~repro.transport.buffers.WireBuffer` — anything with an
        ``as_array``): spans are reinterpreted in place as
        ``np.frombuffer`` views shaped to their writer box, so bytes
        arriving from the transport scatter straight into the reader
        arrays with no intermediate materialization.
        """
        if check and len(writer_blocks) != len(self.writer_boxes):
            raise ValueError(
                f"expected {len(self.writer_boxes)} writer blocks, "
                f"got {len(writer_blocks)}"
            )
        blocks: list[np.ndarray] = []
        for i, blk in enumerate(writer_blocks):
            if hasattr(blk, "as_array"):
                if dtype is None:
                    raise ValueError("dtype is required for wire-span blocks")
                blk = blk.as_array(dtype, self.writer_boxes[i].count)
            elif not isinstance(blk, np.ndarray):
                blk = np.asarray(blk)
            if check and tuple(blk.shape) != tuple(self.writer_boxes[i].count):
                raise ValueError(
                    f"writer {i} block shape {tuple(blk.shape)} != "
                    f"box count {self.writer_boxes[i].count}"
                )
            blocks.append(blk)
        if dtype is None:
            dtype = blocks[0].dtype
        return blocks, np.dtype(dtype)

    def execute(
        self,
        writer_blocks: Sequence[np.ndarray],
        dtype: Optional[np.dtype] = None,
        fill: float = 0,
        check: bool = True,
    ) -> list[np.ndarray]:
        """Replay the compiled assignments: writer blocks → reader arrays.

        Byte-identical to :func:`repro.adios.selection.assemble` run per
        reader box, but without recomputing any overlap geometry.  Writer
        blocks may be wire spans (see :meth:`_coerce_blocks`).
        """
        blocks, dtype = self._coerce_blocks(writer_blocks, dtype, check)
        outputs: list[np.ndarray] = []
        for r, rbox in enumerate(self.reader_boxes):
            if self.covered[r]:
                out = np.empty(rbox.count, dtype=dtype)
            else:
                out = np.full(rbox.count, fill, dtype=dtype)
            for w, src, dst in self.assignments[r]:
                out[dst] = blocks[w][src]
            outputs.append(out)
        return outputs

    def execute_into(
        self,
        writer_blocks: Sequence[np.ndarray],
        outs: Sequence[np.ndarray],
        fill: Optional[float] = None,
        check: bool = True,
    ) -> Sequence[np.ndarray]:
        """Replay the compiled assignments into *preallocated* reader
        arrays — the steady-state zero-allocation path.

        ``outs`` must hold one array per reader box, each shaped to its
        box.  Incoming spans scatter straight into them; uncovered cells
        are only touched when ``fill`` is given (pass it on the first
        step, omit it to preserve existing values).  Returns ``outs``.
        """
        if len(outs) != len(self.reader_boxes):
            raise ValueError(
                f"expected {len(self.reader_boxes)} output arrays, got {len(outs)}"
            )
        for r, (out, rbox) in enumerate(zip(outs, self.reader_boxes)):
            if tuple(out.shape) != tuple(rbox.count):
                raise ValueError(
                    f"reader {r} output shape {tuple(out.shape)} != "
                    f"box count {rbox.count}"
                )
        blocks, _ = self._coerce_blocks(
            writer_blocks, outs[0].dtype if outs else None, check
        )
        for r in range(len(self.reader_boxes)):
            out = outs[r]
            if fill is not None and not self.covered[r]:
                out[...] = fill
            for w, src, dst in self.assignments[r]:
                out[dst] = blocks[w][src]
        return outs


class FusedPlan:
    """A :class:`CompiledPlan` with a reader-side kernel chain fused in.

    Instead of scattering wire spans into a materialized global array and
    then running the plug-in chain interpreted over it, the fused plan
    runs the chain *per block while scattering*: filters drop rows before
    they are ever copied, transforms write straight into the destination.
    Single-reader only (the stream read path).

    Fusion is legal when the reader's destination slices tile axis 0
    contiguously with full trailing dimensions (``fusable``) — then
    per-block row operations concatenated in row order are byte-identical
    to the whole-array interpreted pass.  Anything else falls back.
    """

    __slots__ = ("compiled", "chain", "fusable", "_order")

    def __init__(self, compiled: CompiledPlan, chain) -> None:
        self.compiled = compiled
        self.chain = chain
        self._order: list[tuple[int, int, int, tuple]] = []
        self.fusable = self._analyze()

    def _analyze(self) -> bool:
        if len(self.compiled.reader_boxes) != 1 or not self.compiled.covered[0]:
            return False
        rbox = self.compiled.reader_boxes[0]
        count = tuple(rbox.count)
        spans = []
        for w, src, dst in self.compiled.assignments[0]:
            first = dst[0]
            if first.step not in (None, 1):
                return False
            for d, s in enumerate(dst[1:], start=1):
                if (s.start or 0) != 0 or s.stop != count[d] or s.step not in (None, 1):
                    return False
            spans.append((first.start or 0, first.stop, w, src, dst))
        spans.sort(key=lambda t: (t[0], t[1]))
        row = 0
        for a, b, _, _, _ in spans:
            if a != row:  # gap or overlap: overwrite order would matter
                return False
            row = b
        if row != count[0]:
            return False
        self._order = spans
        return True

    def can_execute_into(self, name: str) -> bool:
        """In-place scatter keeps shape, so only filter-free chains."""
        return self.fusable and not self.chain.has_filter(name)

    def execute(
        self,
        writer_blocks: Sequence[np.ndarray],
        name: str,
        dtype: Optional[np.dtype] = None,
        check: bool = True,
        monitor=None,
    ) -> np.ndarray:
        """Scatter + chain in one pass; returns the conditioned array.

        With a filtering chain the per-block survivors concatenate in row
        order (one allocation, exactly the final size); a filter-free
        chain writes transforms straight into the destination buffer.
        """
        if not self.fusable:
            raise ValueError("plan is not fusable; use CompiledPlan.execute")
        blocks, dtype = self.compiled._coerce_blocks(writer_blocks, dtype, check)
        rbox = self.compiled.reader_boxes[0]
        if not self.chain.has_filter(name):
            out = np.empty(rbox.count, dtype=dtype)
            self.execute_into(blocks, name, out, check=False, monitor=monitor)
            return out
        cursor = self.chain.cursor(name)
        pieces = []
        for _, _, w, src, _ in self._order:
            piece = cursor.apply_block(blocks[w][src])
            if piece.shape[0]:
                pieces.append(piece)
        cursor.finish(monitor)
        if not pieces:
            tail = tuple(rbox.count)[1:]
            return np.empty((0, *tail), dtype=dtype)
        if len(pieces) == 1:
            return np.array(pieces[0], dtype=dtype, copy=True)
        return np.concatenate(pieces, axis=0)

    def execute_into(
        self,
        writer_blocks: Sequence[np.ndarray],
        name: str,
        out: np.ndarray,
        check: bool = True,
        monitor=None,
    ) -> np.ndarray:
        """Shape-preserving fused scatter into a preallocated array: the
        first transform lands with ``out=``, the rest run in place — no
        intermediate arrays."""
        if not self.can_execute_into(name):
            raise ValueError("chain filters rows; use execute()")
        blocks, _ = self.compiled._coerce_blocks(writer_blocks, out.dtype, check)
        cursor = self.chain.cursor(name) if self.chain.transforms(name) else None
        for _, _, w, src, dst in self._order:
            if cursor is None:
                out[dst] = blocks[w][src]
            else:
                cursor.apply_block_into(blocks[w][src], out[dst])
        if cursor is not None:
            cursor.finish(monitor)
        return out


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def _boxes_key(boxes: Sequence[BoundingBox]) -> tuple:
    return tuple((b.start, b.count) for b in boxes)


def make_plan_key(
    writer_boxes: Sequence[BoundingBox],
    reader_boxes: Sequence[BoundingBox],
    gshape: Optional[Sequence[int]] = None,
    chain_hash: str = "",
) -> tuple:
    """Cache key for one (writer dist, reader dist, global shape) triple.

    ``chain_hash`` (the :class:`~repro.core.plugins.CompiledChain`
    digest) separates plans fused against different plug-in chains; the
    empty string is the plain, unfused plan.
    """
    return (
        _boxes_key(writer_boxes),
        _boxes_key(reader_boxes),
        tuple(gshape) if gshape is not None else None,
        chain_hash,
    )


class PlanCache:
    """Process-wide LRU cache of compiled redistribution plans.

    Shared by every CACHING_ALL stream in the process (paper's
    "distribution caching at both sides"); CACHING_LOCAL streams hold a
    private instance.  Thread-safe: the writer drainer thread and reader
    threads may race on it.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(
        self,
        writer_boxes: Sequence[BoundingBox],
        reader_boxes: Sequence[BoundingBox],
        gshape: Optional[Sequence[int]] = None,
        chain=None,
    ):
        """Return ``(plan, hit)`` — compiling on miss.

        Without ``chain`` the plan is a plain :class:`CompiledPlan`;
        with a :class:`~repro.core.plugins.CompiledChain` it is a
        :class:`FusedPlan`, cached under a chain-hash-extended key so
        the same geometry fused against different chains never collides.
        """
        chain_hash = chain.chain_hash if chain is not None else ""
        key = make_plan_key(writer_boxes, reader_boxes, gshape, chain_hash)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.stats.hits += 1
                return cached, True
            self.stats.misses += 1
            # Reuse already-compiled geometry for a new chain variant.
            base = self._plans.get(key[:3] + ("",)) if chain is not None else None
        # Compile outside the lock: O(M·N) box math can be slow.
        if base is None:
            base = CompiledPlan(compute_plan(writer_boxes, reader_boxes))
        plan = FusedPlan(base, chain) if chain is not None else base
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan, False

    def invalidate(
        self,
        writer_boxes: Sequence[BoundingBox],
        reader_boxes: Sequence[BoundingBox],
        gshape: Optional[Sequence[int]] = None,
    ) -> bool:
        """Drop every chain variant of one geometry (e.g. after
        ``update_writer_boxes``) — the plain plan and all fused plans
        share the (writer, reader, gshape) key prefix."""
        prefix = make_plan_key(writer_boxes, reader_boxes, gshape)[:3]
        with self._lock:
            stale = [k for k in self._plans if k[:3] == prefix]
            for k in stale:
                del self._plans[k]
            return bool(stale)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats = PlanCacheStats()


#: The process-wide cache backing CACHING_ALL streams.
global_plan_cache = PlanCache()


@dataclass(frozen=True)
class HandshakeCost:
    """Control-plane cost of establishing one exchange."""

    messages: int
    control_bytes: int
    steps_performed: tuple[str, ...]

    def __add__(self, other: "HandshakeCost") -> "HandshakeCost":
        return HandshakeCost(
            self.messages + other.messages,
            self.control_bytes + other.control_bytes,
            self.steps_performed + other.steps_performed,
        )


#: Bytes to describe one process's block (start+count per dim, 2 * 8B each,
#: conservatively for 3 dims + header).
_DIST_RECORD_BYTES = 64


class RedistributionEngine:
    """Stateful engine for one stream: plan caching + data movement."""

    def __init__(
        self,
        writer_boxes: Sequence[BoundingBox],
        reader_boxes: Sequence[BoundingBox],
        caching: CachingOption = CachingOption.NO_CACHING,
        batching: bool = False,
        monitor: Optional[PerfMonitor] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.caching = caching
        self.batching = batching
        self.monitor = monitor
        self.plan_cache = plan_cache
        self._writer_boxes = list(writer_boxes)
        self._reader_boxes = list(reader_boxes)
        self.compiled = self._compile()
        self.plan = self.compiled.plan
        #: Whether each side's gathered distribution is already cached.
        self._local_cached = False
        self._peer_cached = False
        self.handshakes_performed: list[HandshakeCost] = []

    def _compile(self) -> CompiledPlan:
        if self.plan_cache is not None:
            compiled, _ = self.plan_cache.get(self._writer_boxes, self._reader_boxes)
            return compiled
        return CompiledPlan(compute_plan(self._writer_boxes, self._reader_boxes))

    # ------------------------------------------------------------------
    def update_writer_boxes(self, writer_boxes: Sequence[BoundingBox]) -> None:
        """Distribution changed (e.g. particle counts moved): caches drop."""
        if self.plan_cache is not None:
            self.plan_cache.invalidate(self._writer_boxes, self._reader_boxes)
        self._writer_boxes = list(writer_boxes)
        self.compiled = self._compile()
        self.plan = self.compiled.plan
        self._local_cached = False
        self._peer_cached = False

    # -- handshake accounting ----------------------------------------------
    def handshake(self, num_variables: int = 1) -> HandshakeCost:
        """Account the control messages for one timestep's exchange.

        With batching, ``num_variables`` share one protocol round;
        without, each variable pays its own round.
        """
        if num_variables < 1:
            raise ValueError("num_variables must be >= 1")
        rounds = 1 if self.batching else num_variables
        total = HandshakeCost(0, 0, ())
        for _ in range(rounds):
            total = total + self._one_round()
        self.handshakes_performed.append(total)
        return total

    def _one_round(self) -> HandshakeCost:
        M, N = self.plan.num_writers, self.plan.num_readers
        messages = 0
        ctrl = 0
        steps: list[str] = []

        do_step1 = not (
            self.caching in (CachingOption.CACHING_LOCAL, CachingOption.CACHING_ALL)
            and self._local_cached
        )
        do_step23 = not (self.caching is CachingOption.CACHING_ALL and self._peer_cached)

        if do_step1:
            # 1.s / 1.a: coordinators gather local distributions.
            messages += (M - 1) + (N - 1)
            ctrl += (M - 1 + N - 1) * _DIST_RECORD_BYTES
            steps.append("gather_local")
            self._local_cached = True
        if do_step23:
            # 2: coordinators exchange aggregate distributions.
            messages += 2
            ctrl += M * _DIST_RECORD_BYTES + N * _DIST_RECORD_BYTES
            # 3: broadcast the peer-side distribution to all processes.
            messages += (M - 1) + (N - 1)
            ctrl += (M - 1) * N * _DIST_RECORD_BYTES + (N - 1) * M * _DIST_RECORD_BYTES
            steps.append("exchange_and_broadcast")
            self._peer_cached = True
        return HandshakeCost(messages, ctrl, tuple(steps))

    def data_message_count(self, num_variables: int = 1) -> int:
        """Step-4 stride messages for one timestep."""
        per_round = self.plan.data_message_count()
        return per_round if self.batching else per_round * num_variables

    # -- actual data movement ----------------------------------------------
    def move(
        self, writer_blocks: Sequence[np.ndarray], fill: float = 0
    ) -> list[np.ndarray]:
        """Redistribute one variable: writer blocks in → reader blocks out.

        ``writer_blocks[i]`` must have shape ``writer_boxes[i].count``.
        Returns one array per reader with shape ``reader_boxes[j].count``.
        Exactly the strides of the plan are copied — no all-to-all
        broadcast, mirroring the packed-stride sends of step 4.
        """
        dtype = np.asarray(writer_blocks[0]).dtype
        nbytes_moved = 0
        span = (
            self.monitor.span("redistribute", "move", pairs=len(self.plan.pairs))
            if self.monitor is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            outputs = self.compiled.execute(writer_blocks, dtype=dtype, fill=fill)
            nbytes_moved = self.compiled.elements_moved * dtype.itemsize
        finally:
            if span is not None:
                span.add_bytes(nbytes_moved)
                span.__exit__(None, None, None)
        if self.monitor:
            self.monitor.record(
                "redistribution",
                "move",
                start=0.0,
                duration=0.0,
                nbytes=nbytes_moved,
                pairs=len(self.plan.pairs),
            )
            self.monitor.metrics.counter("redistribution.bytes_moved").inc(nbytes_moved)
            self.monitor.metrics.counter("redistribution.stride_messages").inc(
                len(self.plan.pairs)
            )
        return outputs

    # -- timing helpers ------------------------------------------------------
    def writer_visible_time(
        self,
        itemsize: int,
        num_variables: int,
        transfer_time: Callable[[int, int, int], float],
        control_time: Callable[[int], float],
        asynchronous: bool,
        local_copy_bw: float = 10e9,
    ) -> float:
        """Time the *writer* observes for one timestep's output.

        ``transfer_time(writer, reader, nbytes)`` prices one stride send;
        ``control_time(nbytes)`` one control message.  Synchronous writes
        block for handshake + the writer's slowest send sequence; async
        writes pay only the copy into FlexIO's send buffers.
        """
        hs = self.handshake(num_variables)
        t_ctrl = hs.messages * control_time(_DIST_RECORD_BYTES)
        per_writer_bytes = [0] * self.plan.num_writers
        for p in self.plan.pairs:
            per_writer_bytes[p.writer] += p.nbytes(itemsize) * (
                1 if self.batching else num_variables
            )
        if asynchronous:
            # Buffer copy only; movement overlaps computation.
            worst = max(per_writer_bytes) if per_writer_bytes else 0
            return worst / local_copy_bw + (0.0 if self.caching is CachingOption.CACHING_ALL else t_ctrl)
        worst = 0.0
        for w in range(self.plan.num_writers):
            t = 0.0
            for p in self.plan.sends_of(w):
                n = p.nbytes(itemsize) * (1 if self.batching else num_variables)
                t += transfer_time(p.writer, p.reader, n)
            worst = max(worst, t)
        return t_ctrl + worst
