"""The FLEXPATH stream I/O method (paper Section II.B).

Stream mode keeps the file metaphor: the simulation *creates a file* with
a unique name, the analytics *opens* it — but underneath, the open
resolves the name at the directory server and connects to the writing
program.  Writers then emit timesteps; readers consume them (process-group
or global-array pattern); when the writer closes the file, readers receive
End-of-Stream from their next read.  Because the API is the ADIOS file
API, stream and file modes interchange without code changes.

The data plane behind ``end_step`` is pipelined: sealing a
step (running writer-side DC plug-ins) happens on the writer's thread,
then the step is handed to a bounded background **drainer** that pushes
the payload through the selected SHM/RDMA channel.  With ``sync=false``
(the default) the writer-visible span covers only the seal + buffer
hand-off; ``sync=true`` blocks until the transport drain completes —
so ``writer_visible`` is a *measured* span, not a formula.

Reads are served from a **plan cache**: with CACHING_LOCAL/CACHING_ALL
the (writer boxes, selection) overlap geometry is compiled once to bare
numpy slice assignments and replayed on subsequent steps.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.adios.api import (
    EndOfStream,
    IoMethod,
    RankContext,
    ReadHandle,
    StepLost,
    StepNotReady,
    StreamFailure,
    VariableNotFound,
    WriteHandle,
    register_method,
    resolve_read_args,
)
from repro.adios.config import MethodSpec
from repro.adios.model import Group, ProcessGroupData, WrittenVar
from repro.adios.selection import BoundingBox, assemble, intersect, resolve_selection
from repro.analysis import sanitize
from repro.core.directory import CoordinatorInfo, DirectoryError, DirectoryServer
from repro.core.hints import (
    BATCHING,
    BUFFER_STEPS,
    CACHING,
    CACHING_ALL,
    CACHING_LOCAL,
    CACHING_NONE,
    DEGRADE_AFTER,
    FAULTS,
    FUSED,
    LEASE,
    PUSHDOWN,
    MAX_RETRIES,
    QUEUE_DEPTH,
    RETRY_BACKOFF,
    RETRY_JITTER,
    RETRY_TIMEOUT,
    STREAM_METHODS,
    SYNC,
    TRACE,
    TRANSACTIONAL,
    TRANSPORT,
    TRANSPORT_RDMA,
    TRANSPORT_SHM,
    TRANSPORT_TCP,
    XPMEM,
    validate_spec,
)
from repro.core.redistribution import (
    CachingOption,
    CompiledPlan,
    FusedPlan,
    PlanCache,
    RedistributionEngine,
    compute_plan,
    global_plan_cache,
)
from repro.core.monitoring import PerfMonitor
from repro.core.plugins import (
    CodeletError,
    PluginManager,
    PluginSide,
    combine_predicates,
    parse_predicate,
)
from repro.obs import recorder as flight
from repro.obs.events import (
    EV_BACKPRESSURE,
    EV_DEGRADE,
    EV_DRAIN_WEDGED,
    EV_QUEUE_HIGH_WATER,
    EV_RETRY,
    EV_STEP_ABORTED,
    EV_STEP_BEGIN,
    EV_STEP_COMMIT,
    EV_STEP_LOST,
    EV_STREAM_FAILED,
)
from repro.core.resilience import (
    MovementFailed,
    Participant,
    RetryPolicy,
    TransactionAborted,
    TransactionCoordinator,
)
from repro.transport.buffers import WireBuffer, WireVector
from repro.transport.faults import (
    TransportFault,
    injector_from_env,
    parse_fault_spec,
)
from repro.util import rng


class StreamStalled(StepNotReady):
    """No published step is available yet (writer still running)."""


class StreamError(RuntimeError):
    """Protocol misuse on a stream."""


class StepState(Enum):
    """Delivery state of one published step."""

    PENDING = "pending"      # sealed, still in the drain pipeline
    COMMITTED = "committed"  # drained successfully; readable
    LOST = "lost"            # retries exhausted; payload discarded
    ABORTED = "aborted"      # its transaction aborted; payload discarded


#: Graceful-degradation ladder: on repeated drain failure the stream falls
#: back to the next transport down, ending at buffered-only (no channel).
_DEGRADE_LADDER: dict[str, Optional[str]] = {
    TRANSPORT_RDMA: TRANSPORT_TCP,
    TRANSPORT_TCP: TRANSPORT_SHM,
    TRANSPORT_SHM: None,
}

#: Methods that run on (or in lock-step with) the drainer thread.  The
#: FlexLint FXL005 rule checks every ``self.<attr>`` assignment inside
#: these against :data:`DRAINER_SHARED_STATE` — an attribute mutated from
#: the drainer without being declared here fails the lint, forcing the
#: author to think about its synchronization.
DRAINER_METHODS = frozenset({
    "_run",
    "_drain_one",
    "_send_with_retries",
    "_drain_transactional",
    "_mark_lost",
    "_maybe_degrade",
    "_commit",
})

#: Attributes the drainer thread is allowed to mutate.  ``_published`` /
#: ``peak_buffered_bytes`` / ``backpressure_events`` are guarded by
#: ``_publish_lock``; ``_pending`` by ``_pending_lock``; ``_channel`` /
#: ``active_transport`` / ``_consecutive_failures`` are drainer-private
#: (the drainer is their only writer after pipeline start).
DRAINER_SHARED_STATE = frozenset({
    "_pending",
    "_published",
    "_consecutive_failures",
    "_channel",
    "active_transport",
    "peak_buffered_bytes",
    "backpressure_events",
})


@dataclass(frozen=True)
class StreamHints:
    """Transport tuning hints parsed from the XML ``<method>`` parameters.

    The paper's Section IV.B.1 knobs: handshake caching, variable
    batching, synchronous vs asynchronous writes, the XPMEM path, and the
    buffering depth (backpressure threshold).  ``queue_depth`` bounds the
    async drainer's hand-off queue (steps in flight before the writer
    blocks); ``transport`` picks the drain channel (``shm``/``rdma``).
    """

    caching: CachingOption = CachingOption.NO_CACHING
    batching: bool = False
    sync: bool = False
    xpmem: bool = False
    buffer_steps: int = 4
    #: Enable span tracing on the stream's monitor (``trace=true``).
    trace: bool = False
    #: Bounded depth of the async publication queue (back-pressure point).
    queue_depth: int = 2
    #: Drain channel: ``shm`` (intra-node) or ``rdma`` (inter-node).
    transport: str = "shm"
    #: All-or-nothing step visibility via two-phase commit across ranks.
    transactional: bool = False
    #: Bounded retries per step drain (paper's timeout-and-retry).
    max_retries: int = 3
    #: Per-send timeout (seconds); also the backoff base delay.
    retry_timeout: float = 0.25
    #: Exponential backoff multiplier between retries.
    retry_backoff: float = 2.0
    #: Jitter fraction added to backoff delays (decorrelates ranks).
    retry_jitter: float = 0.1
    #: Fault-injection schedule for the drain channel (chaos testing),
    #: e.g. ``rate=0.1,seed=7,kinds=timeout|torn``.
    faults: str = ""
    #: Consecutive failed steps before degrading to the next transport
    #: down the ladder (0 disables degradation).
    degrade_after: int = 2
    #: Directory lease in seconds; the writer must heartbeat within it or
    #: the failure detector ends the stream for readers (0 = no lease).
    lease: float = 0.0
    #: Fuse compilable plug-in chains into the redistribution plan so
    #: reads run the chain while scattering (single pass); ``false``
    #: keeps the classic interpreted pass over materialized arrays.
    fused: bool = True
    #: Register reader block predicates with the directory so the drain
    #: skips sending blocks the chain provably drops.
    pushdown: bool = False

    @classmethod
    def from_spec(cls, spec: MethodSpec) -> "StreamHints":
        # Unknown keys are a hard error with a suggestion (the registry
        # is the single source of hint truth), not a silently-ignored
        # parameter as in the old scattered-literal days.
        validate_spec(spec)
        raw = (spec.param(CACHING, CACHING_NONE) or CACHING_NONE).strip().lower()
        mapping = {
            CACHING_NONE: CachingOption.NO_CACHING,
            CACHING_LOCAL: CachingOption.CACHING_LOCAL,
            CACHING_ALL: CachingOption.CACHING_ALL,
        }
        if raw not in mapping:
            raise StreamError(
                f"unknown caching hint {raw!r}; expected none/local/all"
            )
        transport = (
            spec.param(TRANSPORT, TRANSPORT_SHM) or TRANSPORT_SHM
        ).strip().lower()
        if transport not in (TRANSPORT_SHM, TRANSPORT_RDMA):
            raise StreamError(
                f"unknown transport hint {transport!r}; expected shm/rdma"
            )
        return cls(
            caching=mapping[raw],
            batching=spec.param_bool(BATCHING, False),
            sync=spec.param_bool(SYNC, False),
            xpmem=spec.param_bool(XPMEM, False),
            buffer_steps=spec.param_int(BUFFER_STEPS, 4),
            trace=spec.param_bool(TRACE, False),
            queue_depth=spec.param_int(QUEUE_DEPTH, 2),
            transport=transport,
            transactional=spec.param_bool(TRANSACTIONAL, False),
            max_retries=spec.param_int(MAX_RETRIES, 3),
            retry_timeout=spec.param_float(RETRY_TIMEOUT, 0.25),
            retry_backoff=spec.param_float(RETRY_BACKOFF, 2.0),
            retry_jitter=spec.param_float(RETRY_JITTER, 0.1),
            faults=spec.param(FAULTS, "") or "",
            degrade_after=spec.param_int(DEGRADE_AFTER, 2),
            lease=spec.param_float(LEASE, 0.0),
            fused=spec.param_bool(FUSED, True),
            pushdown=spec.param_bool(PUSHDOWN, False),
        )


@dataclass
class _PublishedStep:
    """One completed timestep: every writer rank's process group."""

    step: int
    groups: dict[int, ProcessGroupData] = field(default_factory=dict)
    #: Span context of the publish (write) span; readers parent their
    #: spans on it so the whole timestep shares one trace ID.  ``None``
    #: when tracing is off or this step's trace was sampled out.
    trace_ctx: Optional[object] = None
    #: Delivery state; only COMMITTED steps are readable.
    status: StepState = StepState.PENDING
    #: Why a LOST/ABORTED step failed (repr of the final exception).
    error: Optional[str] = None

    @property
    def nbytes(self) -> int:
        return sum(g.nbytes for g in self.groups.values())

    def var_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for g in self.groups.values():
            for name in g.variables:
                seen.setdefault(name, None)
        return list(seen)


class _StepDrainer:
    """Bounded background thread pushing sealed steps through a channel.

    The writer hands each :class:`_PublishedStep` to :meth:`submit`;
    once the queue holds ``queue_depth`` undrained steps the writer
    blocks (back-pressure, counted in ``dataplane.backpressure_waits``).
    Every step ends up in the stream's published list exactly once —
    COMMITTED when the drain succeeded, LOST/ABORTED when it did not —
    so readers never hang on a failed step and never see torn data.
    """

    def __init__(self, state: "StreamState", queue_depth: int) -> None:
        self._state = state
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, int(queue_depth)))
        self._pending = 0
        self._pending_lock = sanitize.make_lock("drain.pending")
        self._idle = threading.Event()
        self._idle.set()
        self._stopped = False
        #: Highest queue depth seen so far (writer thread only).
        self._high_water = 0
        #: True when stop() timed out joining a stuck drain thread.
        self.wedged = False
        # Captured at construction: near-zero overhead when disabled.
        self._san = sanitize.get()
        self._thread = threading.Thread(
            target=self._run, name=f"flexio-drain-{state.name}", daemon=True
        )
        self._thread.start()
        if self._san is not None:
            self._san.note_thread_started(self._thread, f"drainer:{state.name}")

    def submit(self, step: _PublishedStep, rank_parts: dict) -> None:
        mon = self._state.monitor
        with self._pending_lock:
            self._pending += 1
            self._idle.clear()
        item = (step, rank_parts)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self._state.backpressure_waits += 1
            mon.metrics.counter("dataplane.backpressure_waits").inc()
            flight.record(
                EV_BACKPRESSURE, stream=self._state.name, step=step.step
            )
            self._queue.put(item)
        depth = mon.metrics.gauge("dataplane.drain.queue_depth")
        depth.inc()
        if depth.value > self._high_water:
            self._high_water = depth.value
            flight.record(
                EV_QUEUE_HIGH_WATER, stream=self._state.name,
                depth=int(self._high_water),
            )

    def wait_idle(self) -> None:
        """Block until every submitted step has been drained + committed."""
        self._idle.wait()

    def stop(self, timeout: float = 10.0) -> bool:
        """Stop the drain thread; returns False if it is wedged.

        Idempotent: repeat calls (double-close, registry reset after an
        explicit shutdown) are no-ops.  A thread still alive after the
        join timeout is marked ``wedged`` and left behind (it is a
        daemon), counted in ``dataplane.drain.wedged`` so the hang is
        observable instead of silently blocking close forever.
        """
        if self._stopped:
            return not self.wedged
        self._stopped = True
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass  # the polling loop sees _stopped once the queue drains
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            self.wedged = True
            mon = self._state.monitor
            mon.metrics.counter("dataplane.drain.wedged").inc()
            mon.record(
                "drain_wedged", self._state.name, start=0.0, duration=0.0,
                timeout=timeout,
            )
            flight.record(
                EV_DRAIN_WEDGED, stream=self._state.name, timeout=timeout
            )
            flight.dump_on_fault(
                "drain wedged", stream=self._state.name, monitor=mon
            )
            return False
        if self._san is not None:
            self._san.note_thread_joined(self._thread)
        return True

    def _run(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopped:
                    return
                continue
            if item is None:
                return
            step, rank_parts = item
            try:
                self._state._drain_one(step, rank_parts)
            finally:
                self._state.monitor.metrics.gauge(
                    "dataplane.drain.queue_depth"
                ).dec()
                with self._pending_lock:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.set()


class StreamState:
    """Shared state of one named stream: buffered steps + membership."""

    def __init__(
        self,
        name: str,
        monitor: Optional[PerfMonitor] = None,
        hints: Optional[StreamHints] = None,
    ) -> None:
        self.name = name
        self.monitor = monitor or PerfMonitor()
        self.hints = hints or StreamHints()
        if self.hints.trace:
            self.monitor.enable_tracing()
        #: Times a publish exceeded the hinted buffering depth.
        self.backpressure_events = 0
        #: Times the writer blocked on a full drain queue (async pipeline).
        self.backpressure_waits = 0
        self.plugins = PluginManager(self.monitor)
        self._published: list[_PublishedStep] = []
        self._publish_lock = sanitize.make_lock("stream.publish")
        self._current: dict[int, ProcessGroupData] = {}
        self._step = 0
        self.writer_ranks: set[int] = set()
        self._advanced: set[int] = set()
        self._closed_ranks: set[int] = set()
        self.closed = False
        #: Why the stream ended abnormally (writer death, lease expiry);
        #: None for a clean close.
        self.error: Optional[str] = None
        #: High-water mark of buffered bytes (backpressure visibility).
        self.peak_buffered_bytes = 0
        self._drainer: Optional[_StepDrainer] = None
        self._channel = None
        #: Transport currently draining steps; degrades down the ladder
        #: (rdma → shm → "buffered") on repeated failure.
        self.active_transport = self.hints.transport
        #: Directory this stream is registered at (set by the registry);
        #: heartbeats and reader-side failure detection go through it.
        self._directory: Optional[DirectoryServer] = None
        # Fault schedule: the per-stream hint wins over FLEXIO_FAULTS.
        self._injector = parse_fault_spec(self.hints.faults) or injector_from_env()
        self._retry_policy = RetryPolicy(
            max_retries=self.hints.max_retries,
            timeout=self.hints.retry_timeout,
            backoff_factor=self.hints.retry_backoff,
            jitter=self.hints.retry_jitter,
        )
        # Per-stream deterministic jitter source (stable across runs).
        self._retry_rng = rng(zlib.crc32(name.encode("utf-8")))
        self._consecutive_failures = 0

    # -- async pipeline -----------------------------------------------------
    @property
    def published(self) -> list[_PublishedStep]:
        """Committed steps; waits for in-flight drains first so callers
        observe the same ordering the synchronous data plane had."""
        self._quiesce()
        return self._published

    def _quiesce(self) -> None:
        if self._drainer is not None:
            self._drainer.wait_idle()

    def _ensure_pipeline(self) -> None:
        if self._drainer is None:
            from repro.core.runtime import make_stream_channel

            self._channel = make_stream_channel(
                self.active_transport, monitor=self.monitor,
                injector=self._injector,
            )
            self._drainer = _StepDrainer(self, self.hints.queue_depth)

    def shutdown_pipeline(self) -> None:
        """Stop the drainer thread and close the drain channel.

        Idempotent: the drainer/channel references are swapped out before
        teardown, so a double close (or a close racing a registry reset)
        finds nothing left to do.
        """
        drainer, self._drainer = self._drainer, None
        if drainer is not None:
            drainer.stop()
        channel, self._channel = self._channel, None
        if channel is not None:
            close = getattr(channel, "close", None)
            try:
                if close is not None:
                    close()
            # flexlint: ok(FXL001) best-effort close of an arbitrary channel during teardown
            except Exception:
                pass

    # -- writer side --------------------------------------------------------
    def writer_join(self, rank: int) -> None:
        if self.closed:
            raise StreamError(f"stream {self.name!r} already closed")
        self.writer_ranks.add(rank)

    def write(self, rank: int, wv: WrittenVar) -> None:
        if self.closed or rank in self._closed_ranks:
            raise StreamError("write on a closed stream handle")
        pg = self._current.get(rank)
        if pg is None:
            pg = ProcessGroupData(rank=rank, step=self._step)
            self._current[rank] = pg
        pg.add(wv)

    def end_rank_step(self, rank: int, sync: Optional[bool] = None) -> None:
        if self.closed:
            raise StreamError(f"end_step on ended stream {self.name!r}: {self.error}")
        if rank not in self.writer_ranks:
            raise StreamError(f"rank {rank} never joined stream {self.name!r}")
        self._advanced.add(rank)
        live = self.writer_ranks - self._closed_ranks
        if self._advanced >= live:
            self._publish(sync=sync)

    def _publish(self, sync: Optional[bool] = None) -> None:
        """Seal the current step, hand it to the drain pipeline.

        ``sync=True`` blocks until the step has cleared the transport
        (paper's synchronous writes); ``sync=False`` returns as soon as
        the step is queued.  ``None`` defers to the stream hint.  Either
        way the elapsed wall time lands in the ``writer_visible``
        measurement category.
        """
        if sync is None:
            sync = self.hints.sync
        step = _PublishedStep(self._step)
        with self.monitor.measure(
            "writer_visible", self.name, step=self._step, sync=bool(sync)
        ) as vis:
            # Root span of this timestep's trace: everything downstream
            # (the reader's redistribute/transport/plug-in spans and the
            # drainer's channel spans) parents on it.
            with self.monitor.span("write", self.name, step=self._step) as wspan:
                if not self.plugins.has_side(PluginSide.WRITER):
                    # No writer-side conditioning: the sealed step reuses
                    # the written groups directly (no dict round-trip, no
                    # per-variable rewrap).
                    for rank, pg in sorted(self._current.items()):
                        step.groups[rank] = pg
                else:
                    for rank, pg in sorted(self._current.items()):
                        record = {name: wv.data for name, wv in pg.variables.items()}
                        conditioned = self.plugins.apply_side(PluginSide.WRITER, record)
                        out = ProcessGroupData(rank=rank, step=pg.step)
                        for name, data in conditioned.items():
                            orig = pg.variables.get(name)
                            out.add(
                                WrittenVar(
                                    name=name,
                                    data=np.asarray(data),
                                    box=orig.box if orig is not None and _same_shape(orig, data) else None,
                                    global_shape=orig.global_shape if orig is not None else None,
                                )
                            )
                        step.groups[rank] = out
                wspan.add_bytes(step.nbytes)
                step.trace_ctx = wspan.context
            vis.add_bytes(step.nbytes)
            self._ensure_pipeline()
            flight.record(
                EV_STEP_BEGIN, stream=self.name,
                step=step.step, nbytes=step.nbytes,
            )
            self._drainer.submit(
                step,
                _rank_parts(
                    step,
                    predicate=self._pushdown_predicate(),
                    metrics=self.monitor.metrics,
                ),
            )
            if sync:
                self._drainer.wait_idle()
        self._current = {}
        self._advanced = set()
        self._step += 1
        if self._directory is not None:
            # Liveness signal for the lease-based failure detector; a
            # concurrently-unregistered name is not the writer's problem.
            try:
                self._directory.heartbeat(self.name)
            except DirectoryError:
                pass
        if sync and step.status is not StepState.COMMITTED:
            # Synchronous writes surface the loss to the writer (the
            # paper's error-reporting contract); the step is already in
            # the published list as LOST/ABORTED so readers see the gap.
            if step.status is StepState.ABORTED:
                raise TransactionAborted(
                    f"step {step.step} of {self.name!r} aborted: {step.error}"
                )
            raise MovementFailed(
                f"step {step.step} of {self.name!r} lost: {step.error}"
            )

    def _pushdown_predicate(self):
        """The combined reader block predicate for this step's drain.

        Only consulted with ``pushdown=true``: readers register their
        chain's serialized predicate at the directory, and a block is
        skipped only when *every* registered predicate provably drops it
        (no predicate registered → everything is sent).
        """
        if not self.hints.pushdown or self._directory is None:
            return None
        try:
            specs = self._directory.predicates_of(self.name)
        except DirectoryError:
            return None
        preds = []
        for spec in specs:
            try:
                pred = parse_predicate(spec)
            except CodeletError:
                return None  # unintelligible predicate: never skip
            if pred is None:
                return None  # a reader with no predicate needs everything
            preds.append(pred)
        return combine_predicates(preds)

    def _drain_one(self, step: _PublishedStep, rank_parts: dict) -> None:
        """Drainer-thread body: push one step's payload, then commit it.

        A step is committed **only** when its payload cleared the
        transport (or its transaction committed); a step whose retries
        were exhausted is marked LOST/ABORTED with its buffers discarded,
        so readers get a typed gap instead of torn or silently-dropped
        data.
        """
        mon = self.monitor
        err: Optional[Exception] = None
        with mon.measure("drain", self.name, step=step.step) as mp:
            mp.add_bytes(step.nbytes)
            with mon.span(
                "drain", self.name, parent=step.trace_ctx, step=step.step
            ):
                if self.hints.transactional and step.groups:
                    err = self._drain_transactional(step, rank_parts)
                else:
                    parts = WireVector(
                        p for r in sorted(rank_parts) for p in rank_parts[r]
                    )
                    err = self._send_with_retries(step, parts)
        if err is None:
            self._consecutive_failures = 0
            self._commit(step)
        else:
            mon.metrics.counter("dataplane.drain.errors").inc()
            mon.record(
                "drain_error", self.name, start=0.0, duration=0.0,
                step=step.step, error=repr(err),
            )
            self._mark_lost(step, err)
            self._consecutive_failures += 1
            self._maybe_degrade()

    def _send_with_retries(self, step: _PublishedStep, parts: WireVector):
        """Push one payload under the stream's retry policy.

        Returns None on success, the final exception on failure.  Only
        transport faults and timeouts are retriable — anything else
        (a programming error in the channel) fails the step immediately.
        Each injected-and-survived fault shows up as a ``drain_fault``
        record plus a retry counter; a send that eventually succeeds
        increments ``dataplane.drain.recovered``.
        """
        if not parts or self._channel is None:
            return None
        mon = self.monitor
        policy = self._retry_policy
        last: Optional[Exception] = None
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                mon.metrics.counter("dataplane.drain.retries").inc()
                flight.record(
                    EV_RETRY, stream=self.name, step=step.step, attempt=attempt
                )
                delay = policy.delay_before(attempt, rng=self._retry_rng)
                if delay > 0:
                    time.sleep(delay)
            try:
                with mon.span(
                    "drain_attempt", self.name, parent=step.trace_ctx,
                    step=step.step, attempt=attempt,
                ):
                    self._channel.sendv(parts, timeout=policy.timeout)
                    ack = self._channel.recv(timeout=policy.timeout)
                    if isinstance(ack, WireBuffer) and not ack.released:
                        # The drain is its own consumer (the DC plugin
                        # side already observed the data): releasing the
                        # span returns the pool/registration lease.
                        ack.release()
                if attempt > 0:
                    mon.metrics.counter("dataplane.drain.recovered").inc()
                    mon.record(
                        "drain_recovered", self.name, start=0.0, duration=0.0,
                        step=step.step, attempts=attempt + 1,
                    )
                return None
            except (TransportFault, TimeoutError) as exc:
                last = exc
                mon.metrics.counter("dataplane.drain.faults").inc()
                mon.record(
                    "drain_fault", self.name, start=0.0, duration=0.0,
                    step=step.step, attempt=attempt, error=repr(exc),
                )
            # flexlint: ok(FXL001) deliberate non-retriable classifier: any non-fault error fails the step
            except Exception as exc:
                last = exc
                mon.metrics.counter("dataplane.drain.faults").inc()
                mon.record(
                    "drain_fault", self.name, start=0.0, duration=0.0,
                    step=step.step, attempt=attempt, error=repr(exc),
                )
                break  # non-retriable
        return last

    def _drain_transactional(self, step: _PublishedStep, rank_parts: dict):
        """All-or-nothing step visibility: 2PC across the writer ranks.

        Each rank's prepare vote is its own reliable send; only when
        every rank's payload cleared the transport does the coordinator
        commit (and the caller flips the step COMMITTED).  Any abort
        discards the whole step.  Returns None on commit, the abort
        exception otherwise.
        """
        ranks = sorted(step.groups)

        def make_prepare(r: int):
            def prepare(_step: int, _payload: dict) -> bool:
                return self._send_with_retries(step, rank_parts.get(r, [])) is None

            return prepare

        participants = [
            Participant(r, lambda _s, _p: None, prepare_fn=make_prepare(r))
            for r in ranks
        ]
        coordinator = TransactionCoordinator(participants)
        mon = self.monitor
        try:
            coordinator.run(step.step, {r: {} for r in ranks})
        except TransactionAborted as exc:
            mon.metrics.counter("dataplane.tx.aborted").inc()
            return exc
        mon.metrics.counter("dataplane.tx.committed").inc()
        return None

    def _mark_lost(self, step: _PublishedStep, exc: Exception) -> None:
        """Record a failed step: payload discarded, typed gap published."""
        step.status = (
            StepState.ABORTED
            if isinstance(exc, TransactionAborted)
            else StepState.LOST
        )
        step.error = repr(exc)
        step.groups.clear()  # free the buffers; never torn-visible
        mon = self.monitor
        mon.metrics.counter("dataplane.drain.steps_lost").inc()
        mon.record(
            "step_lost", self.name, start=0.0, duration=0.0,
            step=step.step, status=step.status.value, error=step.error,
        )
        code = (
            EV_STEP_ABORTED if step.status is StepState.ABORTED else EV_STEP_LOST
        )
        flight.record(code, stream=self.name, step=step.step, error=step.error)
        flight.dump_on_fault(
            f"step {step.step} {step.status.value}",
            stream=self.name, monitor=mon,
        )
        with self._publish_lock:
            self._published.append(step)

    def _maybe_degrade(self) -> None:
        """Graceful degradation: fall down the transport ladder.

        After ``degrade_after`` consecutive failed steps the stream
        closes its channel and rebuilds the next transport down
        (rdma → shm → buffered-only).  Runs on the drainer thread, which
        is the only user of the channel, so the swap is race-free.
        """
        threshold = self.hints.degrade_after
        if threshold <= 0 or self._consecutive_failures < threshold:
            return
        nxt = _DEGRADE_LADDER.get(self.active_transport)
        previous = self.active_transport
        channel, self._channel = self._channel, None
        if channel is not None:
            close = getattr(channel, "close", None)
            try:
                if close is not None:
                    close()
            # flexlint: ok(FXL001) best-effort close of the failing channel before falling back
            except Exception:
                pass
        if nxt is None:
            self.active_transport = "buffered"
        else:
            from repro.core.runtime import make_stream_channel

            self._channel = make_stream_channel(
                nxt, monitor=self.monitor, injector=self._injector
            )
            self.active_transport = nxt
        self._consecutive_failures = 0
        self.monitor.metrics.counter("dataplane.transport.degradations").inc()
        self.monitor.record(
            "transport_degraded", self.name, start=0.0, duration=0.0,
            src=previous, dst=self.active_transport,
        )
        flight.record(
            EV_DEGRADE, stream=self.name, src=previous, dst=self.active_transport
        )

    def _commit(self, step: _PublishedStep) -> None:
        step.status = StepState.COMMITTED
        with self._publish_lock:
            self._published.append(step)
            buffered = sum(s.nbytes for s in self._published)
            self.peak_buffered_bytes = max(self.peak_buffered_bytes, buffered)
            if len(self._published) > self.hints.buffer_steps:
                # In the real transport the writer would stall here; in the
                # in-process harness we surface it through monitoring.
                self.backpressure_events += 1
        mon = self.monitor
        mon.metrics.counter("dataplane.drain.steps_committed").inc()
        mon.metrics.counter("dataplane.drain.bytes_committed").inc(step.nbytes)
        mon.record(
            "stream_publish", self.name, start=0.0, duration=0.0, nbytes=step.nbytes
        )
        flight.record(
            EV_STEP_COMMIT, stream=self.name, step=step.step, nbytes=step.nbytes
        )

    def writer_close(self, rank: int) -> None:
        self._closed_ranks.add(rank)
        self._advanced.discard(rank)
        if self._closed_ranks >= self.writer_ranks:
            # Publish any partial step implicitly, then end the stream.
            if self._current:
                try:
                    self._publish()
                except (MovementFailed, TransactionAborted):
                    pass  # close never raises; the loss is already recorded
            self._quiesce()
            self.closed = True
            self.shutdown_pipeline()

    def fail(self, reason: str) -> None:
        """End the stream abnormally (writer death / lease expiry).

        Any partially-written step is discarded — readers must never see
        torn data — and the stream closes with ``error`` set, so their
        next ``begin_step`` reports :attr:`StepStatus.OtherError` through
        :class:`~repro.adios.api.StreamFailure` instead of stalling
        forever on a dead writer.
        """
        if self.closed:
            return
        self.error = reason
        self._current = {}
        self._advanced = set()
        self.closed = True
        self.monitor.metrics.counter("dataplane.stream.failures").inc()
        self.monitor.record(
            "stream_failed", self.name, start=0.0, duration=0.0, error=reason
        )
        flight.record(EV_STREAM_FAILED, stream=self.name, reason=reason)
        flight.dump_on_fault(
            f"stream failed: {reason}", stream=self.name, monitor=self.monitor
        )
        self.shutdown_pipeline()

    # -- reader side --------------------------------------------------------
    def step_available(self, index: int) -> bool:
        return index < len(self.published)

    def get_step(self, index: int) -> _PublishedStep:
        if not self.step_available(index):
            if not self.closed and self._directory is not None:
                # A stall may really be a dead writer: run the failure
                # detector before deciding what to tell the reader.
                try:
                    self._directory.reap()
                except DirectoryError:
                    pass
            if self.closed:
                if self.error is not None:
                    raise StreamFailure(f"stream {self.name!r} failed: {self.error}")
                raise EndOfStream(self.name)
            raise StreamStalled(f"step {index} of {self.name!r} not yet published")
        step = self._published[index]
        if step.status is not StepState.COMMITTED:
            raise StepLost(
                f"step {index} of {self.name!r} {step.status.value}: {step.error}"
            )
        return step


def _same_shape(orig: WrittenVar, data) -> bool:
    return tuple(np.shape(data)) == tuple(orig.data.shape)


def _step_parts(step: _PublishedStep) -> WireVector:
    """Flatten a step's variables to one scatter-gather vector for the
    channel (views over the written arrays — no copies here)."""
    vec = WireVector()
    for rank in sorted(step.groups):
        for wv in step.groups[rank].variables.values():
            if wv.data.nbytes:
                vec.append(wv.data)
    return vec


def _provably_dropped(predicate, wv: WrittenVar) -> bool:
    """True when the reader predicate proves no row of this block
    survives the chain — judged on conservative whole-block bounds."""
    data = wv.data
    if data.size == 0 or data.dtype.kind not in "fiu":
        return False
    return not predicate.might_match(
        wv.name, float(data.min()), float(data.max())
    )


def _rank_parts(
    step: _PublishedStep, predicate=None, metrics=None
) -> dict[int, WireVector]:
    """Per-rank scatter-gather vectors of a step's payload.

    The transactional drain sends each rank's vector as that rank's
    prepare; the plain drain flattens them (rank order) into one send.
    Parts are :class:`WireBuffer` views over the step's written arrays —
    the step holds those arrays until commit/loss, so the views stay
    valid across retries.

    With a reader ``predicate`` (pushdown), blocks the reader chain
    provably drops never enter the vectors — analytics placed on the
    I/O path saving the movement itself.  The step's buffered copy is
    untouched, so in-process reads stay exact.
    """
    out: dict[int, WireVector] = {}
    for rank in sorted(step.groups):
        vec = WireVector()
        for wv in step.groups[rank].variables.values():
            if not wv.data.nbytes:
                continue
            if predicate is not None and _provably_dropped(predicate, wv):
                if metrics is not None:
                    metrics.counter("plugin.blocks_skipped").inc()
                continue
            vec.append(wv.data)
        out[rank] = vec
    return out


class StreamRegistry:
    """Directory server + live stream states for one process."""

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self.directory = DirectoryServer(clock=clock)
        self._states: dict[str, StreamState] = {}

    def set_clock(self, clock) -> None:
        """Swap the injectable clock (tests) — propagates to the
        directory server so lease reaping is deterministic."""
        self._clock = clock
        self.directory.set_clock(clock)

    def create(
        self, name: str, ctx: RankContext, monitor=None, hints=None
    ) -> StreamState:
        state = self._states.get(name)
        if state is None or state.closed:
            if state is not None and state.closed:
                # Recycle a finished stream's name for a new run.
                self.directory.unregister(name)
            state = StreamState(name, monitor, hints)
            state._directory = self.directory
            self._states[name] = state
            # Coordinator (rank 0 by election) registers the name, with a
            # liveness lease when the stream hints ask for one.
            self.directory.register(
                name,
                CoordinatorInfo(
                    program="writer", coordinator_rank=0, num_ranks=ctx.size, contact=state
                ),
                lease=state.hints.lease or None,
            )
        return state

    def open(self, name: str, ctx: RankContext) -> StreamState:
        info = self.directory.lookup(
            name,
            CoordinatorInfo(program="reader", coordinator_rank=0, num_ranks=ctx.size),
        )
        return info.contact

    def close_stream(self, name: str) -> None:
        if name in self._states:
            self._states[name].shutdown_pipeline()
            try:
                self.directory.unregister(name)
            except DirectoryError:
                pass  # already unregistered (recycled name)

    def reset(self) -> None:
        for state in getattr(self, "_states", {}).values():
            try:
                state.shutdown_pipeline()
            # flexlint: ok(FXL001) reset must tear every stream down even if one close misbehaves
            except Exception:
                pass
        self.__init__(self._clock)


#: Process-global registry (the "network" all in-process programs share).
stream_registry = StreamRegistry()


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------

class FlexpathWriteHandle(WriteHandle):
    """Stream-mode writer for one rank.

    Step-oriented usage: ``begin_step() … write() … end_step()``;
    ``end_step(sync=True)`` forces one synchronous publish regardless of
    the stream's ``sync`` hint.
    """

    def __init__(self, state: StreamState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._closed = False
        state.writer_join(ctx.rank)

    @property
    def plugins(self) -> PluginManager:
        return self._state.plugins

    @property
    def monitor(self) -> PerfMonitor:
        """The stream's shared monitor (enable tracing / dump here)."""
        return self._state.monitor

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise StreamError("write after close")
        arr = np.asarray(data)
        if box is not None and tuple(arr.shape) != tuple(box.count):
            raise ValueError(f"data shape {arr.shape} != box count {box.count}")
        self._state.write(
            self._ctx.rank,
            WrittenVar(
                name=name,
                data=arr,
                box=box,
                global_shape=tuple(global_shape) if global_shape is not None else None,
            ),
        )

    def _advance(self, sync: Optional[bool] = None):
        if self._closed:
            raise StreamError("end_step after close")
        self._state.end_rank_step(self._ctx.rank, sync=sync)

    def close(self):
        if self._closed:
            return
        self._closed = True
        # The name stays registered so readers can still resolve the
        # stream and drain buffered steps; EndOfStream tells them it ended.
        self._state.writer_close(self._ctx.rank)


class FlexpathReadHandle(ReadHandle):
    """Stream-mode reader for one rank; End-of-Stream when writers close.

    Step-oriented usage: ``begin_step()`` returns
    :class:`~repro.adios.api.StepStatus` (``NotReady`` instead of a
    :class:`StreamStalled` raise), reads address the positioned step,
    ``end_step()`` releases it.
    """

    def __init__(self, state: StreamState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._cursor = 0
        # Handshake-protocol accounting per global-array variable: the
        # engine carries the caching state the XML hints select.
        self._hs_engines: dict[str, RedistributionEngine] = {}
        self._hs_boxes: dict[str, tuple] = {}
        self._hs_paid_steps: set[int] = set()
        self._local_plan_cache: Optional[PlanCache] = None
        # Chain hash last pushed to the directory (predicate pushdown).
        self._registered_pred_hash: Optional[str] = None

    @property
    def plugins(self) -> PluginManager:
        return self._state.plugins

    @property
    def monitor(self) -> PerfMonitor:
        """The stream's shared monitor (enable tracing / dump here)."""
        return self._state.monitor

    @property
    def current_step(self) -> int:
        return self._cursor

    def _step(self) -> _PublishedStep:
        return self._state.get_step(self._cursor)

    def _probe_step(self) -> None:
        # begin_step() readiness check for the handle's current cursor.
        self._state.get_step(self._cursor)

    def available_vars(self):
        return self._step().var_names()

    def _plan_cache(self) -> Optional[PlanCache]:
        """The plan cache the stream's caching hint selects.

        CACHING_ALL shares the process-wide cache (both sides keep every
        distribution), CACHING_LOCAL keeps a per-handle cache, NO_CACHING
        re-derives overlap geometry every read — the paper's protocol
        levels mapped onto the data plane.
        """
        caching = self._state.hints.caching
        if caching is CachingOption.CACHING_ALL:
            return global_plan_cache
        if caching is CachingOption.CACHING_LOCAL:
            if self._local_plan_cache is None:
                self._local_plan_cache = PlanCache(maxsize=64)
            return self._local_plan_cache
        return None

    def _reader_chain(self, name: str):
        """The compiled reader-side chain when fusion may engage for
        reads of ``name`` — else ``None`` (interpreted fallback).  Also
        the hook where pushdown predicates reach the directory."""
        state = self._state
        if not state.plugins.has_side(PluginSide.READER):
            return None
        chain = state.plugins.compiled_chain(PluginSide.READER)
        if state.hints.pushdown:
            self._maybe_register_predicate(chain)
        if chain is None or not state.hints.fused or not chain.supports(name):
            return None
        return chain

    def _maybe_register_predicate(self, chain) -> None:
        """Publish the chain's block predicate at the directory so the
        writer-side drain can skip blocks it provably drops.  Idempotent
        per chain generation; a chain without a predicate withdraws."""
        state = self._state
        if state._directory is None:
            return
        chain_hash = chain.chain_hash if chain is not None else ""
        if chain_hash == self._registered_pred_hash:
            return
        pred = chain.block_predicate() if chain is not None else None
        spec = pred.spec() if pred is not None else ""
        try:
            state._directory.register_predicate(
                state.name, f"reader-{id(self)}", spec
            )
        except DirectoryError:
            return
        self._registered_pred_hash = chain_hash

    def _fused_plan(self, boxes, target, gshape, chain, cache):
        """A fusable :class:`FusedPlan` for this read, or ``None``.

        Cached plans key on the chain hash (geometry reused across
        chains); NO_CACHING compiles afresh, mirroring the plain path.
        """
        mon = self._state.monitor
        if cache is not None:
            fplan, hit = cache.get(boxes, [target], gshape, chain=chain)
            mon.metrics.counter(
                "dataplane.plan_cache.hits" if hit
                else "dataplane.plan_cache.misses"
            ).inc()
        else:
            fplan = FusedPlan(CompiledPlan(compute_plan(boxes, [target])), chain)
        return fplan if fplan.fusable else None

    def read_block(self, name: str, writer_rank: int) -> np.ndarray:
        step = self._step()
        pg = step.groups.get(writer_rank)
        if pg is None or name not in pg.variables:
            raise VariableNotFound(
                f"no block for var {name!r} from writer {writer_rank} "
                f"at step {self._cursor}"
            )
        mon = self._state.monitor
        with mon.span(
            "read", name, parent=step.trace_ctx,
            step=self._cursor, writer_rank=writer_rank,
        ):
            with mon.span("transport", name, writer_rank=writer_rank) as tspan:
                record = {n: wv.data for n, wv in pg.variables.items()}
                tspan.add_bytes(sum(int(wv.data.nbytes) for wv in pg.variables.values()))
            if self._state.plugins.has_side(PluginSide.READER):
                record = self._state.plugins.apply_side(PluginSide.READER, record)
        mon.record(
            "stream_read", name, start=0.0, duration=0.0,
            nbytes=int(np.asarray(record[name]).nbytes),
        )
        return np.asarray(record[name])

    def read(self, name, *, start=None, count=None, selection=None) -> np.ndarray:
        start, count = resolve_read_args(selection, start, count)
        step = self._step()
        blocks = []
        gshape = None
        dtype = None
        for pg in step.groups.values():
            wv = pg.variables.get(name)
            if wv is None:
                continue
            dtype = wv.data.dtype
            if wv.global_shape is not None:
                gshape = wv.global_shape
            if wv.box is not None:
                blocks.append((wv.box, wv.data))
        if dtype is None:
            raise VariableNotFound(f"no variable {name!r} at step {self._cursor}")
        if gshape is None:
            raise StreamError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        target = resolve_selection(start, count, gshape)
        mon = self._state.monitor
        cache = self._plan_cache()
        plugins = self._state.plugins
        chain = self._reader_chain(name)
        with mon.span("read", name, parent=step.trace_ctx, step=self._cursor):
            with mon.span("redistribute", name, writers=len(blocks)):
                self._account_handshake(name, gshape, [b for b, _ in blocks])
            fplan = (
                self._fused_plan([b for b, _ in blocks], target, gshape, chain, cache)
                if chain is not None and blocks else None
            )
            if fplan is not None:
                # Single pass: the chain runs while wire spans scatter —
                # no materialized intermediate array.
                with mon.span(
                    "transport", name, fused=True, chain=chain.chain_hash
                ) as tspan:
                    result = fplan.execute(
                        [d for _, d in blocks], name,
                        dtype=dtype, check=False, monitor=mon,
                    )
                    tspan.add_bytes(int(result.nbytes))
                plugins.count_fused_read()
            else:
                with mon.span("transport", name) as tspan:
                    if cache is not None and blocks:
                        cplan, hit = cache.get([b for b, _ in blocks], [target], gshape)
                        mon.metrics.counter(
                            "dataplane.plan_cache.hits" if hit
                            else "dataplane.plan_cache.misses"
                        ).inc()
                        out = cplan.execute(
                            [d for _, d in blocks], dtype=dtype, check=False
                        )[0]
                    else:
                        out = assemble(
                            target,
                            ((b, d) for b, d in blocks if intersect(target, b) is not None),
                            dtype=dtype,
                        )
                    tspan.add_bytes(int(out.nbytes))
                if plugins.has_side(PluginSide.READER):
                    plugins.count_interpreted_read()
                    record = plugins.apply_side(PluginSide.READER, {name: out})
                    result = np.asarray(record[name])
                else:
                    result = out
        mon.record(
            "stream_read", name, start=0.0, duration=0.0, nbytes=int(result.nbytes)
        )
        return result

    def read_into(
        self, name, out: np.ndarray, *, start=None, count=None, selection=None
    ) -> np.ndarray:
        """Like :meth:`read`, but scatter the selection straight into the
        preallocated ``out`` array — the steady-state zero-allocation
        read path (incoming spans land in the reader's own buffer, no
        per-step ``np.empty``).  ``out`` must match the selection's shape
        and the variable's dtype; returns ``out``.
        """
        start, count = resolve_read_args(selection, start, count)
        step = self._step()
        blocks = []
        gshape = None
        dtype = None
        for pg in step.groups.values():
            wv = pg.variables.get(name)
            if wv is None:
                continue
            dtype = wv.data.dtype
            if wv.global_shape is not None:
                gshape = wv.global_shape
            if wv.box is not None:
                blocks.append((wv.box, wv.data))
        if dtype is None:
            raise VariableNotFound(f"no variable {name!r} at step {self._cursor}")
        if gshape is None:
            raise StreamError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        target = resolve_selection(start, count, gshape)
        if tuple(out.shape) != tuple(target.count):
            raise ValueError(
                f"out shape {tuple(out.shape)} != selection count {tuple(target.count)}"
            )
        if out.dtype != dtype:
            raise ValueError(f"out dtype {out.dtype} != variable dtype {dtype}")
        mon = self._state.monitor
        cache = self._plan_cache()
        plugins = self._state.plugins
        chain = self._reader_chain(name)
        with mon.span("read", name, parent=step.trace_ctx, step=self._cursor):
            with mon.span("redistribute", name, writers=len(blocks)):
                self._account_handshake(name, gshape, [b for b, _ in blocks])
            fplan = (
                self._fused_plan([b for b, _ in blocks], target, gshape, chain, cache)
                if chain is not None and blocks else None
            )
            if fplan is not None and not fplan.can_execute_into(name):
                fplan = None  # a filtering chain changes the shape
            if fplan is not None:
                with mon.span(
                    "transport", name, fused=True, chain=chain.chain_hash
                ) as tspan:
                    fplan.execute_into(
                        [d for _, d in blocks], name, out,
                        check=False, monitor=mon,
                    )
                    tspan.add_bytes(int(out.nbytes))
                plugins.count_fused_read()
                mon.record(
                    "stream_read", name, start=0.0, duration=0.0,
                    nbytes=int(out.nbytes),
                )
                return out
            with mon.span("transport", name) as tspan:
                if cache is not None and blocks:
                    cplan, hit = cache.get([b for b, _ in blocks], [target], gshape)
                    mon.metrics.counter(
                        "dataplane.plan_cache.hits" if hit
                        else "dataplane.plan_cache.misses"
                    ).inc()
                    cplan.execute_into([d for _, d in blocks], [out], check=False)
                else:
                    assembled = assemble(
                        target,
                        ((b, d) for b, d in blocks if intersect(target, b) is not None),
                        dtype=dtype,
                    )
                    out[...] = assembled
                tspan.add_bytes(int(out.nbytes))
            if plugins.has_side(PluginSide.READER):
                # Interpreted pass + copy-back only when a reader-side
                # chain is actually installed.
                plugins.count_interpreted_read()
                record = plugins.apply_side(PluginSide.READER, {name: out})
                result = np.asarray(record[name])
                if result is not out:
                    out[...] = result  # a reader-side plugin transformed the data
        mon.record(
            "stream_read", name, start=0.0, duration=0.0, nbytes=int(out.nbytes)
        )
        return out

    def read_all(
        self, names=None, *, start=None, count=None, selection=None
    ) -> dict[str, np.ndarray]:
        """Read several global-array variables of the current step.

        With ``batching=true`` one aggregated handshake round services
        every variable (paper's variable batching); without it each
        variable pays its own round, exactly as per-variable ``read``
        calls would.  ``names=None`` selects every global-array variable.
        """
        step = self._step()
        if names is None:
            names = [
                n for n in step.var_names()
                if any(
                    pg.variables.get(n) is not None
                    and pg.variables[n].global_shape is not None
                    for pg in step.groups.values()
                )
            ]
        names = list(names)
        if not names:
            return {}
        if self._state.hints.batching:
            # Pay the aggregated round up-front so the per-variable reads
            # of this step ride on it.
            first = names[0]
            gshape = None
            boxes = []
            for pg in step.groups.values():
                wv = pg.variables.get(first)
                if wv is None:
                    continue
                if wv.global_shape is not None:
                    gshape = wv.global_shape
                if wv.box is not None:
                    boxes.append(wv.box)
            if gshape is not None:
                self._account_handshake(
                    first, gshape, boxes, num_variables=len(names)
                )
        return {
            n: self.read(n, start=start, count=count, selection=selection)
            for n in names
        }

    def _account_handshake(
        self, name, gshape, writer_boxes, num_variables: int = 1
    ) -> None:
        """Run the 4-step handshake protocol accounting for one exchange.

        Honors the stream's caching and batching hints: with CACHING_ALL
        and unchanged distributions the steady-state cost is zero; with
        batching only the first variable of each step pays a round.
        """
        hints = self._state.hints
        boxes_key = tuple((b.start, b.count) for b in writer_boxes)
        eng = self._hs_engines.get(name)
        if eng is None:
            reader_box = BoundingBox((0,) * len(gshape), tuple(gshape))
            eng = RedistributionEngine(
                writer_boxes, [reader_box],
                caching=hints.caching, batching=hints.batching,
                plan_cache=self._plan_cache(),
            )
            self._hs_engines[name] = eng
            self._hs_boxes[name] = boxes_key
        elif self._hs_boxes.get(name) != boxes_key:
            # Distribution changed (e.g. particle movement): caches drop.
            eng.update_writer_boxes(writer_boxes)
            self._hs_boxes[name] = boxes_key
        if hints.batching and self._cursor in self._hs_paid_steps:
            return  # aggregated into this step's earlier round
        cost = eng.handshake(num_variables)
        self._hs_paid_steps.add(self._cursor)
        mon = self._state.monitor
        mon.record(
            "handshake", name, start=0.0, duration=0.0,
            nbytes=cost.control_bytes, messages=cost.messages,
        )
        mon.metrics.counter("handshake.messages").inc(cost.messages)
        mon.metrics.counter("handshake.control_bytes").inc(cost.control_bytes)

    def handshake_messages(self) -> int:
        """Total handshake messages accounted on this stream (monitoring).

        Served straight from the metrics registry counter — O(1), no
        trace scan.
        """
        return int(self._state.monitor.metrics.counter("handshake.messages").value)

    def _advance(self):
        nxt = self._cursor + 1
        state = self._state
        if not state.step_available(nxt):
            if not state.closed and state._directory is not None:
                # Stalled? Let the failure detector rule out a dead writer.
                try:
                    state._directory.reap()
                except DirectoryError:
                    pass
            if state.closed:
                if state.error is not None:
                    raise StreamFailure(
                        f"stream {state.name!r} failed: {state.error}"
                    )
                raise EndOfStream(state.name)
            raise StreamStalled(
                f"step {nxt} of {state.name!r} not yet published"
            )
        # Move first, then surface a lost step: begin_step() marks it
        # consumed, so the following begin_step() skips past the gap.
        self._cursor = nxt
        step = state._published[nxt]
        if step.status is not StepState.COMMITTED:
            raise StepLost(
                f"step {nxt} of {state.name!r} {step.status.value}: {step.error}"
            )

    def close(self):
        pass


class FlexpathMethod(IoMethod):
    """The stream method registered under ``FLEXPATH`` in the config."""

    def open_write(self, name: str, group: Group, ctx: RankContext, spec: MethodSpec):
        state = stream_registry.create(name, ctx, hints=StreamHints.from_spec(spec))
        return FlexpathWriteHandle(state, ctx)

    def open_read(self, name: str, group: Group, ctx: RankContext, spec: MethodSpec):
        state = stream_registry.open(name, ctx)
        return FlexpathReadHandle(state, ctx)


for _stream_method in STREAM_METHODS:
    register_method(_stream_method, FlexpathMethod)
