"""The FLEXPATH stream I/O method (paper Section II.B).

Stream mode keeps the file metaphor: the simulation *creates a file* with
a unique name, the analytics *opens* it — but underneath, the open
resolves the name at the directory server and connects to the writing
program.  Writers then emit timesteps; readers consume them (process-group
or global-array pattern); when the writer closes the file, readers receive
End-of-Stream from their next read.  Because the API is the ADIOS file
API, stream and file modes interchange without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.adios.api import (
    EndOfStream,
    IoMethod,
    RankContext,
    ReadHandle,
    WriteHandle,
    register_method,
)
from repro.adios.config import MethodSpec
from repro.adios.model import Group, ProcessGroupData, WrittenVar
from repro.adios.selection import BoundingBox, assemble, intersect
from repro.core.directory import CoordinatorInfo, DirectoryServer
from repro.core.redistribution import CachingOption, RedistributionEngine
from repro.core.monitoring import PerfMonitor
from repro.core.plugins import PluginManager, PluginSide


class StreamStalled(Exception):
    """No published step is available yet (writer still running)."""


class StreamError(RuntimeError):
    """Protocol misuse on a stream."""


@dataclass(frozen=True)
class StreamHints:
    """Transport tuning hints parsed from the XML ``<method>`` parameters.

    The paper's Section IV.B.1 knobs: handshake caching, variable
    batching, synchronous vs asynchronous writes, the XPMEM path, and the
    buffering depth (backpressure threshold).
    """

    caching: CachingOption = CachingOption.NO_CACHING
    batching: bool = False
    sync: bool = False
    xpmem: bool = False
    buffer_steps: int = 4
    #: Enable span tracing on the stream's monitor (``trace=true``).
    trace: bool = False

    @classmethod
    def from_spec(cls, spec: MethodSpec) -> "StreamHints":
        raw = (spec.param("caching", "none") or "none").strip().lower()
        mapping = {
            "none": CachingOption.NO_CACHING,
            "local": CachingOption.CACHING_LOCAL,
            "all": CachingOption.CACHING_ALL,
        }
        if raw not in mapping:
            raise StreamError(
                f"unknown caching hint {raw!r}; expected none/local/all"
            )
        return cls(
            caching=mapping[raw],
            batching=spec.param_bool("batching", False),
            sync=spec.param_bool("sync", False),
            xpmem=spec.param_bool("xpmem", False),
            buffer_steps=spec.param_int("buffer_steps", 4),
            trace=spec.param_bool("trace", False),
        )


@dataclass
class _PublishedStep:
    """One completed timestep: every writer rank's process group."""

    step: int
    groups: dict[int, ProcessGroupData] = field(default_factory=dict)
    #: Span context of the publish (write) span; readers parent their
    #: spans on it so the whole timestep shares one trace ID.  ``None``
    #: when tracing is off or this step's trace was sampled out.
    trace_ctx: Optional[object] = None

    @property
    def nbytes(self) -> int:
        return sum(g.nbytes for g in self.groups.values())

    def var_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for g in self.groups.values():
            for name in g.variables:
                seen.setdefault(name, None)
        return list(seen)


class StreamState:
    """Shared state of one named stream: buffered steps + membership."""

    def __init__(
        self,
        name: str,
        monitor: Optional[PerfMonitor] = None,
        hints: Optional[StreamHints] = None,
    ) -> None:
        self.name = name
        self.monitor = monitor or PerfMonitor()
        self.hints = hints or StreamHints()
        if self.hints.trace:
            self.monitor.enable_tracing()
        #: Times a publish exceeded the hinted buffering depth.
        self.backpressure_events = 0
        self.plugins = PluginManager(self.monitor)
        self.published: list[_PublishedStep] = []
        self._current: dict[int, ProcessGroupData] = {}
        self._step = 0
        self.writer_ranks: set[int] = set()
        self._advanced: set[int] = set()
        self._closed_ranks: set[int] = set()
        self.closed = False
        #: High-water mark of buffered bytes (backpressure visibility).
        self.peak_buffered_bytes = 0

    # -- writer side --------------------------------------------------------
    def writer_join(self, rank: int) -> None:
        if self.closed:
            raise StreamError(f"stream {self.name!r} already closed")
        self.writer_ranks.add(rank)

    def write(self, rank: int, wv: WrittenVar) -> None:
        if self.closed or rank in self._closed_ranks:
            raise StreamError("write on a closed stream handle")
        pg = self._current.get(rank)
        if pg is None:
            pg = ProcessGroupData(rank=rank, step=self._step)
            self._current[rank] = pg
        pg.add(wv)

    def advance(self, rank: int) -> None:
        if rank not in self.writer_ranks:
            raise StreamError(f"rank {rank} never joined stream {self.name!r}")
        self._advanced.add(rank)
        live = self.writer_ranks - self._closed_ranks
        if self._advanced >= live:
            self._publish()

    def _publish(self) -> None:
        """Seal the current step: run writer-side DC plug-ins, enqueue."""
        step = _PublishedStep(self._step)
        # Root span of this timestep's trace: everything downstream (the
        # reader's redistribute/transport/plug-in spans) parents on it.
        with self.monitor.span("write", self.name, step=self._step) as wspan:
            for rank, pg in sorted(self._current.items()):
                record = {name: wv.data for name, wv in pg.variables.items()}
                conditioned = self.plugins.apply_side(PluginSide.WRITER, record)
                out = ProcessGroupData(rank=rank, step=pg.step)
                for name, data in conditioned.items():
                    orig = pg.variables.get(name)
                    out.add(
                        WrittenVar(
                            name=name,
                            data=np.asarray(data),
                            box=orig.box if orig is not None and _same_shape(orig, data) else None,
                            global_shape=orig.global_shape if orig is not None else None,
                        )
                    )
                step.groups[rank] = out
            wspan.add_bytes(step.nbytes)
            step.trace_ctx = wspan.context
        self.published.append(step)
        self._current = {}
        self._advanced = set()
        self._step += 1
        buffered = sum(s.nbytes for s in self.published)
        self.peak_buffered_bytes = max(self.peak_buffered_bytes, buffered)
        if len(self.published) > self.hints.buffer_steps:
            # In the real transport the writer would stall here; in the
            # in-process harness we surface it through monitoring.
            self.backpressure_events += 1
        self.monitor.record(
            "stream_publish", self.name, start=0.0, duration=0.0, nbytes=step.nbytes
        )

    def writer_close(self, rank: int) -> None:
        self._closed_ranks.add(rank)
        self._advanced.discard(rank)
        if self._closed_ranks >= self.writer_ranks:
            # Publish any partial step implicitly, then end the stream.
            if self._current:
                self._publish()
            self.closed = True

    # -- reader side --------------------------------------------------------
    def step_available(self, index: int) -> bool:
        return index < len(self.published)

    def get_step(self, index: int) -> _PublishedStep:
        if not self.step_available(index):
            if self.closed:
                raise EndOfStream(self.name)
            raise StreamStalled(f"step {index} of {self.name!r} not yet published")
        return self.published[index]


def _same_shape(orig: WrittenVar, data) -> bool:
    return tuple(np.shape(data)) == tuple(orig.data.shape)


class StreamRegistry:
    """Directory server + live stream states for one process."""

    def __init__(self) -> None:
        self.directory = DirectoryServer()
        self._states: dict[str, StreamState] = {}

    def create(
        self, name: str, ctx: RankContext, monitor=None, hints=None
    ) -> StreamState:
        state = self._states.get(name)
        if state is None or state.closed:
            if state is not None and state.closed:
                # Recycle a finished stream's name for a new run.
                self.directory.unregister(name)
            state = StreamState(name, monitor, hints)
            self._states[name] = state
            # Coordinator (rank 0 by election) registers the name.
            self.directory.register(
                name,
                CoordinatorInfo(
                    program="writer", coordinator_rank=0, num_ranks=ctx.size, contact=state
                ),
            )
        return state

    def open(self, name: str, ctx: RankContext) -> StreamState:
        info = self.directory.lookup(
            name,
            CoordinatorInfo(program="reader", coordinator_rank=0, num_ranks=ctx.size),
        )
        return info.contact

    def close_stream(self, name: str) -> None:
        if name in self._states:
            try:
                self.directory.unregister(name)
            except Exception:
                pass

    def reset(self) -> None:
        self.__init__()


#: Process-global registry (the "network" all in-process programs share).
stream_registry = StreamRegistry()


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------

class FlexpathWriteHandle(WriteHandle):
    """Stream-mode writer for one rank."""

    def __init__(self, state: StreamState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._closed = False
        state.writer_join(ctx.rank)

    @property
    def plugins(self) -> PluginManager:
        return self._state.plugins

    @property
    def monitor(self) -> PerfMonitor:
        """The stream's shared monitor (enable tracing / dump here)."""
        return self._state.monitor

    def write(self, name, data, box=None, global_shape=None):
        if self._closed:
            raise StreamError("write after close")
        arr = np.asarray(data)
        if box is not None and tuple(arr.shape) != tuple(box.count):
            raise ValueError(f"data shape {arr.shape} != box count {box.count}")
        self._state.write(
            self._ctx.rank,
            WrittenVar(
                name=name,
                data=arr,
                box=box,
                global_shape=tuple(global_shape) if global_shape is not None else None,
            ),
        )

    def advance(self):
        if self._closed:
            raise StreamError("advance after close")
        self._state.advance(self._ctx.rank)

    def close(self):
        if self._closed:
            return
        self._closed = True
        # The name stays registered so readers can still resolve the
        # stream and drain buffered steps; EndOfStream tells them it ended.
        self._state.writer_close(self._ctx.rank)


class FlexpathReadHandle(ReadHandle):
    """Stream-mode reader for one rank; End-of-Stream when writers close."""

    def __init__(self, state: StreamState, ctx: RankContext) -> None:
        self._state = state
        self._ctx = ctx
        self._cursor = 0
        # Handshake-protocol accounting per global-array variable: the
        # engine carries the caching state the XML hints select.
        self._hs_engines: dict[str, RedistributionEngine] = {}
        self._hs_boxes: dict[str, tuple] = {}
        self._hs_paid_steps: set[int] = set()

    @property
    def plugins(self) -> PluginManager:
        return self._state.plugins

    @property
    def monitor(self) -> PerfMonitor:
        """The stream's shared monitor (enable tracing / dump here)."""
        return self._state.monitor

    @property
    def current_step(self) -> int:
        return self._cursor

    def _step(self) -> _PublishedStep:
        return self._state.get_step(self._cursor)

    def available_vars(self):
        return self._step().var_names()

    def read_block(self, name: str, writer_rank: int) -> np.ndarray:
        step = self._step()
        pg = step.groups.get(writer_rank)
        if pg is None or name not in pg.variables:
            raise KeyError(
                f"no block for var {name!r} from writer {writer_rank} "
                f"at step {self._cursor}"
            )
        mon = self._state.monitor
        with mon.span(
            "read", name, parent=step.trace_ctx,
            step=self._cursor, writer_rank=writer_rank,
        ):
            with mon.span("transport", name, writer_rank=writer_rank) as tspan:
                record = {n: wv.data for n, wv in pg.variables.items()}
                tspan.add_bytes(sum(int(wv.data.nbytes) for wv in pg.variables.values()))
            record = self._state.plugins.apply_side(PluginSide.READER, record)
        mon.record(
            "stream_read", name, start=0.0, duration=0.0,
            nbytes=int(np.asarray(record[name]).nbytes),
        )
        return np.asarray(record[name])

    def read(self, name, start=None, count=None) -> np.ndarray:
        step = self._step()
        blocks = []
        gshape = None
        dtype = None
        for pg in step.groups.values():
            wv = pg.variables.get(name)
            if wv is None:
                continue
            dtype = wv.data.dtype
            if wv.global_shape is not None:
                gshape = wv.global_shape
            if wv.box is not None:
                blocks.append((wv.box, wv.data))
        if dtype is None:
            raise KeyError(f"no variable {name!r} at step {self._cursor}")
        if gshape is None:
            raise StreamError(
                f"variable {name!r} is not a global array; use read_block()"
            )
        if start is None or count is None:
            target = BoundingBox((0,) * len(gshape), tuple(gshape))
        else:
            target = BoundingBox(tuple(start), tuple(count))
        mon = self._state.monitor
        with mon.span("read", name, parent=step.trace_ctx, step=self._cursor):
            with mon.span("redistribute", name, writers=len(blocks)):
                self._account_handshake(name, gshape, [b for b, _ in blocks])
            with mon.span("transport", name) as tspan:
                out = assemble(
                    target,
                    ((b, d) for b, d in blocks if intersect(target, b) is not None),
                    dtype=dtype,
                )
                tspan.add_bytes(int(out.nbytes))
            record = self._state.plugins.apply_side(PluginSide.READER, {name: out})
        result = np.asarray(record[name])
        mon.record(
            "stream_read", name, start=0.0, duration=0.0, nbytes=int(result.nbytes)
        )
        return result

    def _account_handshake(self, name, gshape, writer_boxes) -> None:
        """Run the 4-step handshake protocol accounting for one exchange.

        Honors the stream's caching and batching hints: with CACHING_ALL
        and unchanged distributions the steady-state cost is zero; with
        batching only the first variable of each step pays a round.
        """
        hints = self._state.hints
        boxes_key = tuple((b.start, b.count) for b in writer_boxes)
        eng = self._hs_engines.get(name)
        if eng is None:
            reader_box = BoundingBox((0,) * len(gshape), tuple(gshape))
            eng = RedistributionEngine(
                writer_boxes, [reader_box],
                caching=hints.caching, batching=hints.batching,
            )
            self._hs_engines[name] = eng
            self._hs_boxes[name] = boxes_key
        elif self._hs_boxes.get(name) != boxes_key:
            # Distribution changed (e.g. particle movement): caches drop.
            eng.update_writer_boxes(writer_boxes)
            self._hs_boxes[name] = boxes_key
        if hints.batching and self._cursor in self._hs_paid_steps:
            return  # aggregated into this step's earlier round
        cost = eng.handshake(1)
        self._hs_paid_steps.add(self._cursor)
        self._state.monitor.record(
            "handshake", name, start=0.0, duration=0.0,
            nbytes=cost.control_bytes, messages=cost.messages,
        )

    def handshake_messages(self) -> int:
        """Total handshake messages this reader has accounted (monitoring)."""
        agg = self._state.monitor.aggregate("handshake")
        return sum(
            dict(rec.extra).get("messages", 0)
            for rec in self._state.monitor.trace
            if rec.category == "handshake"
        ) if agg.count else 0

    def advance(self):
        nxt = self._cursor + 1
        if not self._state.step_available(nxt):
            if self._state.closed:
                raise EndOfStream(self._state.name)
            raise StreamStalled(
                f"step {nxt} of {self._state.name!r} not yet published"
            )
        self._cursor = nxt

    def close(self):
        pass


class FlexpathMethod(IoMethod):
    """The stream method registered under ``FLEXPATH`` in the config."""

    def open_write(self, name: str, group: Group, ctx: RankContext, spec: MethodSpec):
        state = stream_registry.create(name, ctx, hints=StreamHints.from_spec(spec))
        return FlexpathWriteHandle(state, ctx)

    def open_read(self, name: str, group: Group, ctx: RankContext, spec: MethodSpec):
        state = stream_registry.open(name, ctx)
        return FlexpathReadHandle(state, ctx)


register_method("FLEXPATH", FlexpathMethod)
register_method("FLEXIO", FlexpathMethod)
