"""Runtime management: monitoring-driven placement decisions
(paper Sections II.F, II.G, IV).

Two adaptive mechanisms built on the performance-monitoring layer:

* :class:`DCPlacementController` — decides, step by step, which address
  space each Data Conditioning plug-in should execute in.  Monitoring
  data gathered from the simulation side (its busy fraction) combines
  with each codelet's observed behaviour (its data-reduction ratio and
  execution cost): reducers migrate toward the writer when the writer
  has CPU headroom (saving movement), expanders and heavy codelets
  migrate toward the reader.  Hysteresis prevents ping-ponging.

* :class:`AdaptiveGetScheduler` — tunes the receiver-directed Get
  concurrency bound between steps so the observed simulation slowdown
  from asynchronous bulk movement stays under a target (the paper had
  to "carefully set the asynchronous data movement scheduling policy to
  keep the GTS slowdown under 15 %"; this closes that loop
  automatically).

Both mechanisms can additionally be seeded from offline trace analysis:
:func:`policy_from_hint` derives an :class:`AdaptivePolicy` from a
:class:`repro.obs.BottleneckHint` (produced by ``repro.tools.trace`` /
``repro.obs.find_bottleneck``), and
:meth:`AdaptiveGetScheduler.apply_hint` nudges the concurrency bound
when the trace shows the pipeline is transport-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.hints import MOVEMENT_STAGES, STAGE_DC_PLUGIN, STAGE_TRANSPORT
from repro.core.monitoring import PerfMonitor
from repro.core.plugins import DCPlugin, PluginManager, PluginSide


# ---------------------------------------------------------------------------
# DC plug-in placement control
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdaptivePolicy:
    """Thresholds for the placement rules."""

    #: A codelet whose output/input byte ratio is below this is a
    #: *reducer*: running it writer-side shrinks what must move.
    reducer_ratio: float = 0.9
    #: A codelet at/above this ratio is an *expander* (e.g. annotation):
    #: it belongs reader-side so the extra bytes never cross.
    expander_ratio: float = 1.0
    #: Writer-side codelets may consume at most this fraction of the
    #: simulation's step time; beyond it they migrate off the writer.
    writer_cpu_budget: float = 0.10
    #: The simulation must be below this busy fraction for codelets to
    #: migrate toward it.
    writer_busy_limit: float = 0.95
    #: Consecutive identical decisions required before migrating.
    hysteresis: int = 2

    def __post_init__(self) -> None:
        if not (0 < self.reducer_ratio <= self.expander_ratio):
            raise ValueError("need 0 < reducer_ratio <= expander_ratio")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")


@dataclass(frozen=True)
class MigrationEvent:
    """One migration the controller performed."""

    step: int
    plugin: str
    from_side: PluginSide
    to_side: PluginSide
    reason: str


class DCPlacementController:
    """Per-stream controller migrating codelets between address spaces."""

    def __init__(
        self,
        plugins: PluginManager,
        policy: Optional[AdaptivePolicy] = None,
        monitor: Optional[PerfMonitor] = None,
    ) -> None:
        self.plugins = plugins
        self.policy = policy or AdaptivePolicy()
        self.monitor = monitor
        self.events: list[MigrationEvent] = []
        self._votes: dict[str, tuple[PluginSide, int]] = {}
        self._step = 0

    # ------------------------------------------------------------------
    def _desired_side(
        self, plugin: DCPlugin, writer_busy: float, sim_step_time: float
    ) -> tuple[PluginSide, str]:
        ratio = plugin.reduction_ratio
        if plugin.stats.invocations == 0:
            return plugin.side, "no observations yet"
        if ratio >= self.policy.expander_ratio:
            return PluginSide.READER, f"expander (ratio {ratio:.2f})"
        # Reducers want the writer — if the writer can afford them.
        exec_per_step = (
            plugin.stats.exec_time / plugin.stats.invocations
            if plugin.stats.exec_time > 0
            else 0.0
        )
        cost_frac = exec_per_step / sim_step_time if sim_step_time > 0 else 0.0
        if ratio < self.policy.reducer_ratio:
            if (
                writer_busy < self.policy.writer_busy_limit
                and cost_frac <= self.policy.writer_cpu_budget
            ):
                return PluginSide.WRITER, f"reducer (ratio {ratio:.2f})"
            return (
                PluginSide.READER,
                f"reducer but writer overloaded (busy {writer_busy:.2f}, "
                f"cost {cost_frac:.2f})",
            )
        return plugin.side, f"neutral (ratio {ratio:.2f})"

    def observe_step(
        self, writer_busy_fraction: float, sim_step_time: float = 1.0
    ) -> list[MigrationEvent]:
        """Feed one step's simulation-side monitoring; maybe migrate.

        Returns the migrations performed this step.
        """
        if not (0.0 <= writer_busy_fraction <= 1.0):
            raise ValueError("writer_busy_fraction in [0, 1]")
        performed: list[MigrationEvent] = []
        for plugin in self.plugins.plugins():
            desired, reason = self._desired_side(
                plugin, writer_busy_fraction, sim_step_time
            )
            if desired == plugin.side:
                self._votes.pop(plugin.name, None)
                continue
            side, count = self._votes.get(plugin.name, (desired, 0))
            count = count + 1 if side == desired else 1
            self._votes[plugin.name] = (desired, count)
            if count >= self.policy.hysteresis:
                event = MigrationEvent(
                    step=self._step,
                    plugin=plugin.name,
                    from_side=plugin.side,
                    to_side=desired,
                    reason=reason,
                )
                self.plugins.migrate(plugin.name, desired)
                self._votes.pop(plugin.name, None)
                self.events.append(event)
                performed.append(event)
                if self.monitor is not None:
                    self.monitor.record(
                        "dc_migration", plugin.name, start=float(self._step),
                        duration=0.0, to=desired.value, reason=reason,
                    )
        self._step += 1
        return performed


# ---------------------------------------------------------------------------
# Trace-driven policy seeding
# ---------------------------------------------------------------------------

def policy_from_hint(hint, base: Optional[AdaptivePolicy] = None) -> AdaptivePolicy:
    """Derive placement thresholds from an offline bottleneck hint.

    ``hint`` is a :class:`repro.obs.BottleneckHint` (duck-typed: only
    ``hint.stage`` is read).  The mapping follows the paper's placement
    logic:

    * ``dc_plugin``-bound — codelets are the cost: halve the writer CPU
      budget so expensive codelets migrate off the simulation sooner;
    * ``write``/``transport``-bound — data movement is the cost: favour
      writer-side reducers by widening the reducer band and granting a
      larger CPU budget (shrinking bytes before they cross pays off);
    * anything else (``redistribute``, ``read``, ...) — placement cannot
      help; the base policy is returned unchanged.
    """
    base = base or AdaptivePolicy()
    stage = getattr(hint, "stage", None)
    if stage == STAGE_DC_PLUGIN:
        return AdaptivePolicy(
            reducer_ratio=base.reducer_ratio,
            expander_ratio=base.expander_ratio,
            writer_cpu_budget=base.writer_cpu_budget / 2,
            writer_busy_limit=base.writer_busy_limit,
            hysteresis=base.hysteresis,
        )
    if stage in MOVEMENT_STAGES:
        return AdaptivePolicy(
            reducer_ratio=min(0.95, base.expander_ratio),
            expander_ratio=base.expander_ratio,
            writer_cpu_budget=min(0.5, base.writer_cpu_budget * 2),
            writer_busy_limit=base.writer_busy_limit,
            hysteresis=base.hysteresis,
        )
    return base


# ---------------------------------------------------------------------------
# Adaptive Get scheduling
# ---------------------------------------------------------------------------

@dataclass
class SchedulerDecision:
    step: int
    observed_slowdown: float
    max_concurrent: int


class AdaptiveGetScheduler:
    """AIMD control of the bulk-Get concurrency bound.

    Observed simulation slowdown above ``target_slowdown`` halves the
    concurrency bound (multiplicative decrease); sustained headroom
    raises it by one (additive increase), bounded by ``max_bound``.
    """

    def __init__(
        self,
        target_slowdown: float = 0.15,
        initial: int = 4,
        min_bound: int = 1,
        max_bound: int = 16,
    ) -> None:
        if not (0.0 < target_slowdown < 1.0):
            raise ValueError("target_slowdown in (0, 1)")
        if not (1 <= min_bound <= initial <= max_bound):
            raise ValueError("need min_bound <= initial <= max_bound")
        self.target = target_slowdown
        self.max_concurrent = initial
        self.min_bound = min_bound
        self.max_bound = max_bound
        self.history: list[SchedulerDecision] = []
        self._step = 0

    def observe(self, observed_slowdown: float) -> int:
        """Feed one step's measured sim slowdown; returns the new bound."""
        if observed_slowdown < 0:
            raise ValueError("slowdown must be >= 0")
        if observed_slowdown > self.target:
            self.max_concurrent = max(self.min_bound, self.max_concurrent // 2)
        elif observed_slowdown < 0.7 * self.target:
            self.max_concurrent = min(self.max_bound, self.max_concurrent + 1)
        self.history.append(
            SchedulerDecision(self._step, observed_slowdown, self.max_concurrent)
        )
        self._step += 1
        return self.max_concurrent

    def apply_hint(self, hint) -> int:
        """Seed the bound from an offline bottleneck hint.

        A transport-bound trace means movement is starved for flows: jump
        the bound halfway toward ``max_bound`` (AIMD then trims it back if
        the simulation suffers).  Other stages leave the bound alone.
        """
        if getattr(hint, "stage", None) == STAGE_TRANSPORT:
            self.max_concurrent = min(
                self.max_bound,
                max(self.max_concurrent, (self.max_concurrent + self.max_bound) // 2),
            )
        return self.max_concurrent

    def observe_health(self, report) -> int:
        """Feed one live health verdict as a rate-mismatch signal.

        ``report`` is a :class:`repro.obs.health.HealthReport`
        (duck-typed: only ``report.verdict`` is read).  A STALLED or
        UNHEALTHY stream means the pipeline cannot absorb the current
        Get pressure — halve the bound (the AIMD multiplicative
        decrease) so bulk movement stops compounding the problem; a
        DEGRADED stream trims it by one; HEALTHY leaves AIMD's own
        ``observe`` loop in charge.  Returns the new bound.
        """
        verdict = getattr(report, "verdict", None)
        name = getattr(verdict, "value", verdict)
        if name in ("stalled", "unhealthy"):
            self.max_concurrent = max(self.min_bound, self.max_concurrent // 2)
        elif name == "degraded":
            self.max_concurrent = max(self.min_bound, self.max_concurrent - 1)
        return self.max_concurrent
