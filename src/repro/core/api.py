"""The FlexIO façade: one object tying configuration, streams, and runtime.

Typical use (see ``examples/quickstart.py``)::

    flexio = FlexIO.from_xml(CONFIG_XML, machine=smoky(4))
    w = flexio.open_write("particles", "gts.stream", RankContext(0, 4))
    r = flexio.open_read("particles", "gts.stream", RankContext(0, 1))

Whether ``gts.stream`` is a memory-to-memory stream or a BP file on disk
is decided by the ``<method>`` line of the configuration — application
code is identical either way.
"""

from __future__ import annotations

from typing import Optional

from repro.adios.api import Adios, RankContext, ReadHandle, WriteHandle
from repro.adios.config import AdiosConfig
from repro.core.hints import STREAM_METHODS, validate_config
from repro.core.monitoring import PerfMonitor
from repro.core.runtime import FlexIORuntime, NumaBufferPolicy
from repro.machine.topology import Machine

# Importing the stream module registers the FLEXPATH method.
import repro.core.stream  # noqa: F401


class FlexIO:
    """Entry point for applications coupling through FlexIO."""

    def __init__(
        self,
        config: AdiosConfig,
        machine: Optional[Machine] = None,
        numa_policy: NumaBufferPolicy = NumaBufferPolicy.WRITER_LOCAL,
    ) -> None:
        # Fail fast on misspelled <method> hints (registry-validated)
        # instead of silently ignoring them at stream-open time.
        validate_config(config)
        self.config = config
        self.adios = Adios(config)
        self.monitor = PerfMonitor()
        self.runtime = (
            FlexIORuntime(machine, numa_policy) if machine is not None else None
        )

    @classmethod
    def from_xml(cls, text: str, machine: Optional[Machine] = None, **kw) -> "FlexIO":
        return cls(AdiosConfig.from_xml(text), machine=machine, **kw)

    @classmethod
    def from_file(cls, path: str, machine: Optional[Machine] = None, **kw) -> "FlexIO":
        return cls(AdiosConfig.from_file(path), machine=machine, **kw)

    # ------------------------------------------------------------------
    def open_write(self, group: str, name: str, ctx: RankContext) -> WriteHandle:
        """Open ``name`` for writing under ``group``'s configured method."""
        return self.adios.open_write(group, name, ctx)

    def open_read(self, group: str, name: str, ctx: RankContext) -> ReadHandle:
        """Open ``name`` for reading under ``group``'s configured method."""
        return self.adios.open_read(group, name, ctx)

    # ------------------------------------------------------------------
    def method_name(self, group: str) -> str:
        return self.config.method_for(group).method

    def is_stream(self, group: str) -> bool:
        return self.method_name(group) in STREAM_METHODS
