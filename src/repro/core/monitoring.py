"""Runtime performance monitoring (paper Section II.G).

Measurement points at all levels of the FlexIO stack record the timing of
data movement and DC plug-in execution, transferred data volumes, and
memory allocations.  Records serve two consumers:

* **offline tuning** — the full trace can be dumped to a file (JSON lines)
  for post-mortem analysis;
* **runtime management** — online aggregates (per-category totals, rates,
  high-water marks) feed the data-movement scheduler and DC plug-in
  placement decisions.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One monitored event."""

    category: str       # e.g. "data_movement", "dc_plugin", "handshake"
    name: str           # e.g. variable or plug-in name
    start: float        # seconds (simulated or wall, caller's choice)
    duration: float
    bytes: int = 0
    extra: tuple = ()   # ((key, value), ...) — hashable for frozen dataclass

    def as_dict(self) -> dict:
        d = {
            "category": self.category,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "bytes": self.bytes,
        }
        d.update(dict(self.extra))
        return d


@dataclass
class CategoryAggregate:
    """Online rollup for one category."""

    count: int = 0
    total_time: float = 0.0
    total_bytes: int = 0
    max_duration: float = 0.0

    def observe(self, rec: TraceRecord) -> None:
        self.count += 1
        self.total_time += rec.duration
        self.total_bytes += rec.bytes
        self.max_duration = max(self.max_duration, rec.duration)

    @property
    def mean_duration(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def throughput(self) -> float:
        """Bytes per second over the recorded busy time."""
        return self.total_bytes / self.total_time if self.total_time > 0 else 0.0


class MeasurementPoint:
    """A context manager instrumenting one operation.

    ``clock`` defaults to wall time; DES components pass ``lambda:
    env.now`` so records carry simulated time.
    """

    def __init__(
        self,
        monitor: "PerfMonitor",
        category: str,
        name: str,
        nbytes: int = 0,
        **extra: Any,
    ) -> None:
        self._monitor = monitor
        self._category = category
        self._name = name
        self._bytes = nbytes
        self._extra = extra
        self._start: Optional[float] = None

    def __enter__(self) -> "MeasurementPoint":
        self._start = self._monitor.clock()
        return self

    def add_bytes(self, n: int) -> None:
        self._bytes += n

    def __exit__(self, *exc: Any) -> None:
        assert self._start is not None
        end = self._monitor.clock()
        self._monitor.record(
            self._category,
            self._name,
            start=self._start,
            duration=end - self._start,
            nbytes=self._bytes,
            **self._extra,
        )


class PerfMonitor:
    """Per-process monitor: trace buffer + online aggregates."""

    def __init__(self, clock=None, keep_trace: bool = True) -> None:
        self.clock = clock or time.perf_counter
        self.keep_trace = keep_trace
        self.trace: list[TraceRecord] = []
        self.aggregates: dict[str, CategoryAggregate] = defaultdict(CategoryAggregate)
        #: Instrumented allocation tracking (Section II.G: "dynamic memory
        #: allocation points within FlexIO are also instrumented").
        self.current_alloc_bytes = 0
        self.peak_alloc_bytes = 0

    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        name: str,
        start: float,
        duration: float,
        nbytes: int = 0,
        **extra: Any,
    ) -> TraceRecord:
        rec = TraceRecord(
            category, name, start, duration, nbytes, tuple(sorted(extra.items()))
        )
        if self.keep_trace:
            self.trace.append(rec)
        self.aggregates[category].observe(rec)
        return rec

    def measure(self, category: str, name: str, nbytes: int = 0, **extra: Any) -> MeasurementPoint:
        return MeasurementPoint(self, category, name, nbytes, **extra)

    # -- memory instrumentation -------------------------------------------
    def alloc(self, nbytes: int) -> None:
        self.current_alloc_bytes += nbytes
        self.peak_alloc_bytes = max(self.peak_alloc_bytes, self.current_alloc_bytes)

    def free(self, nbytes: int) -> None:
        self.current_alloc_bytes -= nbytes
        if self.current_alloc_bytes < 0:
            raise ValueError("free() exceeds tracked allocations")

    # -- consumption --------------------------------------------------------
    def aggregate(self, category: str) -> CategoryAggregate:
        return self.aggregates[category]

    def categories(self) -> list[str]:
        return sorted(self.aggregates)

    def dump(self, path: str) -> int:
        """Write the trace as JSON lines; returns record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.trace:
                fh.write(json.dumps(rec.as_dict()) + "\n")
        return len(self.trace)

    @staticmethod
    def load(path: str) -> list[dict]:
        with open(path, "r", encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def merge_from(self, other: "PerfMonitor") -> None:
        """Online gathering: fold a remote monitor's aggregates into ours.

        Models the paper's shipping of simulation-side monitoring data to
        the analytics side for runtime management.
        """
        for category, agg in other.aggregates.items():
            mine = self.aggregates[category]
            mine.count += agg.count
            mine.total_time += agg.total_time
            mine.total_bytes += agg.total_bytes
            mine.max_duration = max(mine.max_duration, agg.max_duration)

    def report(self) -> str:
        """Human-readable per-category summary (for logs and examples)."""
        lines = [
            f"{'category':20s} {'count':>7s} {'time(s)':>10s} "
            f"{'bytes':>14s} {'mean(s)':>10s} {'MB/s':>10s}"
        ]
        for cat in self.categories():
            agg = self.aggregates[cat]
            mbps = agg.throughput / 1e6
            lines.append(
                f"{cat:20s} {agg.count:7d} {agg.total_time:10.4f} "
                f"{agg.total_bytes:14d} {agg.mean_duration:10.6f} {mbps:10.2f}"
            )
        if self.peak_alloc_bytes:
            lines.append(f"peak tracked allocation: {self.peak_alloc_bytes} bytes")
        return "\n".join(lines)

    def summary(self) -> dict[str, dict]:
        return {
            cat: {
                "count": agg.count,
                "total_time": agg.total_time,
                "total_bytes": agg.total_bytes,
                "mean_duration": agg.mean_duration,
                "throughput": agg.throughput,
            }
            for cat, agg in self.aggregates.items()
        }
