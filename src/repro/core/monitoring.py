"""Runtime performance monitoring (paper Section II.G).

Measurement points at all levels of the FlexIO stack record the timing of
data movement and DC plug-in execution, transferred data volumes, and
memory allocations.  Records serve two consumers:

* **offline tuning** — the full trace can be dumped to a file (JSON lines)
  for post-mortem analysis;
* **runtime management** — online aggregates (per-category totals, rates,
  high-water marks) feed the data-movement scheduler and DC plug-in
  placement decisions.

Built on top of these flat records is the causal layer from
:mod:`repro.obs`: ``monitor.span(...)`` opens a span whose finished form
lands in the same trace buffer as an ordinary record carrying
``trace_id``/``span_id``/``parent_id`` extras, and ``monitor.metrics``
is a registry of counters/gauges/histograms the transports feed.
Tracing is disabled by default and costs one boolean test when off.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import F_LATENCY, metric_name
from repro.obs.tracing import CURRENT, Span, Tracer

#: Core field names of a serialized record; ``extra`` keys colliding with
#: one of these are namespaced under an ``x.`` prefix on dump so they can
#: never clobber a core field and the round trip stays lossless.
_CORE_FIELDS = frozenset({"category", "name", "start", "duration", "bytes"})


@dataclass(frozen=True)
class TraceRecord:
    """One monitored event."""

    category: str       # e.g. "data_movement", "dc_plugin", "handshake"
    name: str           # e.g. variable or plug-in name
    start: float        # seconds (simulated or wall, caller's choice)
    duration: float
    bytes: int = 0
    extra: tuple = ()   # ((key, value), ...) — hashable for frozen dataclass

    def as_dict(self) -> dict:
        d = {
            "category": self.category,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "bytes": self.bytes,
        }
        for k, v in self.extra:
            if k in _CORE_FIELDS or k.startswith("x."):
                k = f"x.{k}"
            d[k] = v
        return d

    @staticmethod
    def from_dict(d: dict) -> "TraceRecord":
        """Inverse of :meth:`as_dict` (lossless round trip)."""
        extra = []
        for k, v in d.items():
            if k in _CORE_FIELDS:
                continue
            extra.append((k[2:] if k.startswith("x.") else k, v))
        return TraceRecord(
            category=d["category"],
            name=d["name"],
            start=d["start"],
            duration=d["duration"],
            bytes=d.get("bytes", 0),
            extra=tuple(sorted(extra)),
        )


@dataclass
class CategoryAggregate:
    """Online rollup for one category."""

    count: int = 0
    total_time: float = 0.0
    total_bytes: int = 0
    max_duration: float = 0.0

    def observe(self, rec: TraceRecord) -> None:
        self.count += 1
        self.total_time += rec.duration
        self.total_bytes += rec.bytes
        self.max_duration = max(self.max_duration, rec.duration)

    @property
    def mean_duration(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def throughput(self) -> float:
        """Bytes per second over the recorded busy time."""
        return self.total_bytes / self.total_time if self.total_time > 0 else 0.0


class MeasurementPoint:
    """A context manager instrumenting one operation.

    ``clock`` defaults to wall time; DES components pass ``lambda:
    env.now`` so records carry simulated time.
    """

    def __init__(
        self,
        monitor: "PerfMonitor",
        category: str,
        name: str,
        nbytes: int = 0,
        **extra: Any,
    ) -> None:
        self._monitor = monitor
        self._category = category
        self._name = name
        self._bytes = nbytes
        self._extra = extra
        self._start: Optional[float] = None

    def __enter__(self) -> "MeasurementPoint":
        self._start = self._monitor.clock()
        return self

    def add_bytes(self, n: int) -> None:
        self._bytes += n

    def __exit__(self, *exc: Any) -> None:
        assert self._start is not None
        end = self._monitor.clock()
        self._monitor.record(
            self._category,
            self._name,
            start=self._start,
            duration=end - self._start,
            nbytes=self._bytes,
            **self._extra,
        )


class PerfMonitor:
    """Per-process monitor: trace buffer + online aggregates + telemetry.

    ``tracing`` defaults to the process-wide setting from
    :func:`repro.obs.default_tracing` (off unless ``FLEXIO_TRACE`` is set
    or :func:`repro.obs.set_default_tracing` was called).
    """

    def __init__(
        self,
        clock=None,
        keep_trace: bool = True,
        tracing: Optional[bool] = None,
        sample_rate: Optional[float] = None,
    ) -> None:
        self.clock = clock or time.perf_counter
        self.keep_trace = keep_trace
        self.trace: list[TraceRecord] = []
        self.aggregates: dict[str, CategoryAggregate] = defaultdict(CategoryAggregate)
        #: Instrumented allocation tracking (Section II.G: "dynamic memory
        #: allocation points within FlexIO are also instrumented").
        self.current_alloc_bytes = 0
        self.peak_alloc_bytes = 0
        #: Counters / gauges / histograms (transport stats land here).
        self.metrics = MetricsRegistry()
        default_enabled, default_rate = obs.default_tracing()
        self.tracer = Tracer(
            sink=self._span_sink,
            clock=self.clock,
            enabled=default_enabled if tracing is None else bool(tracing),
            sample_rate=default_rate if sample_rate is None else float(sample_rate),
        )

    # -- tracing -----------------------------------------------------------
    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self, sample_rate: float = 1.0) -> None:
        """Turn on span collection (``sample_rate`` keeps that fraction
        of traces, decided deterministically per root)."""
        self.tracer.enable(sample_rate)

    def disable_tracing(self) -> None:
        self.tracer.disable()

    def span(self, category: str, name: str, parent: Any = CURRENT, nbytes: int = 0, **attrs: Any):
        """Open a span (context manager).  No-op when tracing is off.

        ``parent`` joins an existing trace (a ``SpanContext``), inherits
        the current span (default), or suppresses the span and all its
        descendants (``None`` — the upstream trace was sampled out).
        """
        return self.tracer.span(category, name, parent=parent, nbytes=nbytes, **attrs)

    def begin_span(self, category: str, name: str, parent: Any = CURRENT, nbytes: int = 0, **attrs: Any):
        """Open a manual span: caller calls ``.finish()`` — for
        event-driven code (DES events) whose end is in another stack."""
        return self.tracer.begin(category, name, parent=parent, nbytes=nbytes, **attrs)

    def current_span(self):
        """The active :class:`SpanContext`, or None."""
        return self.tracer.current()

    def _span_sink(self, span: Span) -> None:
        extra = dict(span.attrs)
        extra["trace_id"] = span.trace_id
        extra["span_id"] = span.span_id
        extra["parent_id"] = span.parent_id or ""
        self.record(
            span.category,
            span.name,
            start=span.start,
            duration=(span.end or span.start) - span.start,
            nbytes=span.nbytes,
            **extra,
        )

    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        name: str,
        start: float,
        duration: float,
        nbytes: int = 0,
        **extra: Any,
    ) -> TraceRecord:
        rec = TraceRecord(
            category, name, start, duration, nbytes, tuple(sorted(extra.items()))
        )
        if self.keep_trace:
            self.trace.append(rec)
        self.aggregates[category].observe(rec)
        self.metrics.histogram(metric_name(F_LATENCY, category)).observe(duration)
        return rec

    def measure(self, category: str, name: str, nbytes: int = 0, **extra: Any) -> MeasurementPoint:
        return MeasurementPoint(self, category, name, nbytes, **extra)

    # -- memory instrumentation -------------------------------------------
    def alloc(self, nbytes: int) -> None:
        self.current_alloc_bytes += nbytes
        self.peak_alloc_bytes = max(self.peak_alloc_bytes, self.current_alloc_bytes)

    def free(self, nbytes: int) -> None:
        self.current_alloc_bytes -= nbytes
        if self.current_alloc_bytes < 0:
            raise ValueError("free() exceeds tracked allocations")

    # -- consumption --------------------------------------------------------
    def aggregate(self, category: str) -> CategoryAggregate:
        return self.aggregates[category]

    def categories(self) -> list[str]:
        return sorted(self.aggregates)

    def dump(self, path: str) -> int:
        """Write the trace as JSON lines; returns record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.trace:
                fh.write(json.dumps(rec.as_dict()) + "\n")
        return len(self.trace)

    @staticmethod
    def load(path: str) -> list[dict]:
        with open(path, "r", encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    @staticmethod
    def load_records(path: str) -> list[TraceRecord]:
        """Load a dump back into :class:`TraceRecord` objects (the exact
        inverse of :meth:`dump`)."""
        return [TraceRecord.from_dict(d) for d in PerfMonitor.load(path)]

    def export_perfetto(self, path: str, process_name: str = "flexio") -> int:
        """Write the trace as Chrome/Perfetto ``trace_event`` JSON
        (loadable in ``ui.perfetto.dev``); returns the event count."""
        from repro.obs.export import write_perfetto

        return write_perfetto(
            (rec.as_dict() for rec in self.trace), path, process_name=process_name
        )

    def merge_from(self, other: "PerfMonitor") -> None:
        """Online gathering: fold a remote monitor's state into ours.

        Models the paper's shipping of simulation-side monitoring data to
        the analytics side for runtime management.  Folds aggregates,
        the instrumented memory counters, and the metrics registry.
        """
        for category, agg in other.aggregates.items():
            mine = self.aggregates[category]
            mine.count += agg.count
            mine.total_time += agg.total_time
            mine.total_bytes += agg.total_bytes
            mine.max_duration = max(mine.max_duration, agg.max_duration)
        # Memory instrumentation: outstanding allocations add up; the
        # combined peak is at least each side's own peak and at least the
        # combined current level.
        self.current_alloc_bytes += other.current_alloc_bytes
        self.peak_alloc_bytes = max(
            self.peak_alloc_bytes, other.peak_alloc_bytes, self.current_alloc_bytes
        )
        self.metrics.merge_from(other.metrics)

    def report(self) -> str:
        """Human-readable per-category summary (for logs and examples)."""
        lines = [
            f"{'category':20s} {'count':>7s} {'time(s)':>10s} "
            f"{'bytes':>14s} {'mean(s)':>10s} {'MB/s':>10s}"
        ]
        for cat in self.categories():
            agg = self.aggregates[cat]
            mbps = agg.throughput / 1e6
            lines.append(
                f"{cat:20s} {agg.count:7d} {agg.total_time:10.4f} "
                f"{agg.total_bytes:14d} {agg.mean_duration:10.6f} {mbps:10.2f}"
            )
        if self.peak_alloc_bytes:
            lines.append(f"peak tracked allocation: {self.peak_alloc_bytes} bytes")
        metric_lines = self.metrics.render()
        if metric_lines:
            lines.append("-- metrics --")
            lines.extend(metric_lines)
        return "\n".join(lines)

    def summary(self) -> dict[str, dict]:
        return {
            cat: {
                "count": agg.count,
                "total_time": agg.total_time,
                "total_bytes": agg.total_bytes,
                "mean_duration": agg.mean_duration,
                "throughput": agg.throughput,
            }
            for cat, agg in self.aggregates.items()
        }
