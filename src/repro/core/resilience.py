"""Resiliency: timeout-and-retry and transactional output
(paper Section II.H).

"Regarding resiliency, the current version uses simple timeout-and-retry
schemes to cope with errors and failures during data movement, but we are
planning to incorporate our recent work on a distributed transaction
protocol [26] into future versions of FlexIO."

Both are implemented here:

* :class:`ReliableChannel` — the *current* scheme: every data-movement
  operation runs under a timeout with bounded retries and (modeled)
  exponential backoff; a :class:`FaultInjector` deterministically injects
  drops/timeouts so the behaviour is testable.
* :class:`TransactionCoordinator` — the *planned* scheme (D2T-style):
  an output step becomes a distributed transaction over all writer
  participants — two-phase commit with prepare votes, so a step is
  visible to readers either completely or not at all.
  :class:`TransactionalStreamWriter` applies it to a FlexIO stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.util import rng


class MovementFailed(RuntimeError):
    """An operation exhausted its retries."""


class TransactionAborted(RuntimeError):
    """The coordinator aborted the transaction (some participant failed)."""


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class FaultInjector:
    """Deterministic failure source for data-movement operations.

    Two modes, combinable: a seeded drop probability, and a script of
    exact operation indices to fail (1-based count of operations seen).
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        fail_ops: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> None:
        if not (0.0 <= drop_probability < 1.0):
            raise ValueError("drop_probability in [0, 1)")
        self.drop_probability = drop_probability
        self.fail_ops = set(fail_ops or ())
        self._rng = rng(seed)
        self.ops_seen = 0
        self.faults_injected = 0

    def should_fail(self) -> bool:
        self.ops_seen += 1
        fail = self.ops_seen in self.fail_ops or (
            self.drop_probability > 0
            and self._rng.random() < self.drop_probability
        )
        if fail:
            self.faults_injected += 1
        return fail


# ---------------------------------------------------------------------------
# Timeout-and-retry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff plus optional jitter."""

    max_retries: int = 3
    timeout: float = 1.0
    backoff_factor: float = 2.0
    #: Fraction of the backoff delay added as uniform random jitter, to
    #: decorrelate retry storms across ranks (0 → deterministic backoff).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout <= 0 or self.backoff_factor < 1.0:
            raise ValueError("timeout > 0 and backoff_factor >= 1 required")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay_before(self, attempt: int, rng: Optional[Any] = None) -> float:
        """Backoff delay before retry ``attempt`` (attempt 0 = first try).

        ``rng`` (a numpy Generator) supplies the jitter draw; without one
        the delay is the deterministic exponential schedule.
        """
        if attempt == 0:
            return 0.0
        base = self.timeout * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0.0 and rng is not None:
            base += base * self.jitter * float(rng.random())
        return base


@dataclass
class RetryStats:
    operations: int = 0
    retries: int = 0
    failures: int = 0
    #: Modeled seconds spent waiting on timeouts + backoff.
    time_lost: float = 0.0


def retry_call(
    op: Callable[[], Any],
    policy: RetryPolicy,
    retriable: tuple[type, ...],
    on_retry: Optional[Callable[[int, Exception], None]] = None,
    rng: Optional[Any] = None,
    sleep: Callable[[float], None] = None,
) -> Any:
    """Run ``op`` under ``policy`` with real (wall-clock) backoff.

    The network plane's reconnect loops share this driver: ``op`` is one
    attempt (an RPC, a publish, a fetch); a ``retriable`` exception
    triggers ``on_retry(attempt, exc)`` — where callers rebuild sockets
    and re-HELLO — after the policy's exponential backoff with seeded
    jitter.  Exhaustion re-raises the *last* retriable exception, so the
    caller decides the terminal type (e.g. wrap in ``SessionLost``).

    ``sleep`` is injectable for tests (defaults to ``time.sleep``).
    """
    import time as _time

    do_sleep = sleep if sleep is not None else _time.sleep
    last_exc: Optional[Exception] = None
    for attempt in range(policy.max_retries + 1):
        delay = policy.delay_before(attempt, rng)
        if delay > 0.0:
            do_sleep(delay)
        if attempt > 0 and on_retry is not None and last_exc is not None:
            try:
                on_retry(attempt, last_exc)
            except retriable as exc:
                last_exc = exc
                continue
        try:
            return op()
        except retriable as exc:
            last_exc = exc
    assert last_exc is not None
    raise last_exc


class ReliableChannel:
    """Wraps an unreliable send operation with timeout-and-retry.

    ``transport`` is any callable performing the movement (e.g. a bound
    ``ShmChannel.send`` or ``RdmaChannel.send``); the injector decides
    which invocations "time out".
    """

    def __init__(
        self,
        transport: Callable[..., Any],
        policy: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.transport = transport
        self.policy = policy or RetryPolicy()
        self.injector = injector or FaultInjector()
        self.stats = RetryStats()

    def send(self, *args: Any, **kwargs: Any) -> Any:
        """Run the operation, retrying on injected *and* real faults.

        Besides the injector's scripted timeouts, any
        :class:`~repro.transport.faults.TransportFault` or
        :class:`TimeoutError` raised by the transport callable itself is
        treated as a retriable movement error.  Returns the transport's
        return value; raises :class:`MovementFailed` once retries are
        exhausted.
        """
        from repro.transport.faults import TransportFault

        self.stats.operations += 1
        last_exc: Optional[Exception] = None
        for attempt in range(self.policy.max_retries + 1):
            self.stats.time_lost += self.policy.delay_before(attempt)
            if attempt > 0:
                self.stats.retries += 1
            if self.injector.should_fail():
                # The operation "times out": we pay the timeout and retry.
                self.stats.time_lost += self.policy.timeout
                last_exc = TimeoutError(f"movement timed out (attempt {attempt + 1})")
                continue
            try:
                return self.transport(*args, **kwargs)
            except (TransportFault, TimeoutError) as exc:
                self.stats.time_lost += self.policy.timeout
                last_exc = exc
        self.stats.failures += 1
        raise MovementFailed(
            f"gave up after {self.policy.max_retries + 1} attempts"
        ) from last_exc


# ---------------------------------------------------------------------------
# Distributed transactions (D2T-style two-phase commit)
# ---------------------------------------------------------------------------

class TxPhase(Enum):
    IDLE = "idle"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Participant:
    """One writer rank's transaction agent.

    ``prepare`` stages the rank's output (durably, in the real system);
    ``commit`` publishes the staged data through ``publish_fn``;
    ``abort`` discards it.  A :class:`FaultInjector` can fail prepares,
    and ``prepare_fn`` lets the rank do real work during prepare (e.g.
    move its bytes onto the wire) and vote on the outcome.
    """

    def __init__(
        self,
        rank: int,
        publish_fn: Callable[[int, dict], None],
        injector: Optional[FaultInjector] = None,
        prepare_fn: Optional[Callable[[int, dict], bool]] = None,
    ) -> None:
        self.rank = rank
        self._publish = publish_fn
        self.injector = injector
        self._prepare_fn = prepare_fn
        self.phase = TxPhase.IDLE
        self._staged: Optional[tuple[int, dict]] = None

    def prepare(self, step: int, payload: dict) -> bool:
        """Stage the payload; returns the participant's vote."""
        if self.injector is not None and self.injector.should_fail():
            self.phase = TxPhase.ABORTED
            self._staged = None
            return False
        if self._prepare_fn is not None and not self._prepare_fn(step, payload):
            self.phase = TxPhase.ABORTED
            self._staged = None
            return False
        self._staged = (step, dict(payload))
        self.phase = TxPhase.PREPARED
        return True

    def commit(self) -> None:
        if self.phase is not TxPhase.PREPARED or self._staged is None:
            raise TransactionAborted(f"rank {self.rank} has nothing prepared")
        step, payload = self._staged
        self._publish(step, payload)
        self._staged = None
        self.phase = TxPhase.COMMITTED

    def abort(self) -> None:
        self._staged = None
        self.phase = TxPhase.ABORTED


@dataclass
class TxStats:
    transactions: int = 0
    committed: int = 0
    aborted: int = 0


class TransactionCoordinator:
    """Two-phase commit across all participants of one output step."""

    def __init__(self, participants: Sequence[Participant]) -> None:
        if not participants:
            raise ValueError("a transaction needs participants")
        self.participants = list(participants)
        self.stats = TxStats()

    def run(self, step: int, payloads: dict[int, dict]) -> bool:
        """One transaction: prepare all, then commit or abort all.

        ``payloads`` maps rank → that rank's output record.  Returns True
        on commit; raises :class:`TransactionAborted` on abort (callers
        retry the step).
        """
        self.stats.transactions += 1
        votes = []
        for p in self.participants:
            payload = payloads.get(p.rank)
            if payload is None:
                votes.append(False)
                break
            votes.append(p.prepare(step, payload))
            if not votes[-1]:
                break
        if not all(votes) or len(votes) < len(self.participants):
            for p in self.participants:
                p.abort()
            self.stats.aborted += 1
            raise TransactionAborted(f"step {step}: a participant voted abort")
        for p in self.participants:
            p.commit()
        self.stats.committed += 1
        return True


class TransactionalStreamWriter:
    """All-or-nothing output steps on a FlexIO stream.

    Wraps per-rank write handles: ``write`` buffers locally; ``commit_step``
    runs two-phase commit — only on success does any data reach the
    stream, so readers never observe a torn step.  Failed steps are
    retried up to ``max_step_retries`` times.
    """

    def __init__(
        self,
        handles: Sequence[Any],
        injector: Optional[FaultInjector] = None,
        max_step_retries: int = 2,
    ) -> None:
        if not handles:
            raise ValueError("need at least one write handle")
        self._handles = list(handles)
        self._pending: dict[int, dict] = {r: {} for r in range(len(handles))}
        self._step = 0
        self.max_step_retries = max_step_retries

        def make_publish(idx: int):
            def publish(step: int, payload: dict) -> None:
                for name, (data, box, gshape) in payload.items():
                    self._handles[idx].write(name, data, box=box, global_shape=gshape)
                self._handles[idx].end_step()

            return publish

        self.participants = [
            Participant(r, make_publish(r), injector) for r in range(len(handles))
        ]
        self.coordinator = TransactionCoordinator(self.participants)

    def write(self, rank: int, name: str, data, box=None, global_shape=None) -> None:
        self._pending[rank][name] = (np.asarray(data), box, global_shape)

    def commit_step(self) -> int:
        """2PC the buffered step; returns the committed step index."""
        payloads = {r: vars_ for r, vars_ in self._pending.items()}
        attempts = 0
        while True:
            try:
                self.coordinator.run(self._step, payloads)
                break
            except TransactionAborted:
                attempts += 1
                if attempts > self.max_step_retries:
                    raise
        self._pending = {r: {} for r in range(len(self._handles))}
        self._step += 1
        return self._step - 1

    def close(self) -> None:
        for h in self._handles:
            h.close()
