"""Directory server + coordinators (paper Section II.C.1).

Before any data moves, simulation and analytics find each other: each
program elects a *local coordinator* (rank 0 here, as in practice); when
the simulation creates a stream its coordinator registers the stream name
with its contact information at the directory server; the analytics'
coordinator looks the name up and connects.  The server participates only
in discovery — never in the data path — so a single instance suffices.

Failure detection (Section II.H's "errors and failures during data
movement" extended to the control plane): a registration may carry a
**lease**.  The writing coordinator must :meth:`~DirectoryServer.heartbeat`
within the lease period; :meth:`~DirectoryServer.reap` evicts entries whose
lease expired and notifies the registered contact (``contact.fail(...)``),
so readers of a dead writer get a typed end-of-stream-with-error instead
of stalling forever.  Streams registered without a lease (the default)
are never evicted — exactly the old behaviour.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs import recorder as flight
from repro.obs.events import EV_ADMISSION_REJECT, EV_LEASE_REAP


class DirectoryError(RuntimeError):
    """Lookup of an unregistered name, or duplicate registration."""


@dataclass(frozen=True)
class CoordinatorInfo:
    """Contact information registered by a program's coordinator."""

    program: str
    coordinator_rank: int
    num_ranks: int
    #: Opaque contact handle (in-process: the stream-state object itself).
    contact: Any = None


@dataclass
class _Entry:
    writer: CoordinatorInfo
    readers: list[CoordinatorInfo] = field(default_factory=list)
    lookups: int = 0
    #: Lease period in seconds; None → the entry never expires.
    lease: Optional[float] = None
    #: Absolute deadline (directory clock) of the current lease.
    deadline: Optional[float] = None
    #: Serialized reader block predicates (pushdown), keyed by owner tag.
    predicates: dict = field(default_factory=dict)


class DirectoryServer:
    """Name → coordinator registry with optional liveness leases.

    Counters make the "server is not in the critical path" property
    checkable: per-step data movement never touches the server (writer
    heartbeats are control-plane traffic, counted separately).
    ``clock`` is injectable so tests and discrete-event runs can drive
    lease expiry deterministically.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._entries: dict[str, _Entry] = {}
        self._clock = clock or time.monotonic
        self.registrations = 0
        self.lookups = 0
        self.heartbeats = 0
        self.evictions = 0

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Swap the lease clock (tests / discrete-event drivers).

        Deadlines already computed against the old clock are not
        rebased, so swap before any leased registration exists.
        """
        self._clock = clock or time.monotonic

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    def leased_count(self) -> int:
        """Registrations currently held under a liveness lease."""
        return sum(1 for e in self._entries.values() if e.lease is not None)

    def register(
        self,
        name: str,
        info: CoordinatorInfo,
        lease: Optional[float] = None,
        remaining: Optional[float] = None,
    ) -> None:
        """The writing program's coordinator publishes a stream name.

        With ``lease`` (seconds) the registration must be refreshed via
        :meth:`heartbeat` or :meth:`reap` will evict it.  ``remaining``
        (restore path) sets the *first* deadline that many seconds from
        now instead of a full lease period, so a registration restored
        from a daemon checkpoint resumes its old lease clock rather than
        getting a fresh one.
        """
        if name in self._entries:
            raise DirectoryError(f"stream name {name!r} already registered")
        if lease is not None and lease <= 0:
            raise ValueError("lease must be positive (or None for no lease)")
        entry = _Entry(writer=info, lease=lease)
        if lease is not None:
            entry.deadline = self._clock() + (
                remaining if remaining is not None else lease
            )
        self._entries[name] = entry
        self.registrations += 1

    def heartbeat(self, name: str) -> None:
        """Writer liveness signal: pushes the lease deadline forward."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        self.heartbeats += 1
        if entry.lease is not None:
            entry.deadline = self._clock() + entry.lease

    def expired(self, now: Optional[float] = None) -> list[str]:
        """Names whose lease deadline has passed (no side effects)."""
        now = self._clock() if now is None else now
        return sorted(
            name
            for name, e in self._entries.items()
            if e.deadline is not None and now > e.deadline
        )

    def reap(self, now: Optional[float] = None) -> list[str]:
        """Evict every expired entry; returns the evicted names.

        Each evicted entry's contact is notified through its ``fail``
        method (when it has one) so the stream ends with a typed error
        for its readers rather than an eternal stall.
        """
        evicted = []
        for name in self.expired(now):
            entry = self._entries.pop(name)
            self.evictions += 1
            evicted.append(name)
            flight.record(EV_LEASE_REAP, stream=name, lease=entry.lease)
            fail = getattr(entry.writer.contact, "fail", None)
            if callable(fail):
                try:
                    fail(
                        f"writer lease expired "
                        f"({entry.lease:.3g}s without heartbeat)"
                    )
                # flexlint: ok(FXL001) eviction must never take the directory down
                except Exception:
                    pass
        return evicted

    def lookup(self, name: str, reader: Optional[CoordinatorInfo] = None) -> CoordinatorInfo:
        """A reading program's coordinator resolves a stream name."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        entry.lookups += 1
        self.lookups += 1
        if reader is not None:
            entry.readers.append(reader)
        return entry.writer

    def unregister(self, name: str) -> None:
        """Writer closes the stream; the name becomes reusable."""
        if name not in self._entries:
            raise DirectoryError(f"no stream registered under {name!r}")
        del self._entries[name]

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[tuple[str, CoordinatorInfo, Optional[float], Optional[float]]]:
        """Checkpoint view: ``(name, writer, lease, remaining_ttl)`` per
        registration, with ``remaining_ttl`` measured against the
        directory clock (None for unleased entries)."""
        now = self._clock()
        out = []
        for name, e in sorted(self._entries.items()):
            remaining = None if e.deadline is None else max(0.0, e.deadline - now)
            out.append((name, e.writer, e.lease, remaining))
        return out

    def readers_of(self, name: str) -> list[CoordinatorInfo]:
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        return list(entry.readers)

    # -- predicate pushdown -------------------------------------------------
    def register_predicate(self, name: str, owner: str, spec: str) -> None:
        """A reader publishes its chain's serialized block predicate.

        The writing side consults :meth:`predicates_of` to skip sending
        blocks *every* registered predicate provably drops.  Re-register
        under the same ``owner`` to replace (chain changed); an empty
        ``spec`` withdraws the owner's predicate.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        if spec:
            entry.predicates[owner] = spec
        else:
            entry.predicates.pop(owner, None)

    def predicates_of(self, name: str) -> list[str]:
        """Serialized block predicates registered for ``name``."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        return list(entry.predicates.values())


# ---------------------------------------------------------------------------
# Tenancy: per-tenant namespaces, bearer tokens, quotas, admission control
# ---------------------------------------------------------------------------

class AdmissionKind(enum.Enum):
    """Why admission control rejected a tenant request."""

    UNKNOWN_TENANT = "unknown_tenant"   # no such tenant namespace
    AUTH_FAILURE = "auth"               # bearer token mismatch
    STREAM_QUOTA = "streams"            # max concurrent streams exceeded
    BYTES_QUOTA = "bytes_per_s"         # byte-rate budget exhausted
    LEASE_QUOTA = "leases"              # too many outstanding leases


class AdmissionError(DirectoryError):
    """Root of every admission-control rejection; carries its kind.

    Sits below :class:`DirectoryError` so existing control-plane error
    handling catches it, while the ``kind`` mirrors the transport fault
    taxonomy's shape for typed handling and wire encoding.
    """

    kind: Optional[AdmissionKind] = None


class UnknownTenant(AdmissionError):
    """Request named a tenant the directory does not know."""

    kind = AdmissionKind.UNKNOWN_TENANT


class AuthFailure(AdmissionError):
    """Bearer token did not match the tenant's configured token."""

    kind = AdmissionKind.AUTH_FAILURE


class QuotaExceeded(AdmissionError):
    """A tenant quota (streams, bytes/s, leases) would be exceeded."""

    def __init__(self, kind: AdmissionKind, message: str) -> None:
        super().__init__(message)
        self.kind = kind


_ADMISSION_FOR: dict[str, type] = {
    AdmissionKind.UNKNOWN_TENANT.value: UnknownTenant,
    AdmissionKind.AUTH_FAILURE.value: AuthFailure,
}


def admission_exception(kind_name: str, message: str) -> AdmissionError:
    """Rebuild the typed admission error for a wire-carried kind name."""
    cls = _ADMISSION_FOR.get(kind_name)
    if cls is not None:
        return cls(message)
    try:
        return QuotaExceeded(AdmissionKind(kind_name), message)
    except ValueError:
        err = AdmissionError(message)
        return err


@dataclass(frozen=True)
class TenantSpec:
    """One tenant namespace: identity, bearer token, quotas.

    ``None`` for any quota means unlimited, so a default-constructed
    spec behaves exactly like the pre-tenancy directory.
    """

    name: str
    token: Optional[str] = None
    max_streams: Optional[int] = None
    max_bytes_per_s: Optional[float] = None
    max_leases: Optional[int] = None


class _TokenBucket:
    """Byte-rate budget: ``rate`` bytes/s capacity, refilled lazily from
    the directory clock; one second of burst headroom."""

    __slots__ = ("rate", "burst", "_level", "_last", "_clock")

    def __init__(self, rate: float, clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(rate)
        self._level = self.burst
        self._clock = clock
        self._last = clock()

    def try_consume(self, nbytes: int) -> bool:
        now = self._clock()
        self._level = min(self.burst, self._level + (now - self._last) * self.rate)
        self._last = now
        if nbytes > self._level:
            return False
        self._level -= nbytes
        return True


class TenantDirectory:
    """Multi-tenant front of the directory: auth, quotas, namespaces.

    Each tenant owns an isolated :class:`DirectoryServer` (stream names
    are scoped per tenant), all sharing one injectable ``clock`` so
    lease reaping stays deterministic under test.  Every admission
    decision is accounted: rejections raise a typed
    :class:`AdmissionError`, bump a per-tenant labeled counter in the
    optional metrics registry, and land in the flight recorder.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
    ) -> None:
        self._clock = clock or time.monotonic
        self.metrics = metrics
        self._tenants: dict[str, TenantSpec] = {}
        self._servers: dict[str, DirectoryServer] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    # -- tenant management -------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> None:
        if spec.name in self._tenants:
            raise DirectoryError(f"tenant {spec.name!r} already exists")
        self._tenants[spec.name] = spec
        self._servers[spec.name] = DirectoryServer(clock=self._clock)
        if spec.max_bytes_per_s is not None:
            self._buckets[spec.name] = _TokenBucket(spec.max_bytes_per_s, self._clock)

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def specs(self) -> list[TenantSpec]:
        """Every tenant's spec (checkpoint view), sorted by name."""
        return [self._tenants[t] for t in self.tenants()]

    def spec(self, tenant: str) -> TenantSpec:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise self._reject(tenant, UnknownTenant(f"unknown tenant {tenant!r}"))

    def server_for(self, tenant: str) -> DirectoryServer:
        self.spec(tenant)
        return self._servers[tenant]

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Swap the shared clock across every tenant namespace."""
        self._clock = clock or time.monotonic
        for server in self._servers.values():
            server.set_clock(self._clock)
        for bucket in self._buckets.values():
            bucket._clock = self._clock
            bucket._last = self._clock()

    # -- admission control -------------------------------------------------
    def _reject(self, tenant: str, err: AdmissionError) -> AdmissionError:
        """Account one rejection (counter + flight event); returns the
        error for the caller to raise."""
        self.rejected += 1
        kind = err.kind.value if err.kind is not None else "other"
        if self.metrics is not None:
            self.metrics.counter(
                "tenant.admission.rejected",
                labels={"tenant": tenant, "reason": kind},
            ).inc()
        flight.record(EV_ADMISSION_REJECT, tenant=tenant, reason=kind)
        return err

    def authenticate(self, tenant: str, token: Optional[str] = None) -> TenantSpec:
        """Check the bearer token against the tenant's configured one."""
        spec = self.spec(tenant)
        if spec.token is not None and token != spec.token:
            raise self._reject(tenant, AuthFailure(f"bad token for tenant {tenant!r}"))
        self.admitted += 1
        return spec

    def register(
        self,
        tenant: str,
        name: str,
        info: CoordinatorInfo,
        lease: Optional[float] = None,
        remaining: Optional[float] = None,
    ) -> None:
        """Tenant-scoped :meth:`DirectoryServer.register` behind quotas."""
        spec = self.spec(tenant)
        server = self._servers[tenant]
        if spec.max_streams is not None and len(server.names()) >= spec.max_streams:
            raise self._reject(tenant, QuotaExceeded(
                AdmissionKind.STREAM_QUOTA,
                f"tenant {tenant!r} at max_streams={spec.max_streams}",
            ))
        if (
            lease is not None
            and spec.max_leases is not None
            and server.leased_count() >= spec.max_leases
        ):
            raise self._reject(tenant, QuotaExceeded(
                AdmissionKind.LEASE_QUOTA,
                f"tenant {tenant!r} at max_leases={spec.max_leases}",
            ))
        server.register(name, info, lease=lease, remaining=remaining)
        if self.metrics is not None:
            self.metrics.gauge(
                "tenant.streams", labels={"tenant": tenant}
            ).set(len(server.names()))

    def charge_bytes(self, tenant: str, nbytes: int) -> None:
        """Debit a data-plane transfer against the tenant's byte budget."""
        spec = self.spec(tenant)
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_consume(nbytes):
            raise self._reject(tenant, QuotaExceeded(
                AdmissionKind.BYTES_QUOTA,
                f"tenant {tenant!r} over {spec.max_bytes_per_s:g} B/s budget",
            ))
        if self.metrics is not None:
            self.metrics.counter(
                "tenant.bytes", labels={"tenant": tenant}
            ).inc(nbytes)

    # -- tenant-scoped directory operations --------------------------------
    def lookup(self, tenant: str, name: str, reader=None) -> CoordinatorInfo:
        return self.server_for(tenant).lookup(name, reader)

    def heartbeat(self, tenant: str, name: str) -> None:
        self.server_for(tenant).heartbeat(name)

    def unregister(self, tenant: str, name: str) -> None:
        server = self.server_for(tenant)
        server.unregister(name)
        if self.metrics is not None:
            self.metrics.gauge(
                "tenant.streams", labels={"tenant": tenant}
            ).set(len(server.names()))

    def reap_all(self, now: Optional[float] = None) -> dict[str, list[str]]:
        """Reap expired leases across every tenant namespace."""
        out: dict[str, list[str]] = {}
        for tenant, server in self._servers.items():
            evicted = server.reap(now)
            if evicted:
                out[tenant] = evicted
        return out
