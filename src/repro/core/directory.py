"""Directory server + coordinators (paper Section II.C.1).

Before any data moves, simulation and analytics find each other: each
program elects a *local coordinator* (rank 0 here, as in practice); when
the simulation creates a stream its coordinator registers the stream name
with its contact information at the directory server; the analytics'
coordinator looks the name up and connects.  The server participates only
in discovery — never in the data path — so a single instance suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class DirectoryError(RuntimeError):
    """Lookup of an unregistered name, or duplicate registration."""


@dataclass(frozen=True)
class CoordinatorInfo:
    """Contact information registered by a program's coordinator."""

    program: str
    coordinator_rank: int
    num_ranks: int
    #: Opaque contact handle (in-process: the stream-state object itself).
    contact: Any = None


@dataclass
class _Entry:
    writer: CoordinatorInfo
    readers: list[CoordinatorInfo] = field(default_factory=list)
    lookups: int = 0


class DirectoryServer:
    """Name → coordinator registry.

    Counters make the "server is not in the critical path" property
    checkable: per-step data movement never touches the server.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self.registrations = 0
        self.lookups = 0

    def register(self, name: str, info: CoordinatorInfo) -> None:
        """The writing program's coordinator publishes a stream name."""
        if name in self._entries:
            raise DirectoryError(f"stream name {name!r} already registered")
        self._entries[name] = _Entry(writer=info)
        self.registrations += 1

    def lookup(self, name: str, reader: Optional[CoordinatorInfo] = None) -> CoordinatorInfo:
        """A reading program's coordinator resolves a stream name."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        entry.lookups += 1
        self.lookups += 1
        if reader is not None:
            entry.readers.append(reader)
        return entry.writer

    def unregister(self, name: str) -> None:
        """Writer closes the stream; the name becomes reusable."""
        if name not in self._entries:
            raise DirectoryError(f"no stream registered under {name!r}")
        del self._entries[name]

    def names(self) -> list[str]:
        return sorted(self._entries)

    def readers_of(self, name: str) -> list[CoordinatorInfo]:
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        return list(entry.readers)
