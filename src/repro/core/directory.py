"""Directory server + coordinators (paper Section II.C.1).

Before any data moves, simulation and analytics find each other: each
program elects a *local coordinator* (rank 0 here, as in practice); when
the simulation creates a stream its coordinator registers the stream name
with its contact information at the directory server; the analytics'
coordinator looks the name up and connects.  The server participates only
in discovery — never in the data path — so a single instance suffices.

Failure detection (Section II.H's "errors and failures during data
movement" extended to the control plane): a registration may carry a
**lease**.  The writing coordinator must :meth:`~DirectoryServer.heartbeat`
within the lease period; :meth:`~DirectoryServer.reap` evicts entries whose
lease expired and notifies the registered contact (``contact.fail(...)``),
so readers of a dead writer get a typed end-of-stream-with-error instead
of stalling forever.  Streams registered without a lease (the default)
are never evicted — exactly the old behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs import recorder as flight
from repro.obs.events import EV_LEASE_REAP


class DirectoryError(RuntimeError):
    """Lookup of an unregistered name, or duplicate registration."""


@dataclass(frozen=True)
class CoordinatorInfo:
    """Contact information registered by a program's coordinator."""

    program: str
    coordinator_rank: int
    num_ranks: int
    #: Opaque contact handle (in-process: the stream-state object itself).
    contact: Any = None


@dataclass
class _Entry:
    writer: CoordinatorInfo
    readers: list[CoordinatorInfo] = field(default_factory=list)
    lookups: int = 0
    #: Lease period in seconds; None → the entry never expires.
    lease: Optional[float] = None
    #: Absolute deadline (directory clock) of the current lease.
    deadline: Optional[float] = None


class DirectoryServer:
    """Name → coordinator registry with optional liveness leases.

    Counters make the "server is not in the critical path" property
    checkable: per-step data movement never touches the server (writer
    heartbeats are control-plane traffic, counted separately).
    ``clock`` is injectable so tests and discrete-event runs can drive
    lease expiry deterministically.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._entries: dict[str, _Entry] = {}
        self._clock = clock or time.monotonic
        self.registrations = 0
        self.lookups = 0
        self.heartbeats = 0
        self.evictions = 0

    def register(
        self, name: str, info: CoordinatorInfo, lease: Optional[float] = None
    ) -> None:
        """The writing program's coordinator publishes a stream name.

        With ``lease`` (seconds) the registration must be refreshed via
        :meth:`heartbeat` or :meth:`reap` will evict it.
        """
        if name in self._entries:
            raise DirectoryError(f"stream name {name!r} already registered")
        if lease is not None and lease <= 0:
            raise ValueError("lease must be positive (or None for no lease)")
        entry = _Entry(writer=info, lease=lease)
        if lease is not None:
            entry.deadline = self._clock() + lease
        self._entries[name] = entry
        self.registrations += 1

    def heartbeat(self, name: str) -> None:
        """Writer liveness signal: pushes the lease deadline forward."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        self.heartbeats += 1
        if entry.lease is not None:
            entry.deadline = self._clock() + entry.lease

    def expired(self, now: Optional[float] = None) -> list[str]:
        """Names whose lease deadline has passed (no side effects)."""
        now = self._clock() if now is None else now
        return sorted(
            name
            for name, e in self._entries.items()
            if e.deadline is not None and now > e.deadline
        )

    def reap(self, now: Optional[float] = None) -> list[str]:
        """Evict every expired entry; returns the evicted names.

        Each evicted entry's contact is notified through its ``fail``
        method (when it has one) so the stream ends with a typed error
        for its readers rather than an eternal stall.
        """
        evicted = []
        for name in self.expired(now):
            entry = self._entries.pop(name)
            self.evictions += 1
            evicted.append(name)
            flight.record(EV_LEASE_REAP, stream=name, lease=entry.lease)
            fail = getattr(entry.writer.contact, "fail", None)
            if callable(fail):
                try:
                    fail(
                        f"writer lease expired "
                        f"({entry.lease:.3g}s without heartbeat)"
                    )
                # flexlint: ok(FXL001) eviction must never take the directory down
                except Exception:
                    pass
        return evicted

    def lookup(self, name: str, reader: Optional[CoordinatorInfo] = None) -> CoordinatorInfo:
        """A reading program's coordinator resolves a stream name."""
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        entry.lookups += 1
        self.lookups += 1
        if reader is not None:
            entry.readers.append(reader)
        return entry.writer

    def unregister(self, name: str) -> None:
        """Writer closes the stream; the name becomes reusable."""
        if name not in self._entries:
            raise DirectoryError(f"no stream registered under {name!r}")
        del self._entries[name]

    def names(self) -> list[str]:
        return sorted(self._entries)

    def readers_of(self, name: str) -> list[CoordinatorInfo]:
        entry = self._entries.get(name)
        if entry is None:
            raise DirectoryError(f"no stream registered under {name!r}")
        return list(entry.readers)
