"""Data types for coupled-run simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.redistribution import CachingOption
from repro.core.runtime import NumaBufferPolicy
from repro.machine.cache import CacheProfile
from repro.placement.algorithms import AnalyticsProfile, SimProfile
from repro.placement.metrics import RunMetrics


class PlacementStyle(Enum):
    """Where the analytics run (Figure 1's options)."""

    SOLO = "solo"              # simulation only, no I/O — the lower bound
    INLINE = "inline"          # analytics called from simulation processes
    HELPER_CORE = "helper-core"
    STAGING = "staging"
    OFFLINE = "offline"        # through the parallel file system
    CUSTOM = "custom"          # style derived from a Placement object


@dataclass(frozen=True)
class CoupledWorkload:
    """Everything the simulator needs to know about one coupled app pair."""

    name: str
    sim: SimProfile
    ana: AnalyticsProfile
    num_steps: int
    sim_cache: CacheProfile
    ana_cache: CacheProfile
    #: Simulation cycles per I/O interval (GTS: 2; used for Fig. 7 bars).
    cycles_per_interval: int = 2
    #: Fixed per-step analytics overhead beyond the scaled compute
    #: (receive/unpack, writing analysis products).
    ana_step_overhead: float = 0.0
    #: Bytes of analysis products written to the FS per step (histograms,
    #: rendered PPM images).
    ana_output_bytes: int = 0
    #: Per-rank thread count the simulation uses when it keeps ALL cores
    #: (inline/solo/staging/offline); helper-core gives one up.
    full_node_threads: Optional[int] = None
    #: Intra-program cross-node bytes per step under the best-known sim
    #: layout; a placement whose layout crosses more pays an MPI slowdown
    #: (how hybrid placements hurt S3D in Figure 9).
    baseline_intraprog_cross_bytes: float = 0.0
    #: Same for within-node cross-NUMA bytes (the holistic-vs-topo-aware
    #: alignment margin).
    baseline_intraprog_crossnuma_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.ana_step_overhead < 0 or self.ana_output_bytes < 0:
            raise ValueError("overheads must be >= 0")


@dataclass(frozen=True)
class CoupledOptions:
    """Tunables of the I/O path (the paper's Section IV.B.1 knobs)."""

    asynchronous: bool = True
    batching: bool = True
    caching: CachingOption = CachingOption.CACHING_ALL
    #: Steps FlexIO may buffer before the writer stalls (backpressure).
    max_buffered_steps: int = 2
    #: Receiver-directed Get concurrency bound (None: unscheduled flood).
    scheduler_max_concurrent: Optional[int] = 4
    use_xpmem: bool = False
    numa_policy: NumaBufferPolicy = NumaBufferPolicy.WRITER_LOCAL
    #: Fraction of sim compute lost per unit of async-movement duty cycle
    #: with scheduling on / off (network interference on the sim's MPI).
    interference_scheduled: float = 0.12
    interference_flood: float = 0.30
    #: Cap on the network-interference slowdown.
    interference_cap: float = 0.5
    #: Slowdown when a rank's OpenMP threads straddle NUMA domains
    #: (paper: up to 7 % on Smoky).
    numa_split_penalty: float = 0.07

    def __post_init__(self) -> None:
        if self.max_buffered_steps < 1:
            raise ValueError("max_buffered_steps must be >= 1")
        if self.scheduler_max_concurrent is not None and self.scheduler_max_concurrent < 1:
            raise ValueError("scheduler_max_concurrent must be >= 1 or None")


@dataclass
class StepTimes:
    """Per-step derived timings (before pipelining)."""

    sim_compute: float
    sim_io_visible: float
    movement_latency: float
    ana_compute: float
    #: Multiplicative sim slowdown components, e.g. {"cache": 0.041}.
    slowdowns: dict = field(default_factory=dict)

    @property
    def sim_step_total(self) -> float:
        return self.sim_compute + self.sim_io_visible


@dataclass
class CoupledResult:
    """Everything one simulated run reports."""

    metrics: RunMetrics
    step: StepTimes
    #: Totals over the run: cycle1, cycle2, io, analysis, ana_idle.
    phases: dict
    #: (solo_miss_rate, shared_miss_rate) per 1K instructions for the sim.
    cache_misses: tuple[float, float]
    analytics_idle_fraction: float
    num_analytics: int

    @property
    def total_execution_time(self) -> float:
        return self.metrics.total_execution_time
