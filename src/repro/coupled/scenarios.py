"""The paper's two evaluation scenarios, packaged for the benchmarks.

Calibration constants trace to specific paper statements:

* GTS production cycle ≈ 3 s at 4 OpenMP threads, output every 2 cycles
  (so the I/O interval is ~6 s; consistent with asynchronous staging
  movement being a real interference threat that scheduling must keep
  "under 15 %" slowdown);
* inline GTS analytics weigh 23.6 % of runtime at 128 MPI processes
  (Figure 7), with a small serial fraction so the inline penalty *grows*
  with scale (the paper's "penalty of running non-scalable analytics at
  large scales");
* GTS + helper-core analytics sharing a 2 MiB Smoky L3 inflate GTS L3
  misses by ~47 % and its cycle time by ~4.1 % (Figure 8) — the cache
  profiles below hit those numbers through the contention model;
* S3D_Box outputs 1.7 MB per process every 10 cycles; its visualization
  renders at ~11 MB/s per process with an ~8 % compositing serial tail,
  which makes rate-matching allocate roughly one viz process per hundred
  simulation processes (the paper's 128:1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gts import GtsConfig, gts_sim_profile
from repro.apps.s3d import S3dConfig, s3d_sim_profile
from repro.coupled.model import CoupledOptions, CoupledResult, CoupledWorkload, PlacementStyle
from repro.coupled.simulate import simulate_coupled
from repro.machine.cache import CacheProfile
from repro.machine.topology import Machine
from repro.placement.algorithms import (
    AnalyticsProfile,
    DataAwareMapping,
    HolisticPlacement,
    NodeTopologyAwarePlacement,
    Placement,
    process_group_matrix,
)
from repro.util import KiB, MiB


# ---------------------------------------------------------------------------
# Cache profiles (Figure 8 calibration)
# ---------------------------------------------------------------------------

GTS_CACHE = CacheProfile(
    name="gts",
    working_set_bytes=8 * MiB,
    intensity=10.0,
    base_miss_per_kinst=6.0,
    cpi=1.3,
    miss_penalty_cycles=19.0,
)

GTS_ANALYTICS_CACHE = CacheProfile(
    name="gts-analytics",
    working_set_bytes=4 * MiB,
    intensity=2.5,
    base_miss_per_kinst=8.0,
    cpi=1.1,
    miss_penalty_cycles=19.0,
    # One-pass streaming over the particle buffers: compulsory misses.
    alloc_insensitive=True,
)

S3D_CACHE = CacheProfile(
    name="s3d",
    working_set_bytes=6 * MiB,
    intensity=8.0,
    base_miss_per_kinst=4.0,
    cpi=1.2,
    miss_penalty_cycles=19.0,
)

S3D_VIZ_CACHE = CacheProfile(
    name="s3d-viz",
    working_set_bytes=2 * MiB,
    intensity=2.0,
    base_miss_per_kinst=3.0,
    cpi=1.0,
    miss_penalty_cycles=19.0,
    alloc_insensitive=True,
)


# ---------------------------------------------------------------------------
# GTS scenario
# ---------------------------------------------------------------------------

#: Inline analytics fraction measured at 128 MPI processes (Figure 7).
GTS_INLINE_FRACTION_AT_128 = 0.236
#: Serial (non-scaling) fraction of the analysis chain.
GTS_ANA_SERIAL = 0.003
#: Analytics per-step fixed overhead (receive, histogram file writes) as
#: a fraction of the I/O interval.
GTS_ANA_OVERHEAD_FRAC = 0.10


def gts_analytics_profile_coupled(io_interval: float, num_ranks: int) -> AnalyticsProfile:
    """Analytics profile calibrated so inline time at 128 ranks is 23.6 %.

    One process handles one rank's data in ``p`` seconds; total work is
    ``num_ranks * p`` with serial fraction ``f``, so inline (n = N) costs
    ``p ((1-f) + f N)`` — matching 0.236 × interval at N = 128 and growing
    with N.
    """
    f = GTS_ANA_SERIAL
    p = GTS_INLINE_FRACTION_AT_128 * io_interval / ((1 - f) + f * 128)
    return AnalyticsProfile(
        time_single=p * num_ranks,
        serial_fraction=f,
        internal_ring_bytes=256 * KiB,  # histogram reduction traffic
        threads_per_rank=1,
    )


def gts_helper_threads(machine: Machine) -> int:
    """Threads per rank when one core per rank is ceded to analytics."""
    return machine.node_type.cores_per_domain - 1


def gts_ranks_for_cores(machine: Machine, cores: int) -> int:
    """GTS ranks occupying ``cores`` in the full-node configuration."""
    return cores // machine.node_type.cores_per_domain


def gts_workload(
    machine: Machine,
    num_ranks: int,
    helper_mode: bool,
    num_steps: int = 10,
) -> tuple[CoupledWorkload, GtsConfig]:
    """Build the GTS coupled workload for one machine and scale.

    ``helper_mode=True`` configures the paper's helper-core layout: one
    rank per NUMA domain at (domain size − 1) threads, the spare core per
    domain hosting an analytics process.  ``False`` is the full-node
    layout (inline / staging / solo / offline).
    """
    full_threads = machine.node_type.cores_per_domain
    threads = gts_helper_threads(machine) if helper_mode else full_threads
    cfg = GtsConfig(num_ranks=num_ranks, omp_threads=threads, cycle_time_4t=3.0)
    sim = gts_sim_profile(cfg)
    ana = gts_analytics_profile_coupled(cfg.io_interval, num_ranks)
    workload = CoupledWorkload(
        name="gts",
        sim=sim,
        ana=ana,
        num_steps=num_steps,
        sim_cache=GTS_CACHE,
        ana_cache=GTS_ANALYTICS_CACHE,
        cycles_per_interval=cfg.output_every,
        ana_step_overhead=GTS_ANA_OVERHEAD_FRAC * cfg.io_interval,
        ana_output_bytes=4 * MiB,  # 1-D/2-D histogram files
        full_node_threads=full_threads,
    )
    return workload, cfg


def evaluate_gts_placements(
    machine: Machine,
    num_ranks: int,
    num_steps: int = 10,
    options: Optional[CoupledOptions] = None,
) -> dict[str, CoupledResult]:
    """All of Figure 6's lines at one scale, plus the offline option.

    Returns results keyed: lower-bound, inline, helper (data-aware),
    helper (holistic), helper (topology-aware), staging, offline.
    """
    opts = options or CoupledOptions()
    results: dict[str, CoupledResult] = {}

    full_wl, _ = gts_workload(machine, num_ranks, helper_mode=False, num_steps=num_steps)
    results["lower-bound"] = simulate_coupled(
        machine, full_wl, style=PlacementStyle.SOLO, options=opts
    )
    results["inline"] = simulate_coupled(
        machine, full_wl, style=PlacementStyle.INLINE, options=opts
    )
    results["staging"] = simulate_coupled(
        machine, full_wl, style=PlacementStyle.STAGING, options=opts
    )
    results["offline"] = simulate_coupled(
        machine, full_wl, style=PlacementStyle.OFFLINE, options=opts
    )

    helper_wl, cfg = gts_workload(machine, num_ranks, helper_mode=True, num_steps=num_steps)
    mat = process_group_matrix(num_ranks, num_ranks, cfg.bytes_per_rank)
    sim_prof = helper_wl.sim
    # Baseline sim-internal cross-node traffic: the topology-aware layout.
    topo = NodeTopologyAwarePlacement().place(
        machine, sim_prof, helper_wl.ana, mat, num_ana=num_ranks
    )
    helper_wl = CoupledWorkload(
        **{
            **helper_wl.__dict__,
            "baseline_intraprog_cross_bytes": topo.intraprogram_internode_bytes(),
            "baseline_intraprog_crossnuma_bytes": topo.intraprogram_crossnuma_bytes(),
        }
    )
    for label, algo in (
        ("helper (data-aware)", DataAwareMapping()),
        ("helper (holistic)", HolisticPlacement()),
        ("helper (topology-aware)", NodeTopologyAwarePlacement()),
    ):
        placement = algo.place(machine, sim_prof, helper_wl.ana, mat, num_ana=num_ranks)
        results[label] = simulate_coupled(
            machine, helper_wl, placement=placement, options=opts
        )
    return results


# ---------------------------------------------------------------------------
# S3D scenario
# ---------------------------------------------------------------------------

#: Volume-rendering speed per viz process (seconds per MB of field data).
S3D_RENDER_S_PER_MB = 0.088
#: Compositing / image-assembly serial fraction.
S3D_VIZ_SERIAL = 0.08


def s3d_viz_profile_coupled(config: S3dConfig) -> AnalyticsProfile:
    total_mb = config.num_ranks * config.bytes_per_rank / MiB
    return AnalyticsProfile(
        time_single=S3D_RENDER_S_PER_MB * total_mb,
        serial_fraction=S3D_VIZ_SERIAL,
        internal_ring_bytes=2 * MiB,  # image compositing exchange
        threads_per_rank=1,
    )


def s3d_workload(
    machine: Machine, num_ranks: int, num_steps: int = 10
) -> tuple[CoupledWorkload, S3dConfig]:
    cfg = S3dConfig(num_ranks=num_ranks)
    sim = s3d_sim_profile(cfg)
    ana = s3d_viz_profile_coupled(cfg)
    gs = cfg.global_shape
    image_bytes = gs[1] * gs[2] * 3  # one PPM per species
    workload = CoupledWorkload(
        name="s3d",
        sim=sim,
        ana=ana,
        num_steps=num_steps,
        sim_cache=S3D_CACHE,
        ana_cache=S3D_VIZ_CACHE,
        cycles_per_interval=1,
        ana_step_overhead=0.2,
        ana_output_bytes=22 * image_bytes,
        full_node_threads=1,
    )
    return workload, cfg


def evaluate_s3d_placements(
    machine: Machine,
    num_ranks: int,
    num_steps: int = 10,
    options: Optional[CoupledOptions] = None,
) -> dict[str, CoupledResult]:
    """All of Figure 9's lines at one scale.

    Returns results keyed: lower-bound, inline, hybrid (data-aware),
    staging (holistic), staging (topology-aware).
    """
    opts = options or CoupledOptions()
    results: dict[str, CoupledResult] = {}
    wl, cfg = s3d_workload(machine, num_ranks, num_steps)

    results["lower-bound"] = simulate_coupled(
        machine, wl, style=PlacementStyle.SOLO, options=opts
    )
    results["inline"] = simulate_coupled(
        machine, wl, style=PlacementStyle.INLINE, options=opts
    )

    # The global-array pattern: every sim rank feeds every viz rank its
    # block (uniform matrix at this granularity).
    from repro.placement.algorithms import allocate_analytics_sync

    n_viz = allocate_analytics_sync(wl.sim, wl.ana)
    mat = np.full((num_ranks, n_viz), cfg.bytes_per_rank // max(1, n_viz), dtype=np.int64)

    topo = NodeTopologyAwarePlacement().place(machine, wl.sim, wl.ana, mat, num_ana=n_viz)
    wl = CoupledWorkload(
        **{
            **wl.__dict__,
            "baseline_intraprog_cross_bytes": topo.intraprogram_internode_bytes(),
            "baseline_intraprog_crossnuma_bytes": topo.intraprogram_crossnuma_bytes(),
        }
    )

    for label, algo in (
        ("hybrid (data-aware)", DataAwareMapping()),
        ("staging (holistic)", HolisticPlacement()),
        ("staging (topology-aware)", NodeTopologyAwarePlacement()),
    ):
        placement = algo.place(machine, wl.sim, wl.ana, mat, num_ana=n_viz)
        results[label] = simulate_coupled(machine, wl, placement=placement, options=opts)
    return results


# ---------------------------------------------------------------------------
# Pixie3D scenario (paper Section II.H: the XT5 pipeline)
# ---------------------------------------------------------------------------

PIXIE3D_CACHE = CacheProfile(
    name="pixie3d",
    working_set_bytes=5 * MiB,
    intensity=7.0,
    base_miss_per_kinst=3.5,
    cpi=1.1,
    miss_penalty_cycles=19.0,
)

PIXIE3D_ANALYSIS_CACHE = CacheProfile(
    name="pixie3d-analysis",
    working_set_bytes=2 * MiB,
    intensity=2.0,
    base_miss_per_kinst=3.0,
    cpi=1.0,
    miss_penalty_cycles=19.0,
    alloc_insensitive=True,
)


def pixie3d_workload(
    machine: Machine, num_ranks: int, num_steps: int = 10
) -> tuple[CoupledWorkload, "object"]:
    """The Pixie3D coupled workload on one machine and scale."""
    from repro.apps.pixie3d import (
        Pixie3dConfig,
        pixie3d_analysis_profile,
        pixie3d_sim_profile,
    )

    cfg = Pixie3dConfig(num_ranks=num_ranks)
    sim = pixie3d_sim_profile(cfg)
    ana = pixie3d_analysis_profile(cfg)
    gs = cfg.global_shape
    workload = CoupledWorkload(
        name="pixie3d",
        sim=sim,
        ana=ana,
        num_steps=num_steps,
        sim_cache=PIXIE3D_CACHE,
        ana_cache=PIXIE3D_ANALYSIS_CACHE,
        cycles_per_interval=1,
        ana_step_overhead=0.1,
        ana_output_bytes=gs[1] * gs[2] * 3,  # one slice image per step
        full_node_threads=1,
    )
    return workload, cfg


def evaluate_pixie3d_placements(
    machine: Machine,
    num_ranks: int,
    num_steps: int = 20,
    options: Optional[CoupledOptions] = None,
) -> dict[str, CoupledResult]:
    """Placement sweep for the Pixie3D pipeline (extension experiment)."""
    opts = options or CoupledOptions()
    results: dict[str, CoupledResult] = {}
    wl, cfg = pixie3d_workload(machine, num_ranks, num_steps)

    results["lower-bound"] = simulate_coupled(
        machine, wl, style=PlacementStyle.SOLO, options=opts
    )
    results["inline"] = simulate_coupled(
        machine, wl, style=PlacementStyle.INLINE, options=opts
    )
    results["offline"] = simulate_coupled(
        machine, wl, style=PlacementStyle.OFFLINE, options=opts
    )

    from repro.placement.algorithms import allocate_analytics_sync

    n_ana = allocate_analytics_sync(wl.sim, wl.ana)
    mat = np.full(
        (num_ranks, n_ana), cfg.bytes_per_rank // max(1, n_ana), dtype=np.int64
    )
    topo = NodeTopologyAwarePlacement().place(machine, wl.sim, wl.ana, mat, num_ana=n_ana)
    wl = CoupledWorkload(
        **{
            **wl.__dict__,
            "baseline_intraprog_cross_bytes": topo.intraprogram_internode_bytes(),
            "baseline_intraprog_crossnuma_bytes": topo.intraprogram_crossnuma_bytes(),
        }
    )
    for label, algo in (
        ("data-aware", DataAwareMapping()),
        ("holistic", HolisticPlacement()),
        ("topology-aware", NodeTopologyAwarePlacement()),
    ):
        placement = algo.place(machine, wl.sim, wl.ana, mat, num_ana=n_ana)
        results[label] = simulate_coupled(machine, wl, placement=placement, options=opts)
    return results
