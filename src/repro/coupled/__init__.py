"""End-to-end coupled-run simulation (paper Section IV).

Given a machine model, a workload (simulation + analytics profiles, cache
behaviour, step counts), and a placement (inline, helper-core, staging,
offline, or a :class:`~repro.placement.algorithms.Placement` computed by
one of the three algorithms), :func:`simulate_coupled` runs the coupled
pipeline on the discrete-event kernel and reports the paper's metrics:

* Total Execution Time with a per-phase breakdown (Figure 7's
  cycle/I-O/analysis/idle bars);
* Total CPU Hours;
* Data Movement Volume split intra-node / inter-node / file;
* cache-interference report (Figure 8's miss-rate inflation);
* the simulation slowdown decomposition (threads taken, cache contention,
  NUMA-split threads, asynchronous-movement network interference).

:mod:`repro.coupled.scenarios` packages the two evaluation workloads (GTS
and S3D_Box on Smoky and Titan) and sweeps every placement for the
benchmark harness.
"""

from repro.coupled.model import (
    CoupledOptions,
    CoupledResult,
    CoupledWorkload,
    PlacementStyle,
    StepTimes,
)
from repro.coupled.simulate import simulate_coupled
from repro.coupled.scenarios import (
    GTS_ANALYTICS_CACHE,
    GTS_CACHE,
    S3D_CACHE,
    S3D_VIZ_CACHE,
    evaluate_gts_placements,
    evaluate_pixie3d_placements,
    evaluate_s3d_placements,
    gts_workload,
    pixie3d_workload,
    s3d_workload,
)
from repro.coupled.fallback import FallbackDecision, simulate_with_fallback

__all__ = [
    "CoupledOptions",
    "CoupledResult",
    "CoupledWorkload",
    "GTS_ANALYTICS_CACHE",
    "GTS_CACHE",
    "PlacementStyle",
    "S3D_CACHE",
    "S3D_VIZ_CACHE",
    "StepTimes",
    "FallbackDecision",
    "evaluate_gts_placements",
    "evaluate_pixie3d_placements",
    "evaluate_s3d_placements",
    "gts_workload",
    "pixie3d_workload",
    "simulate_with_fallback",
    "s3d_workload",
    "simulate_coupled",
]
