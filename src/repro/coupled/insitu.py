"""Combined functional + timed in-situ runs.

:mod:`repro.coupled.simulate` prices abstract workloads;
:mod:`repro.core.stream` moves real data with no notion of time.  This
module welds them: writer and reader ranks run as discrete-event
processes, every step's data is *really* generated, conditioned by DC
plug-ins, buffered and read back through the FLEXPATH stream — while the
DES clock charges compute time and movement costs derived from the
*actual* byte counts observed (so a writer-side sampling codelet
visibly shrinks the simulated movement bill, not just the buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro import simcore
from repro.adios.api import RankContext, StepLost, StepStatus
from repro.core.api import FlexIO
from repro.core.resilience import MovementFailed, TransactionAborted
from repro.core.runtime import FlexIORuntime
from repro.core.stream import stream_registry
from repro.machine.topology import Machine
from repro.util import ceil_div

#: generator(rank, step) -> {var_name: ndarray [, (data, box, gshape)]}
Generator = Callable[[int, int], dict]
#: analytics(record, step) -> anything (collected into the result)
Analytics = Callable[[dict, int], Any]


@dataclass
class InSituResult:
    """Outcome of one combined run."""

    simulated_time: float
    #: One entry per (step, reader): whatever the analytics returned.
    analytics_outputs: list = field(default_factory=list)
    #: Modeled movement charges, split by locality of each pair.
    intra_node_bytes: int = 0
    inter_node_bytes: int = 0
    movement_time: float = 0.0
    compute_time: float = 0.0
    analytics_time: float = 0.0
    steps: int = 0
    #: Steps a reader skipped as typed gaps (lost/aborted in movement).
    steps_lost: int = 0
    #: Failed synchronous publishes surfaced to the writer.
    writer_failures: int = 0


class InSituRun:
    """One coupled run: real data plane, simulated time plane."""

    def __init__(
        self,
        machine: Machine,
        config_xml: str,
        group: str,
        stream_name: str,
        generator: Generator,
        analytics: Analytics,
        writer_cores: Sequence[int],
        reader_cores: Sequence[int],
        compute_time_per_step: float,
        analytics_time_per_byte: float = 0.0,
        num_steps: int = 3,
    ) -> None:
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        if not writer_cores or not reader_cores:
            raise ValueError("need writer and reader cores")
        self.machine = machine
        self.flexio = FlexIO.from_xml(config_xml, machine=machine)
        self.runtime = FlexIORuntime(machine)
        self.group = group
        self.stream_name = stream_name
        self.generator = generator
        self.analytics = analytics
        self.writer_cores = list(writer_cores)
        self.reader_cores = list(reader_cores)
        self.compute_time = float(compute_time_per_step)
        self.ana_time_per_byte = float(analytics_time_per_byte)
        self.num_steps = num_steps
        self.result = InSituResult(simulated_time=0.0)

    # ------------------------------------------------------------------
    def _reader_core_for(self, writer_rank: int) -> int:
        """Which reader consumes a writer's process group (block map)."""
        per = ceil_div(len(self.writer_cores), len(self.reader_cores))
        return self.reader_cores[min(writer_rank // per, len(self.reader_cores) - 1)]

    def _charge_movement(self, env, writer_rank: int, nbytes: int):
        """Pay (simulated) time for moving one rank's conditioned bytes."""
        src = self.writer_cores[writer_rank]
        dst = self._reader_core_for(writer_rank)
        t = self.runtime.transfer_time(nbytes, src, dst)
        if self.machine.same_node(src, dst):
            self.result.intra_node_bytes += nbytes
        else:
            self.result.inter_node_bytes += nbytes
        self.result.movement_time += t
        return env.timeout(t)

    # ------------------------------------------------------------------
    def run(self) -> InSituResult:
        env = simcore.Environment()
        nwriters = len(self.writer_cores)
        nreaders = len(self.reader_cores)
        handles = [
            self.flexio.open_write(self.group, self.stream_name, RankContext(r, nwriters))
            for r in range(nwriters)
        ]
        #: step index -> announcement store for readers.
        announce = [simcore.Store(env) for _ in range(nreaders)]

        def writer(env, rank: int):
            for step in range(self.num_steps):
                yield env.timeout(self.compute_time)
                self.result.compute_time += self.compute_time
                record = self.generator(rank, step)
                for name, value in record.items():
                    if isinstance(value, tuple):
                        data, box, gshape = value
                        handles[rank].write(name, data, box=box, global_shape=gshape)
                    else:
                        handles[rank].write(name, value)
                try:
                    handles[rank].end_step()
                except (MovementFailed, TransactionAborted):
                    # Synchronous publish failed after retries: the data
                    # plane already recorded the step as a typed loss.
                    self.result.writer_failures += 1
                # Once the whole step is published (last rank's end_step),
                # charge movement per rank from the *conditioned* sizes.
                state = stream_registry._states[self.stream_name]
                if state.step_available(step):
                    try:
                        published = state.get_step(step)
                    except StepLost:
                        published = None  # lost step: nothing moved
                    if published is not None:
                        for r2, pg in published.groups.items():
                            yield self._charge_movement(env, r2, pg.nbytes)
                    # Announce even a lost step so readers advance past
                    # the gap instead of deadlocking on the store.
                    for box_store in announce:
                        yield box_store.put(step)
            handles[rank].close()

        def reader(env, idx: int):
            handle = self.flexio.open_read(
                self.group, self.stream_name, RankContext(idx, nreaders)
            )
            my_writers = [
                w for w in range(nwriters) if self._reader_core_for(w) == self.reader_cores[idx]
            ]
            for step in range(self.num_steps):
                yield announce[idx].get()
                # The announcement guarantees the step is published, so
                # begin_step never reports NotReady here — but it may be
                # a typed gap (OtherError) when movement lost the step.
                status = handle.begin_step()
                if status is StepStatus.EndOfStream:
                    break
                if status is not StepStatus.OK:
                    self.result.steps_lost += 1
                    continue
                for w in my_writers:
                    record = {
                        name: handle.read_block(name, w)
                        for name in handle.available_vars()
                    }
                    nbytes = sum(
                        v.nbytes for v in record.values() if isinstance(v, np.ndarray)
                    )
                    t = nbytes * self.ana_time_per_byte
                    self.result.analytics_time += t
                    yield env.timeout(t)
                    self.result.analytics_outputs.append(
                        self.analytics(record, step)
                    )
                handle.end_step()
            handle.close()

        procs = [env.process(writer(env, r), name=f"writer-{r}") for r in range(nwriters)]
        procs += [env.process(reader(env, i), name=f"reader-{i}") for i in range(nreaders)]

        def supervisor(env):
            for p in procs:
                yield p

        env.run(env.process(supervisor(env)))
        self.result.simulated_time = env.now
        self.result.steps = self.num_steps
        return self.result
