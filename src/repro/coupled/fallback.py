"""Online/offline placement fallback.

Paper Section I.B.2: "Users can even seamlessly switch analytics to run
offline when there are insufficient online resources for their timely
execution."  This module implements that decision: try the online
placements (topology-aware first); when the machine cannot host the
analytics online — not enough nodes, or the online run would violate a
deadline — fall back to offline (file-based) analytics.  Because stream
and file modes share the API, the switch is a configuration change, not
a code change; here it is also an *automated* one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coupled.model import CoupledOptions, CoupledResult, CoupledWorkload, PlacementStyle
from repro.coupled.simulate import simulate_coupled
from repro.machine.topology import Machine
from repro.placement.algorithms import (
    NodeTopologyAwarePlacement,
    allocate_analytics_sync,
    process_group_matrix,
)
from repro.util import ceil_div


@dataclass
class FallbackDecision:
    """What was chosen and why."""

    chosen: PlacementStyle
    reason: str
    result: CoupledResult
    online_attempted: bool


def simulate_with_fallback(
    machine: Machine,
    workload: CoupledWorkload,
    options: Optional[CoupledOptions] = None,
    deadline: Optional[float] = None,
    num_ana: Optional[int] = None,
) -> FallbackDecision:
    """Place analytics online if the machine can host them; else offline.

    ``deadline`` (seconds of Total Execution Time) additionally rejects
    online placements that would blow the budget — the "timely
    execution" clause.
    """
    opts = options or CoupledOptions()
    sim = workload.sim
    if num_ana is None:
        num_ana = allocate_analytics_sync(sim, workload.ana)

    cpn = machine.node_type.cores_per_node
    slots_needed = sim.num_ranks * sim.threads_per_rank + num_ana
    nodes_needed = ceil_div(slots_needed, cpn)

    if nodes_needed > machine.num_nodes:
        result = simulate_coupled(
            machine, workload, style=PlacementStyle.OFFLINE,
            num_ana=num_ana, options=opts,
        )
        return FallbackDecision(
            chosen=PlacementStyle.OFFLINE,
            reason=(
                f"insufficient online resources: need {nodes_needed} nodes "
                f"for sim+analytics, machine has {machine.num_nodes}"
            ),
            result=result,
            online_attempted=False,
        )

    # Online is feasible: bind with the topology-aware algorithm.
    matrix = process_group_matrix(sim.num_ranks, num_ana, sim.bytes_per_rank)
    try:
        placement = NodeTopologyAwarePlacement().place(
            machine, sim, workload.ana, matrix, num_ana=num_ana
        )
        result = simulate_coupled(machine, workload, placement=placement, options=opts)
    except ValueError as exc:
        result = simulate_coupled(
            machine, workload, style=PlacementStyle.OFFLINE,
            num_ana=num_ana, options=opts,
        )
        return FallbackDecision(
            chosen=PlacementStyle.OFFLINE,
            reason=f"online binding failed: {exc}",
            result=result,
            online_attempted=True,
        )

    if deadline is not None and result.total_execution_time > deadline:
        offline = simulate_coupled(
            machine, workload, style=PlacementStyle.OFFLINE,
            num_ana=num_ana, options=opts,
        )
        if offline.total_execution_time < result.total_execution_time:
            return FallbackDecision(
                chosen=PlacementStyle.OFFLINE,
                reason=(
                    f"online run ({result.total_execution_time:.1f}s) misses the "
                    f"{deadline:.1f}s deadline; offline is faster"
                ),
                result=offline,
                online_attempted=True,
            )

    style = PlacementStyle(placement.style()) if placement.style() in (
        "helper-core", "staging"
    ) else PlacementStyle.CUSTOM
    return FallbackDecision(
        chosen=style,
        reason=f"online placement feasible ({placement.style()}, "
               f"{placement.num_nodes} nodes)",
        result=result,
        online_attempted=True,
    )
