"""Protocol-level discrete-event simulation of one stream's exchange.

Where :mod:`repro.coupled.simulate` prices whole steps analytically, this
module *executes the protocol*: every writer and reader rank is a
coroutine process on the DES kernel, coordinators really gather /
exchange / broadcast distribution messages (steps 1–3 of Section II.C),
and step 4's stride transfers flow point-to-point with per-message costs
from the machine's transports.  Caching options skip exactly the rounds
they skip in the accounting engine — the tests cross-validate message
counts between the two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import simcore
from repro.adios.selection import BoundingBox
from repro.core.redistribution import (
    CachingOption,
    RedistributionEngine,
    compute_plan,
)
from repro.core.runtime import FlexIORuntime
from repro.machine.topology import Machine

#: Bytes of one distribution record on the wire (matches the engine).
_DIST_BYTES = 64


@dataclass
class ProtocolStats:
    """What the protocol run observed."""

    steps: int = 0
    control_messages: int = 0
    data_messages: int = 0
    control_bytes: int = 0
    data_bytes: int = 0
    #: Wall (simulated) seconds per step spent in the handshake phase.
    handshake_times: list = field(default_factory=list)
    #: Wall seconds per step for the data phase (all strides delivered).
    data_times: list = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(self.handshake_times) + sum(self.data_times)


class ProtocolSimulation:
    """DES execution of the MxN exchange protocol for one stream."""

    def __init__(
        self,
        machine: Machine,
        writer_boxes: Sequence[BoundingBox],
        reader_boxes: Sequence[BoundingBox],
        writer_cores: Sequence[int],
        reader_cores: Sequence[int],
        itemsize: int = 8,
        caching: CachingOption = CachingOption.NO_CACHING,
        batching: bool = False,
        num_variables: int = 1,
    ) -> None:
        if len(writer_cores) != len(writer_boxes):
            raise ValueError("one core per writer required")
        if len(reader_cores) != len(reader_boxes):
            raise ValueError("one core per reader required")
        self.machine = machine
        self.runtime = FlexIORuntime(machine)
        self.plan = compute_plan(writer_boxes, reader_boxes)
        self.writer_cores = list(writer_cores)
        self.reader_cores = list(reader_cores)
        self.itemsize = itemsize
        self.caching = caching
        self.batching = batching
        self.num_variables = num_variables
        self._local_cached = False
        self._peer_cached = False
        self.stats = ProtocolStats()

    # -- message-cost helpers ----------------------------------------------
    def _ctrl_cost(self, src_core: int, dst_core: int) -> float:
        return self.runtime.transfer_time(_DIST_BYTES, src_core, dst_core)

    def _data_cost(self, src_core: int, dst_core: int, nbytes: int) -> float:
        return self.runtime.transfer_time(nbytes, src_core, dst_core)

    # -- protocol phases -----------------------------------------------------
    def _send(self, env, inbox, cost: float, nbytes: int, kind: str):
        """Sender-side process: pay the cost, then deliver."""
        yield env.timeout(cost)
        if kind == "ctrl":
            self.stats.control_messages += 1
            self.stats.control_bytes += nbytes
        else:
            self.stats.data_messages += 1
            self.stats.data_bytes += nbytes
        yield inbox.put((kind, nbytes))

    def _gather(self, env, cores: Sequence[int], coord_core: int):
        """Step 1: every non-coordinator sends its distribution to the
        coordinator, in parallel; the coordinator drains them."""
        inbox = simcore.Store(env)
        senders = [
            env.process(
                self._send(env, inbox, self._ctrl_cost(c, coord_core), _DIST_BYTES, "ctrl")
            )
            for c in cores[1:]
        ]
        for _ in senders:
            yield inbox.get()

    def _exchange(self, env):
        """Step 2: the two coordinators swap aggregate distributions."""
        wc, rc = self.writer_cores[0], self.reader_cores[0]
        m_bytes = len(self.writer_cores) * _DIST_BYTES
        n_bytes = len(self.reader_cores) * _DIST_BYTES
        inbox = simcore.Store(env)
        a = env.process(self._send(env, inbox, self._ctrl_cost(wc, rc), m_bytes, "ctrl"))
        b = env.process(self._send(env, inbox, self._ctrl_cost(rc, wc), n_bytes, "ctrl"))
        yield a & b
        yield inbox.get()
        yield inbox.get()

    def _broadcast(self, env, cores: Sequence[int], coord_core: int, payload: int):
        """Step 3: the coordinator pushes the peer distribution to its
        ranks — sequential sends at the coordinator (the real bottleneck)."""
        inbox = simcore.Store(env)
        for c in cores[1:]:
            yield env.process(
                self._send(env, inbox, self._ctrl_cost(coord_core, c), payload, "ctrl")
            )
        for _ in cores[1:]:
            yield inbox.get()

    def _handshake(self, env):
        do_step1 = not (
            self.caching in (CachingOption.CACHING_LOCAL, CachingOption.CACHING_ALL)
            and self._local_cached
        )
        do_step23 = not (self.caching is CachingOption.CACHING_ALL and self._peer_cached)
        if do_step1:
            w = env.process(self._gather(env, self.writer_cores, self.writer_cores[0]))
            r = env.process(self._gather(env, self.reader_cores, self.reader_cores[0]))
            yield w & r
            self._local_cached = True
        if do_step23:
            yield env.process(self._exchange(env))
            w = env.process(
                self._broadcast(
                    env, self.writer_cores, self.writer_cores[0],
                    len(self.reader_cores) * _DIST_BYTES,
                )
            )
            r = env.process(
                self._broadcast(
                    env, self.reader_cores, self.reader_cores[0],
                    len(self.writer_cores) * _DIST_BYTES,
                )
            )
            yield w & r
            self._peer_cached = True

    def _writer_data(self, env, writer: int, inboxes):
        """Step 4.s: one writer sends its packed strides, sequentially."""
        src = self.writer_cores[writer]
        for pair in self.plan.sends_of(writer):
            nbytes = pair.nbytes(self.itemsize)
            if not self.batching:
                nbytes = nbytes  # per-variable messages handled by caller
            yield env.process(
                self._send(
                    env,
                    inboxes[pair.reader],
                    self._data_cost(src, self.reader_cores[pair.reader], nbytes),
                    nbytes,
                    "data",
                )
            )

    def _reader_data(self, env, reader: int, inbox):
        """Step 4.a: one reader drains its expected strides."""
        expected = len(self.plan.recvs_of(reader))
        for _ in range(expected):
            yield inbox.get()

    def _data_phase(self, env):
        inboxes = [simcore.Store(env) for _ in self.reader_cores]
        writers = [
            env.process(self._writer_data(env, w, inboxes))
            for w in range(len(self.writer_cores))
        ]
        readers = [
            env.process(self._reader_data(env, r, inboxes[r]))
            for r in range(len(self.reader_cores))
        ]
        for p in writers + readers:
            yield p

    # -- driving --------------------------------------------------------------
    def run(self, num_steps: int = 1) -> ProtocolStats:
        """Execute ``num_steps`` I/O timesteps of the protocol."""
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        env = simcore.Environment()

        def one_step(env):
            rounds = 1 if self.batching else self.num_variables
            t0 = env.now
            for _ in range(rounds):
                yield env.process(self._handshake(env))
            t1 = env.now
            for _ in range(rounds):
                yield env.process(self._data_phase(env))
            self.stats.handshake_times.append(t1 - t0)
            self.stats.data_times.append(env.now - t1)
            self.stats.steps += 1

        def driver(env):
            for _ in range(num_steps):
                yield env.process(one_step(env))

        env.run(env.process(driver(env)))
        return self.stats


def matching_engine(
    sim: ProtocolSimulation,
) -> RedistributionEngine:
    """The accounting engine configured identically — for cross-validation."""
    return RedistributionEngine(
        sim.plan.writer_boxes,
        sim.plan.reader_boxes,
        caching=sim.caching,
        batching=sim.batching,
    )
