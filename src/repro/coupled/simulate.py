"""The coupled-run simulator: placements in, paper metrics out."""

from __future__ import annotations

from typing import Optional

from repro import simcore
from repro.coupled.model import (
    CoupledOptions,
    CoupledResult,
    CoupledWorkload,
    PlacementStyle,
    StepTimes,
)
from repro.core.runtime import FlexIORuntime
from repro.machine.topology import Machine
from repro.placement.algorithms import Placement, allocate_analytics_sync
from repro.placement.metrics import RunMetrics
from repro.transport.rdma import TransferRequest, TransferScheduler
from repro.transport.shm import ShmCostModel
from repro.util import ceil_div


def simulate_coupled(
    machine: Machine,
    workload: CoupledWorkload,
    style: Optional[PlacementStyle] = None,
    placement: Optional[Placement] = None,
    num_ana: Optional[int] = None,
    options: Optional[CoupledOptions] = None,
) -> CoupledResult:
    """Simulate one coupled run and report the paper's metrics.

    Provide either a ``style`` (idealized placement of that kind) or a
    ``placement`` computed by one of the Section III algorithms (style is
    then inferred from where its analytics actually sit, and the
    placement's NUMA splits and colocation feed the slowdown model).
    """
    opts = options or CoupledOptions()
    if placement is not None:
        num_ana = placement.num_analytics
        if style is None:
            style = {
                "helper-core": PlacementStyle.HELPER_CORE,
                "staging": PlacementStyle.STAGING,
                "hybrid": PlacementStyle.CUSTOM,
            }[placement.style()]
    if style is None:
        raise ValueError("need a style or a placement")
    if style in (PlacementStyle.SOLO, PlacementStyle.INLINE):
        num_ana = 0
    elif num_ana is None:
        num_ana = allocate_analytics_sync(workload.sim, workload.ana)

    step, cache_misses = _derive_step_times(
        machine, workload, style, placement, num_ana, opts
    )
    nodes = _node_count(machine, workload, style, placement, num_ana)

    if style is PlacementStyle.OFFLINE:
        tet, busy = _offline_tet(workload, step)
    else:
        tet, busy = _pipeline_tet(workload, step, style, opts)

    phases = _phase_totals(workload, step, style, tet, busy)
    inter, intra, file_bytes = _movement_volumes(
        machine, workload, style, placement, num_ana
    )

    idle_frac = 0.0
    if num_ana and tet > 0:
        idle_frac = max(0.0, 1.0 - busy / tet)

    metrics = RunMetrics(
        placement_name=(placement.name if placement is not None else style.value),
        total_execution_time=tet,
        num_nodes=nodes,
        cores_per_node=machine.node_type.cores_per_node,
        intra_node_bytes=intra,
        inter_node_bytes=inter,
        file_bytes=file_bytes,
        phase_times=phases,
    )
    return CoupledResult(
        metrics=metrics,
        step=step,
        phases=phases,
        cache_misses=cache_misses,
        analytics_idle_fraction=idle_frac,
        num_analytics=num_ana or 0,
    )


# ---------------------------------------------------------------------------
# Step-time derivation
# ---------------------------------------------------------------------------

def _derive_step_times(
    machine: Machine,
    workload: CoupledWorkload,
    style: PlacementStyle,
    placement: Optional[Placement],
    num_ana: int,
    opts: CoupledOptions,
) -> tuple[StepTimes, tuple[float, float]]:
    sim = workload.sim
    ana = workload.ana
    nt = machine.node_type
    shm = ShmCostModel(nt)
    ic = machine.interconnect
    fs = machine.filesystem

    slowdowns: dict[str, float] = {}
    solo_miss = workload.sim_cache.base_miss_per_kinst
    shared_miss = solo_miss

    colocated = style is PlacementStyle.HELPER_CORE or (
        placement is not None and placement.analytics_colocated_fraction() > 0
    )
    remote_ana = style in (PlacementStyle.STAGING, PlacementStyle.CUSTOM) or (
        placement is not None and placement.analytics_colocated_fraction() < 1
    )

    # -- cache contention (Figure 8) -------------------------------------
    if colocated and machine.cache_model is not None and num_ana > 0:
        frac = (
            placement.analytics_colocated_fraction() if placement is not None else 1.0
        )
        pairs = machine.cache_model.corun(
            [workload.sim_cache, workload.ana_cache], nt.l3_bytes_per_domain
        )
        shared_miss, sim_slow = pairs[0]
        slowdowns["cache"] = sim_slow * frac

    # -- NUMA-split threads (the holistic-vs-topo gap) --------------------
    if placement is not None and sim.num_ranks > 0:
        split_frac = placement.thread_numa_splits() / sim.num_ranks
        if split_frac > 0:
            slowdowns["numa_split"] = opts.numa_split_penalty * split_frac

    # -- MPI layout quality (the hybrid-vs-staging gap, Figure 9) ---------
    if placement is not None and ic is not None:
        sim_nodes = max(
            1, ceil_div(sim.num_ranks * sim.threads_per_rank, nt.cores_per_node)
        )
        extra_cross = (
            placement.intraprogram_internode_bytes()
            - workload.baseline_intraprog_cross_bytes
        )
        if extra_cross > 0:
            extra_time = extra_cross / (sim_nodes * ic.injection_bw)
            slowdowns["mpi_layout"] = extra_time / sim.io_interval
        # Within-node NUMA alignment (holistic vs topology-aware margin):
        # remote-domain hops run at the NUMA remote factor of memory bw.
        extra_numa = (
            placement.intraprogram_crossnuma_bytes()
            - workload.baseline_intraprog_crossnuma_bytes
        )
        if extra_numa > 0:
            local_bw = nt.mem_bw_local
            remote_bw = local_bw * nt.numa_remote_factor
            extra_time = extra_numa / sim_nodes * (1.0 / remote_bw - 1.0 / local_bw)
            slowdowns["numa_mpi"] = extra_time / sim.io_interval

    # -- movement latency to the analytics -------------------------------
    ranks_per_ana = ceil_div(sim.num_ranks, num_ana) if num_ana else 0
    movement = 0.0
    io_visible = 0.0
    if style in (PlacementStyle.SOLO,):
        pass
    elif style is PlacementStyle.INLINE:
        pass  # analytics execute inside the sim step (see pipeline)
    elif colocated and not remote_ana:
        # Helper core: shared-memory path.
        per_rank = shm.transfer_time(
            sim.bytes_per_rank, cross_numa=False, xpmem=opts.use_xpmem
        )
        movement = ranks_per_ana * per_rank
        if opts.asynchronous:
            io_visible = sim.bytes_per_rank / shm.copy_bw(False)
        else:
            io_visible = per_rank
    elif style is PlacementStyle.OFFLINE:
        if fs is None:
            raise RuntimeError("offline placement needs a filesystem model")
        io_visible = fs.write_time(sim.bytes_per_step, sim.num_ranks)
        movement = fs.read_time(sim.bytes_per_step, max(1, num_ana))
    else:
        # Staging (or hybrid): RDMA to remote analytics.
        if ic is None:
            raise RuntimeError("staging placement needs an interconnect model")
        receivers_per_node = min(num_ana, nt.cores_per_node) if num_ana else 1
        sched = TransferScheduler(
            ic,
            max_concurrent=opts.scheduler_max_concurrent or max(1, ranks_per_ana),
            endpoint_bandwidth=ic.injection_bw / max(1, receivers_per_node),
        )
        reqs = [TransferRequest(i, sim.bytes_per_rank) for i in range(ranks_per_ana)]
        movement = sched.makespan(reqs)
        if opts.asynchronous:
            io_visible = sim.bytes_per_rank / nt.mem_bw_local
            duty = min(1.0, movement / sim.io_interval)
            coeff = (
                opts.interference_scheduled
                if opts.scheduler_max_concurrent is not None
                else opts.interference_flood
            )
            slowdowns["network"] = min(opts.interference_cap, coeff * duty)
        else:
            io_visible = movement

    sim_compute = sim.io_interval * (1.0 + sum(slowdowns.values()))

    # -- analytics step time ----------------------------------------------
    ana_compute = 0.0
    if style is PlacementStyle.INLINE:
        inline_time = ana.time(sim.num_ranks)
        if workload.sim_cache is not None:
            pass  # inline analytics reuse the sim's caches; no co-run pair
        ana_compute = inline_time + workload.ana_step_overhead
        if fs is not None and workload.ana_output_bytes:
            ana_compute += fs.write_time(workload.ana_output_bytes, sim.num_ranks)
    elif num_ana > 0:
        ana_compute = ana.time(num_ana) + workload.ana_step_overhead
        if colocated and "cache" in slowdowns and machine.cache_model is not None:
            pairs = machine.cache_model.corun(
                [workload.sim_cache, workload.ana_cache], nt.l3_bytes_per_domain
            )
            ana_compute *= 1.0 + pairs[1][1]
        if fs is not None and workload.ana_output_bytes:
            ana_compute += fs.write_time(workload.ana_output_bytes, max(1, num_ana))

    return (
        StepTimes(
            sim_compute=sim_compute,
            sim_io_visible=io_visible,
            movement_latency=movement,
            ana_compute=ana_compute,
            slowdowns=slowdowns,
        ),
        (solo_miss, shared_miss),
    )


def _node_count(
    machine: Machine,
    workload: CoupledWorkload,
    style: PlacementStyle,
    placement: Optional[Placement],
    num_ana: int,
) -> int:
    if placement is not None:
        return placement.num_nodes
    cpn = machine.node_type.cores_per_node
    sim = workload.sim
    threads = (
        workload.full_node_threads
        if workload.full_node_threads and style is not PlacementStyle.HELPER_CORE
        else sim.threads_per_rank
    )
    sim_nodes = ceil_div(sim.num_ranks * threads, cpn)
    if style in (PlacementStyle.SOLO, PlacementStyle.INLINE, PlacementStyle.OFFLINE):
        return sim_nodes
    if style is PlacementStyle.HELPER_CORE:
        return ceil_div(sim.num_ranks * sim.threads_per_rank + num_ana, cpn)
    return sim_nodes + max(1, ceil_div(num_ana, cpn))


# ---------------------------------------------------------------------------
# Pipelines
# ---------------------------------------------------------------------------

def _pipeline_tet(
    workload: CoupledWorkload,
    step: StepTimes,
    style: PlacementStyle,
    opts: CoupledOptions,
) -> tuple[float, float]:
    """Run the two-stage pipeline on the DES kernel.

    Returns (total execution time, analytics busy seconds).
    """
    env = simcore.Environment()
    slots = simcore.Resource(env, capacity=opts.max_buffered_steps)
    ready = simcore.Store(env)
    busy = [0.0]
    has_consumer = style not in (PlacementStyle.SOLO, PlacementStyle.INLINE)
    inline = style is PlacementStyle.INLINE

    def deliver(env, token, payload):
        yield env.timeout(step.movement_latency)
        yield ready.put((token, payload))

    def sim_proc(env):
        for s in range(workload.num_steps):
            yield env.timeout(step.sim_compute)
            if inline:
                yield env.timeout(step.ana_compute)
                continue
            if not has_consumer:
                continue
            token = slots.request()
            yield token  # backpressure: bounded staging memory
            yield env.timeout(step.sim_io_visible)
            if opts.asynchronous:
                env.process(deliver(env, token, s))
            else:
                yield env.process(deliver(env, token, s))

    def ana_proc(env):
        for _ in range(workload.num_steps):
            token, _payload = yield ready.get()
            start = env.now
            yield env.timeout(step.ana_compute)
            busy[0] += env.now - start
            slots.release(token)

    producer = env.process(sim_proc(env))
    if has_consumer:
        consumer = env.process(ana_proc(env))
        env.run(consumer & producer)
    else:
        env.run(producer)
    return env.now, busy[0]


def _offline_tet(workload: CoupledWorkload, step: StepTimes) -> tuple[float, float]:
    """Offline: the simulation completes, then analytics read back."""
    sim_total = workload.num_steps * (step.sim_compute + step.sim_io_visible)
    ana_total = workload.num_steps * (step.movement_latency + step.ana_compute)
    return sim_total + ana_total, workload.num_steps * step.ana_compute


def _phase_totals(
    workload: CoupledWorkload,
    step: StepTimes,
    style: PlacementStyle,
    tet: float,
    busy: float,
) -> dict:
    n = workload.num_steps
    cycles = max(1, workload.cycles_per_interval)
    per_cycle = n * step.sim_compute / cycles
    phases = {f"cycle{i + 1}": per_cycle for i in range(cycles)}
    phases["io"] = n * step.sim_io_visible
    phases["analysis"] = n * step.ana_compute
    if style not in (PlacementStyle.SOLO, PlacementStyle.INLINE):
        phases["ana_idle"] = max(0.0, tet - busy)
    return phases


# ---------------------------------------------------------------------------
# Movement volumes
# ---------------------------------------------------------------------------

def _movement_volumes(
    machine: Machine,
    workload: CoupledWorkload,
    style: PlacementStyle,
    placement: Optional[Placement],
    num_ana: int,
) -> tuple[float, float, float]:
    """(inter_node, intra_node, file) bytes over the whole run."""
    n = workload.num_steps
    step_bytes = workload.sim.bytes_per_step
    file_bytes = float(n * workload.ana_output_bytes)
    if style is PlacementStyle.SOLO:
        return (0.0, 0.0, 0.0)
    if style is PlacementStyle.INLINE:
        return (0.0, 0.0, file_bytes)
    if style is PlacementStyle.OFFLINE:
        # Written once, read back once.
        return (0.0, 0.0, 2.0 * n * step_bytes + file_bytes)

    if placement is not None:
        inter = n * (
            placement.interprogram_internode_bytes()
            + placement.intraprogram_internode_bytes()
        )
        intra = n * placement.graph.total_edge_weight - inter
        return (float(inter), float(max(0.0, intra)), file_bytes)

    ana_ring = workload.ana.internal_ring_bytes * max(0, num_ana)
    if style is PlacementStyle.HELPER_CORE:
        # Particle data stays on-node; only the analytics' internal
        # reduction may cross nodes (they are spread over all sim nodes).
        return (float(n * ana_ring), float(n * step_bytes), file_bytes)
    # Staging: the full output crosses the interconnect; the analytics'
    # internal traffic stays within the (few) staging nodes.
    cpn = machine.node_type.cores_per_node
    ana_nodes = max(1, ceil_div(num_ana, cpn)) if num_ana else 1
    crossing_links = max(0, ana_nodes - 1)
    ana_cross = workload.ana.internal_ring_bytes * crossing_links
    return (float(n * (step_bytes + ana_cross)), float(n * ana_ring), file_bytes)
