"""FIFO message channel between simulated processes."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.environment import Environment


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    __slots__ = ()


class Store:
    """An ordered buffer with blocking put (when full) and get (when empty).

    This is the simulated analogue of the shared-memory data queues and
    RDMA message queues: a bounded FIFO decoupling producer and consumer.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Enqueue ``item``; the returned event fires when accepted."""
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Dequeue; the returned event fires with the item."""
        ev = StoreGet(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve pending gets while items exist.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True
