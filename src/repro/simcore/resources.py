"""Counted resources with FIFO (and priority) queueing discipline."""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.environment import Environment


class Preempted(Exception):
    """Cause delivered to a process preempted off a :class:`PriorityResource`."""

    def __init__(self, by: Any, usage_since: float) -> None:
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending claim on a resource; fires when capacity is granted.

    Usable as a context manager so the canonical pattern reads::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A resource with integer capacity and FIFO wait queue.

    Models cores, NIC DMA engines, file-system object servers, memory
    controllers — anything with bounded concurrency.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.users: list[Request] = []
        self.queue: list[Request] = []

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def available(self) -> int:
        return self.capacity - len(self.users)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(self)
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return capacity; grants the oldest waiter, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an unqueued/ungranted request is a no-op: allows
            # `with` blocks to exit after a cancel.
            self._cancel(request)
            return
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed(self)


class _PrioRequest(Request):
    __slots__ = ("priority", "preempt", "since", "owner", "_order")

    def __init__(self, resource: "PriorityResource", priority: int, preempt: bool) -> None:
        super().__init__(resource)
        self.priority = priority
        self.preempt = preempt
        self.since: Optional[float] = None
        #: The process to interrupt if this grant is preempted (set by caller).
        self.owner = None
        self._order = next(resource._order)

    @property
    def key(self) -> tuple:
        return (self.priority, self._order)


class PriorityResource(Resource):
    """Resource whose queue is ordered by priority (lower = sooner).

    With ``preempt=True`` a high-priority request evicts the lowest-priority
    current user, delivering :class:`Preempted` to it via interrupt — used to
    model the simulation reclaiming helper cores from analytics.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._order = count()
        self._heap: list[tuple[tuple, _PrioRequest]] = []

    def request(self, priority: int = 0, preempt: bool = False) -> _PrioRequest:  # type: ignore[override]
        req = _PrioRequest(self, priority, preempt)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.since = self.env.now
            req.succeed(self)
            return req
        if preempt:
            victim = max(
                (u for u in self.users if isinstance(u, _PrioRequest)),
                key=lambda u: u.key,
                default=None,
            )
            if victim is not None and victim.key > req.key:
                self.users.remove(victim)
                owner = getattr(victim, "owner", None)
                if owner is not None and owner.is_alive:
                    owner.interrupt(Preempted(by=req, usage_since=victim.since or 0.0))
                self.users.append(req)
                req.since = self.env.now
                req.succeed(self)
                return req
        heapq.heappush(self._heap, (req.key, req))
        self.queue.append(req)  # keep base-class bookkeeping coherent
        return req

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, nxt = heapq.heappop(self._heap)
            if nxt not in self.queue:
                continue  # cancelled
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.since = self.env.now
            nxt.succeed(self)
