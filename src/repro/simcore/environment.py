"""The simulation environment: virtual clock + event loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from repro.simcore.events import Event, Timeout
from repro.simcore.process import Process


class SimulationError(RuntimeError):
    """An unhandled failure propagated out of the event loop."""


class _StopRun(Exception):
    """Internal sentinel used by ``run(until=event)``."""

    def __init__(self, value: Any) -> None:
        self.value = value


class Environment:
    """Executes events on a virtual timeline.

    Time is a float in *seconds* throughout this project.  Determinism:
    events scheduled for the same instant are processed in scheduling order
    (a monotonically increasing tiebreaker), so repeated runs are bit-stable.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = count()
        self.active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Wrap a generator coroutine into a scheduled process."""
        return Process(self, generator, name=name)

    # -- main loop ------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for cb in callbacks:
            cb(event)
        if not event.ok and not event.defused:
            exc = event.value
            raise SimulationError(
                f"unhandled failure at t={self._now:.9f}: {exc!r}"
            ) from exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, a deadline, or an event fires.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock would pass that time;
        * an :class:`Event` — run until it is processed and return its value.
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _stop(ev: Event) -> None:
                if not ev.ok:
                    ev.defuse()
                    raise ev.value
                raise _StopRun(ev.value)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"run(until={deadline}) is in the past (now={self._now})")

        try:
            while self._queue:
                if self._queue[0][0] > deadline:
                    self._now = deadline
                    return None
                self.step()
        except _StopRun as stop:
            return stop.value

        if stop_event is not None:
            raise SimulationError("run() ended before the `until` event fired")
        if deadline != float("inf"):
            self._now = deadline
        return None
