"""Coroutine processes driven by the event loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.environment import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A generator coroutine executing on the virtual timeline.

    The generator ``yield``\\ s :class:`Event` objects; each yield suspends
    the process until that event is processed.  The process is itself an
    event that fires with the generator's return value, so processes can
    wait on each other.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None while running).
        self._target: Optional[Event] = None
        # Kick off at the current instant.
        init = Event(env)
        init._ok = True
        init._triggered = True
        init.callbacks.append(self._resume)
        env._schedule(init)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self._triggered

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on so the original
        # event no longer resumes it, then resume with the interrupt.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._triggered = True
        wakeup.defuse()
        wakeup.callbacks.append(self._resume)
        self.env._schedule(wakeup)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env.active_process = self
        self._target = None
        try:
            if event.ok:
                result = self._generator.send(event.value)
            else:
                event.defuse()
                result = self._generator.throw(event.value)
        except StopIteration as stop:
            env.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env.active_process = None
            self.fail(exc)
            return
        env.active_process = None

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self.name!r} yielded {result!r}; processes must yield Events"
            )
        if result.processed:
            # Already done — resume immediately (at the current instant).
            rearm = Event(env)
            rearm._ok = result.ok
            rearm._value = result.value
            rearm._triggered = True
            if not result.ok:
                rearm.defuse()
            rearm.callbacks.append(self._resume)
            env._schedule(rearm)
        else:
            self._target = result
            result.callbacks.append(self._resume)
