"""Discrete-event simulation kernel underpinning the FlexIO reproduction.

The paper's evaluation runs coupled simulation + analytics jobs on real HPC
machines (Titan, Smoky).  We reproduce those runs on a discrete-event
simulator: every MPI rank, analytics process, transport engine, and file
server is a coroutine process scheduled on a shared virtual clock.

The kernel is deliberately SimPy-like (environments, events, processes,
resources, stores) but self-contained, deterministic, and tuned for the
fan-outs this reproduction needs (thousands of rank processes per run).

Public API
----------
:class:`Environment`
    The simulation context: virtual clock + event queue.
:class:`Event`, :class:`Timeout`, :class:`Process`, :class:`Condition`
    Awaitable primitives that coroutine processes ``yield``.
:class:`Resource`
    FIFO counted resource (e.g. a core, a NIC engine, an OST).
:class:`Store`
    FIFO message channel with optional capacity (queues between processes).
:class:`Interrupt`
    Exception injected into a process by :meth:`Process.interrupt`.
"""

from repro.simcore.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    EventAlreadyTriggered,
    Timeout,
)
from repro.simcore.environment import Environment, SimulationError
from repro.simcore.process import Interrupt, Process
from repro.simcore.resources import Preempted, PriorityResource, Resource
from repro.simcore.store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Preempted",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
