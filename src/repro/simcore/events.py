"""Event primitives for the discrete-event kernel.

Events carry a value (or an exception), a triggered/processed state, and a
list of callbacks invoked when the environment processes them.  Processes
``yield`` events to suspend until the event fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.environment import Environment


class EventAlreadyTriggered(RuntimeError):
    """Raised when :meth:`Event.succeed` / :meth:`Event.fail` is called twice."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event moves through three states: *pending* (created, not scheduled),
    *triggered* (scheduled with a value at some virtual time), and
    *processed* (its callbacks have run).  Processes waiting on the event are
    resumed when it is processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: Failed events abort the run unless some process (or ``defused``)
        #: consumes the exception — mirrors SimPy's defused semantics.
        self._defused = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self)
        return self

    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=self.delay)


class Condition(Event):
    """Waits on several events; fires according to ``evaluate``."""

    __slots__ = ("events", "_evaluate", "_remaining")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self.events: list[Event] = list(events)
        self._evaluate = evaluate
        self._remaining = len(self.events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events of a condition must share one environment")

        if not self.events:
            self.succeed(self._collect())
            return

        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        """Gather values of all processed sub-events, in declaration order."""
        return {ev: ev.value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        completed = len(self.events) - self._remaining
        if self._evaluate(self.events, completed):
            self.succeed(self._collect())


def _all_events(events: list[Event], count: int) -> bool:
    return count == len(events)


def _any_event(events: list[Event], count: int) -> bool:
    return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when *all* sub-events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, _all_events, events)


class AnyOf(Condition):
    """Condition that fires when *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, _any_event, events)


def trace_event(event: Event, monitor, category: str, name: str, **attrs) -> Event:
    """Bracket an event's lifetime with a tracing span.

    Opens a span on ``monitor`` (a :class:`repro.core.monitoring.PerfMonitor`,
    duck-typed) now and finishes it when the event is processed, so the
    waiting period shows up on the trace timeline.  Already-processed
    events get a zero-length span.  Returns ``event`` for chaining.
    """
    span = monitor.begin_span(category, name, **attrs)
    if event.processed:
        span.finish()
        return event
    event.callbacks.append(lambda _ev: span.finish())
    return event
