"""CLI for FlexLint: ``python -m repro.tools.flexlint [paths...]``.

Exits non-zero when any non-waived finding remains.  Typical use::

    PYTHONPATH=src python -m repro.tools.flexlint src/

Options:

* ``--json`` — machine-readable output (one object per finding).
* ``--rule FXLnnn`` — restrict to one rule (repeatable).
* ``--show-waived`` — also print findings silenced by waivers.
* ``--list-rules`` — print the rule table and exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence, TextIO

from repro.analysis.flexlint import RULES, Finding, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.flexlint",
        description="FlexIO project-invariant linter (rules FXL001-FXL005).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/"],
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="FXLnnn", help="only report this rule "
                        "(repeatable)")
    parser.add_argument("--show-waived", action="store_true",
                        help="also print waived findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _finding_dict(f: Finding) -> dict:
    return {
        "rule": f.rule,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "waived": f.waived,
        "waiver_reason": f.waiver_reason,
    }


def main(argv: Optional[Sequence[str]] = None, out: TextIO = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.title}", file=out)
            print(f"        {rule.description}", file=out)
        return 0

    findings = lint_paths(args.paths)
    if args.rule:
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule in wanted]

    active = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]
    shown = findings if args.show_waived else active

    if args.as_json:
        print(json.dumps([_finding_dict(f) for f in shown], indent=2),
              file=out)
    else:
        for f in shown:
            print(f.format(), file=out)
        summary = f"flexlint: {len(active)} finding(s)"
        if waived:
            summary += f", {len(waived)} waived"
        print(summary, file=out)

    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
