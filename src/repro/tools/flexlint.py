"""CLI for FlexLint: ``python -m repro.tools.flexlint [paths...]``.

Exits non-zero when any active (non-waived, non-baselined) finding
remains.  Typical use::

    PYTHONPATH=src python -m repro.tools.flexlint src/

Options:

* ``--json`` — machine-readable output (one object per finding).
* ``--rule FXLnnn`` — restrict to one rule (repeatable).
* ``--show-waived`` — also print findings silenced by waivers or the
  baseline.
* ``--list-rules`` — print the rule table and exit.
* ``--sarif PATH`` — also write a SARIF 2.1.0 report.
* ``--baseline PATH`` — suppression file (default:
  ``.flexlint-baseline.json`` when it exists); ``--update-baseline``
  rewrites it from the currently active findings.
* ``--jobs N`` — parallel per-file analysis workers.
* ``--cache PATH`` / ``--no-cache`` — content-hash incremental cache
  (default: ``.flexlint-cache.json``); a warm run re-parses only
  changed files.
* ``--stats-json PATH`` — dump run stats (files, cache hits/misses)
  for CI cache-effectiveness assertions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence, TextIO

from repro.analysis.driver import run
from repro.analysis.flexlint import RULES, Finding

DEFAULT_BASELINE = ".flexlint-baseline.json"
DEFAULT_CACHE = ".flexlint-cache.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.flexlint",
        description="FlexIO project-invariant linter (rules FXL001-FXL013).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/"],
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="FXLnnn", help="only report this rule "
                        "(repeatable)")
    parser.add_argument("--show-waived", action="store_true",
                        help="also print waived/baselined findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="write a SARIF 2.1.0 report to PATH")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help=f"baseline/suppression file (default: "
                        f"{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the currently "
                        "active findings, then exit 0")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel analysis workers (default: "
                        "min(8, cpu count))")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help=f"incremental cache file (default: "
                        f"{DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="write run stats (cache hits/misses) to PATH")
    return parser


def _finding_dict(f: Finding) -> dict:
    return f.to_dict()


def main(argv: Optional[Sequence[str]] = None, out: TextIO = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.title}", file=out)
            print(f"        {rule.description}", file=out)
        return 0

    cache_path = None if args.no_cache else (args.cache or DEFAULT_CACHE)
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if args.update_baseline or os.path.exists(DEFAULT_BASELINE):
            baseline_path = DEFAULT_BASELINE
    if args.no_baseline:
        baseline_path = None

    result = run(
        args.paths,
        jobs=args.jobs,
        cache_path=cache_path,
        baseline_path=baseline_path,
        update_baseline=args.update_baseline,
    )
    findings = result.findings
    if args.rule:
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule in wanted]

    active = [f for f in findings if f.active]
    waived = [f for f in findings if f.waived]
    baselined = [f for f in findings if f.baselined]
    shown = findings if args.show_waived else active

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        write_sarif(findings, args.sarif)
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(result.stats.to_dict(), fh, indent=2)
            fh.write("\n")

    if args.as_json:
        print(json.dumps([_finding_dict(f) for f in shown], indent=2),
              file=out)
    else:
        for f in shown:
            print(f.format(), file=out)
        summary = f"flexlint: {len(active)} finding(s)"
        if waived:
            summary += f", {len(waived)} waived"
        if baselined:
            summary += f", {len(baselined)} baselined"
        stats = result.stats
        summary += (
            f" [{stats.files} files, {stats.cache_hits} cached, "
            f"{stats.cache_misses} analyzed]"
        )
        print(summary, file=out)

    if args.update_baseline:
        return 0
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
