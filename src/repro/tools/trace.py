"""Trace analyzer: per-stage breakdown, critical path, bottleneck hint.

Usage::

    python -m repro.tools.trace dump.jsonl
    python -m repro.tools.trace dump.jsonl --perfetto trace.json
    python -m repro.tools.trace dump.jsonl --trace-id t000002

Consumes a :meth:`repro.core.monitoring.PerfMonitor.dump` JSONL file.
Prints how many records/spans/traces the dump holds, where the exclusive
time goes per pipeline stage, the critical path of the slowest timestep
(or the one selected with ``--trace-id``), and a bottleneck hint.  With
``--perfetto`` it also writes a Chrome ``trace_event`` JSON openable in
https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.monitoring import PerfMonitor
from repro.obs.analysis import (
    build_traces,
    copy_summary,
    critical_path,
    fault_summary,
    find_bottleneck,
    longest_trace,
    span_records,
    stage_breakdown,
)
from repro.obs.export import write_perfetto
from repro.util import fmt_bytes


def analyze(
    records: list[dict], trace_id: Optional[str] = None, out=None
) -> int:
    """Print the full analysis of a loaded dump; returns an exit code."""
    out = out or sys.stdout
    spans = span_records(records)
    traces = build_traces(records)
    print(
        f"{len(records)} records, {len(spans)} spans, {len(traces)} traces",
        file=out,
    )
    if not spans:
        print("no span records — was tracing enabled? "
              "(StreamHints trace=true or monitor.enable_tracing())", file=out)
        return 1

    breakdown = stage_breakdown(records)
    total_excl = sum(s.exclusive_time for s in breakdown) or 1.0
    print("", file=out)
    print(f"{'stage':14s} {'spans':>6s} {'exclusive':>12s} {'share':>7s} "
          f"{'total':>12s} {'bytes':>10s}", file=out)
    for st in breakdown:
        print(
            f"{st.stage:14s} {st.spans:6d} {st.exclusive_time:12.6f} "
            f"{st.exclusive_time / total_excl:6.1%} {st.total_time:12.6f} "
            f"{fmt_bytes(st.total_bytes):>10s}",
            file=out,
        )

    chosen = trace_id or longest_trace(traces)
    if chosen not in traces:
        print(f"\nno trace {chosen!r} in dump "
              f"(have: {', '.join(sorted(traces))})", file=out)
        return 1
    print(f"\ncritical path of trace {chosen}"
          f"{' (slowest step)' if trace_id is None else ''}:", file=out)
    for root in traces[chosen]:
        for hop in critical_path(root):
            n = hop.node
            print(
                f"  {'  ' * hop.depth}{n.category}/{n.name}  "
                f"{n.duration:.6f}s  ({fmt_bytes(int(n.record.get('bytes', 0)))})",
                file=out,
            )

    faults = fault_summary(records)
    if faults.any():
        print("\nfaults and recovery:", file=out)
        for line in faults.lines():
            print(f"  {line}", file=out)

    copies = copy_summary(records)
    if copies.any():
        print("\ntransport copies (per delivery path):", file=out)
        for line in copies.lines():
            print(f"  {line}", file=out)

    hint = find_bottleneck(records)
    if hint is not None:
        print(f"\n{hint}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace",
        description="Analyze a PerfMonitor JSONL dump: stage breakdown, "
                    "critical path, bottleneck hint.",
    )
    parser.add_argument("dump", help="JSONL file written by PerfMonitor.dump")
    parser.add_argument("--perfetto", metavar="OUT.json", default=None,
                        help="also export a Perfetto/Chrome trace_event JSON")
    parser.add_argument("--trace-id", default=None,
                        help="show the critical path of this trace "
                             "(default: the slowest one)")
    args = parser.parse_args(argv)
    out = out or sys.stdout
    try:
        records = PerfMonitor.load(args.dump)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.dump}: {exc}", file=out)
        return 2
    rc = analyze(records, trace_id=args.trace_id, out=out)
    if args.perfetto:
        n = write_perfetto(records, args.perfetto)
        print(f"\nwrote {n} Perfetto events to {args.perfetto} "
              f"(open in https://ui.perfetto.dev)", file=out)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
