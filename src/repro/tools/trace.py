"""Trace analyzer: per-stage breakdown, critical path, bottleneck hint.

Usage::

    python -m repro.tools.trace dump.jsonl
    python -m repro.tools.trace dump.jsonl --perfetto trace.json
    python -m repro.tools.trace dump.jsonl --trace-id t000002
    python -m repro.tools.trace --flight flight-....json

Consumes a :meth:`repro.core.monitoring.PerfMonitor.dump` JSONL file.
Prints how many records/spans/traces the dump holds, where the exclusive
time goes per pipeline stage, the critical path of the slowest timestep
(or the one selected with ``--trace-id``), and a bottleneck hint.  With
``--perfetto`` it also writes a Chrome ``trace_event`` JSON openable in
https://ui.perfetto.dev.

With ``--flight`` the argument is a **flight-recorder dump** (the JSON
artifact :func:`repro.obs.recorder.dump_on_fault` writes when a step is
lost, a drainer wedges, or a stream fails): the event timeline of the
fault window is rendered chronologically, the embedded metrics snapshot
is summarized, and any embedded trace records go through the same
fault-summary/bottleneck machinery as a plain dump.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.monitoring import PerfMonitor
from repro.obs.analysis import (
    build_traces,
    copy_summary,
    critical_path,
    fault_summary,
    find_bottleneck,
    longest_trace,
    span_records,
    stage_breakdown,
)
from repro.obs.export import write_perfetto
from repro.util import fmt_bytes


def analyze(
    records: list[dict], trace_id: Optional[str] = None, out=None
) -> int:
    """Print the full analysis of a loaded dump; returns an exit code."""
    out = out or sys.stdout
    spans = span_records(records)
    traces = build_traces(records)
    print(
        f"{len(records)} records, {len(spans)} spans, {len(traces)} traces",
        file=out,
    )
    if not spans:
        print("no span records — was tracing enabled? "
              "(StreamHints trace=true or monitor.enable_tracing())", file=out)
        return 1

    breakdown = stage_breakdown(records)
    total_excl = sum(s.exclusive_time for s in breakdown) or 1.0
    print("", file=out)
    print(f"{'stage':14s} {'spans':>6s} {'exclusive':>12s} {'share':>7s} "
          f"{'total':>12s} {'bytes':>10s}", file=out)
    for st in breakdown:
        print(
            f"{st.stage:14s} {st.spans:6d} {st.exclusive_time:12.6f} "
            f"{st.exclusive_time / total_excl:6.1%} {st.total_time:12.6f} "
            f"{fmt_bytes(st.total_bytes):>10s}",
            file=out,
        )

    chosen = trace_id or longest_trace(traces)
    if chosen not in traces:
        print(f"\nno trace {chosen!r} in dump "
              f"(have: {', '.join(sorted(traces))})", file=out)
        return 1
    print(f"\ncritical path of trace {chosen}"
          f"{' (slowest step)' if trace_id is None else ''}:", file=out)
    for root in traces[chosen]:
        for hop in critical_path(root):
            n = hop.node
            print(
                f"  {'  ' * hop.depth}{n.category}/{n.name}  "
                f"{n.duration:.6f}s  ({fmt_bytes(int(n.record.get('bytes', 0)))})",
                file=out,
            )

    faults = fault_summary(records)
    if faults.any():
        print("\nfaults and recovery:", file=out)
        for line in faults.lines():
            print(f"  {line}", file=out)

    copies = copy_summary(records)
    if copies.any():
        print("\ntransport copies (per delivery path):", file=out)
        for line in copies.lines():
            print(f"  {line}", file=out)

    hint = find_bottleneck(records)
    if hint is not None:
        print(f"\n{hint}", file=out)
    return 0


def analyze_flight(doc: dict, out=None) -> int:
    """Render a flight-recorder dump: timeline, metrics, embedded trace."""
    out = out or sys.stdout
    events = doc.get("events", [])
    print(
        f"flight dump: {doc.get('reason') or '(no reason)'} — "
        f"{len(events)} event(s) in the last {doc.get('window_s', 0):g}s "
        f"({doc.get('dropped', 0)} older event(s) evicted from the ring)",
        file=out,
    )
    if events:
        t0 = events[0]["ts"]
        print("\ntimeline:", file=out)
        for ev in events:
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(ev.items())
                if k not in ("ts", "seq", "code", "stream")
            )
            stream = f" [{ev['stream']}]" if ev.get("stream") else ""
            print(
                f"  +{ev['ts'] - t0:9.4f}s  {ev['code']:<20s}{stream}"
                f"{'  ' + attrs if attrs else ''}",
                file=out,
            )
    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        print("\nmetrics at dump time:", file=out)
        for name, value in sorted(counters.items()):
            print(f"  {name:40s} {value:g}", file=out)
    records = doc.get("records")
    if records:
        print("\nembedded trace records:", file=out)
        analyze(records, out=out)
    return 0 if events else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace",
        description="Analyze a PerfMonitor JSONL dump: stage breakdown, "
                    "critical path, bottleneck hint.",
    )
    parser.add_argument("dump", help="JSONL file written by PerfMonitor.dump, "
                                     "or (with --flight) a flight-recorder "
                                     "dump artifact")
    parser.add_argument("--perfetto", metavar="OUT.json", default=None,
                        help="also export a Perfetto/Chrome trace_event JSON")
    parser.add_argument("--trace-id", default=None,
                        help="show the critical path of this trace "
                             "(default: the slowest one)")
    parser.add_argument("--flight", action="store_true",
                        help="the dump is a flight-recorder fault artifact; "
                             "render its event timeline")
    args = parser.parse_args(argv)
    out = out or sys.stdout
    if args.flight:
        from repro.obs.recorder import load_dump

        try:
            doc = load_dump(args.dump)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.dump}: {exc}", file=out)
            return 2
        return analyze_flight(doc, out=out)
    try:
        records = PerfMonitor.load(args.dump)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.dump}: {exc}", file=out)
        return 2
    rc = analyze(records, trace_id=args.trace_id, out=out)
    if args.perfetto:
        n = write_perfetto(records, args.perfetto)
        print(f"\nwrote {n} Perfetto events to {args.perfetto} "
              f"(open in https://ui.perfetto.dev)", file=out)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
