"""Placement advisor: describe a workload, get placement decisions.

Usage::

    python -m repro.tools.advisor --machine smoky --sim-ranks 32 \\
        --threads 3 --io-interval 6 --bytes-per-rank 115343360 \\
        --ana-time 30 --ana-serial 0.01

Runs all three placement algorithms on the described coupled workload
and prints, for each: the placement style it chose, node count, NUMA
splits, inter-node movement, and the mapping cost.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.machine import smoky, titan
from repro.placement import (
    AnalyticsProfile,
    DataAwareMapping,
    HolisticPlacement,
    NodeTopologyAwarePlacement,
    SimProfile,
    allocate_analytics_async,
    allocate_analytics_sync,
)
from repro.placement.algorithms import process_group_matrix
from repro.util import fmt_bytes


def advise(
    machine_name: str,
    sim_ranks: int,
    threads: int,
    io_interval: float,
    bytes_per_rank: int,
    ana_time: float,
    ana_serial: float,
    halo_bytes: float = 0.0,
    asynchronous: bool = False,
    out=None,
) -> int:
    out = out or sys.stdout
    machine = smoky(80) if machine_name == "smoky" else titan(500)
    grid = ()
    if halo_bytes > 0:
        # Pick a near-square 2-D grid for the halo pattern.
        a = int(sim_ranks**0.5)
        while sim_ranks % a:
            a -= 1
        grid = (a, sim_ranks // a)
    sim = SimProfile(
        num_ranks=sim_ranks,
        threads_per_rank=threads,
        io_interval=io_interval,
        bytes_per_rank=bytes_per_rank,
        grid=grid,
        halo_bytes=halo_bytes,
    )
    ana = AnalyticsProfile(time_single=ana_time, serial_fraction=ana_serial)

    if asynchronous:
        ic = machine.interconnect
        n_ana = allocate_analytics_async(sim, ana, ic.params.peak_bw)
        mode = "async (movement + compute within the interval)"
    else:
        n_ana = allocate_analytics_sync(sim, ana)
        mode = "sync (rate matching)"
    print(f"machine: {machine.name} ({machine.node_type.cores_per_node} cores/node, "
          f"{machine.node_type.numa_domains} NUMA domains)", file=out)
    print(f"resource allocation [{mode}]: {n_ana} analytics processes "
          f"for {sim_ranks} simulation ranks", file=out)
    print("", file=out)

    matrix = process_group_matrix(sim_ranks, n_ana, bytes_per_rank)
    print(f"{'algorithm':18s} {'style':12s} {'nodes':>5s} {'numa-splits':>11s} "
          f"{'inter-node/step':>16s} {'mapping cost':>14s}", file=out)
    for algo in (DataAwareMapping(), HolisticPlacement(), NodeTopologyAwarePlacement()):
        try:
            p = algo.place(machine, sim, ana, matrix, num_ana=n_ana)
        except ValueError as exc:
            print(f"{algo.name:18s} infeasible: {exc}", file=out)
            continue
        movement = p.interprogram_internode_bytes() + p.intraprogram_internode_bytes()
        print(
            f"{algo.name:18s} {p.style():12s} {p.num_nodes:5d} "
            f"{p.thread_numa_splits():11d} {fmt_bytes(movement):>16s} "
            f"{p.cost:14.4g}",
            file=out,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="advisor", description="Run the placement algorithms on a workload."
    )
    parser.add_argument("--machine", default="smoky", choices=["smoky", "titan"])
    parser.add_argument("--sim-ranks", type=int, required=True)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--io-interval", type=float, required=True,
                        help="seconds of compute between outputs")
    parser.add_argument("--bytes-per-rank", type=int, required=True)
    parser.add_argument("--ana-time", type=float, required=True,
                        help="seconds to process one step's data on one process")
    parser.add_argument("--ana-serial", type=float, default=0.05)
    parser.add_argument("--halo-bytes", type=float, default=0.0)
    parser.add_argument("--async", dest="asynchronous", action="store_true")
    parser.add_argument("--trace", metavar="DUMP.jsonl", default=None,
                        help="fold a PerfMonitor trace dump into the advice "
                             "(prints the bottleneck hint; a write-bound "
                             "trace switches the allocation to async)")
    args = parser.parse_args(argv)
    asynchronous = args.asynchronous
    if args.trace:
        from repro.core.monitoring import PerfMonitor
        from repro.obs.analysis import find_bottleneck

        hint = find_bottleneck(PerfMonitor.load(args.trace))
        if hint is None:
            print(f"trace {args.trace}: no spans found (tracing disabled?)")
        else:
            print(f"trace {args.trace}: {hint}")
            if hint.stage == "write" and not asynchronous:
                print("  -> write-bound: advising the async allocation")
                asynchronous = True
        print()
    return advise(
        args.machine, args.sim_ranks, args.threads, args.io_interval,
        args.bytes_per_rank, args.ana_time, args.ana_serial,
        halo_bytes=args.halo_bytes, asynchronous=asynchronous,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
