"""Regenerate one of the paper's figures/tables from the command line.

Usage::

    python -m repro.tools.report fig4
    python -m repro.tools.report fig6 smoky
    python -m repro.tools.report fig7
    python -m repro.tools.report fig8 [smoky|titan]
    python -m repro.tools.report fig9 titan
    python -m repro.tools.report tuning smoky
    python -m repro.tools.report gts-costs smoky
    python -m repro.tools.report s3d-costs titan
    python -m repro.tools.report all          # everything (slow)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.figures import (
    fig4_rdma_registration,
    fig6_gts_total_execution_time,
    fig7_gts_detailed_timing,
    fig8_cache_miss_rates,
    fig9_s3d_total_execution_time,
    format_table,
    gts_cost_metrics,
    s3d_cost_metrics,
    s3d_movement_tuning,
)
from repro.figures.fig7 import fig7_headline_numbers

_MACHINE_FIGS = {"fig6", "fig9", "tuning", "gts-costs", "s3d-costs", "fig8"}


def generate(figure: str, machine: str, out=None) -> int:
    out = out or sys.stdout
    if figure == "fig4":
        print(format_table(fig4_rdma_registration(),
                           "Figure 4: RDMA Get bandwidth (MB/s), Gemini"), file=out)
    elif figure == "fig6":
        rows = fig6_gts_total_execution_time(machine)
        print(format_table(rows, f"Figure 6: GTS TET (s) on {machine}"), file=out)
    elif figure == "fig7":
        rows = fig7_gts_detailed_timing()
        print(format_table(rows, "Figure 7: detailed GTS timing (128 ranks, Smoky)"),
              file=out)
        print(format_table([fig7_headline_numbers(rows)], "Headline numbers"), file=out)
    elif figure == "fig8":
        print(format_table(fig8_cache_miss_rates(machine),
                           f"Figure 8: GTS LLC miss rates on {machine}"), file=out)
    elif figure == "fig9":
        rows = fig9_s3d_total_execution_time(machine)
        print(format_table(rows, f"Figure 9: S3D TET (s) on {machine}"), file=out)
    elif figure == "tuning":
        print(format_table(s3d_movement_tuning(machine),
                           f"S3D movement tuning on {machine}"), file=out)
    elif figure == "gts-costs":
        print(format_table(gts_cost_metrics(machine),
                           f"GTS cost metrics on {machine}"), file=out)
    elif figure == "s3d-costs":
        print(format_table(s3d_cost_metrics(machine),
                           f"S3D cost metrics on {machine}"), file=out)
    elif figure == "all":
        for fig in ("fig4", "fig7"):
            generate(fig, machine, out)
        for fig in ("fig6", "fig8", "fig9", "tuning", "gts-costs", "s3d-costs"):
            for m in ("smoky", "titan"):
                generate(fig, m, out)
    else:
        print(f"report: unknown figure {figure!r}", file=out)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="report", description="Regenerate one of the paper's figures/tables."
    )
    parser.add_argument(
        "figure",
        choices=["fig4", "fig6", "fig7", "fig8", "fig9", "tuning",
                 "gts-costs", "s3d-costs", "all"],
    )
    parser.add_argument(
        "machine", nargs="?", default="smoky", choices=["smoky", "titan"]
    )
    args = parser.parse_args(argv)
    return generate(args.figure, args.machine)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
