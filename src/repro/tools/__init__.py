"""Command-line tools.

* ``python -m repro.tools.bpls <file.bp>`` — inspect a BP-lite file
  (variables, steps, blocks, min/max statistics), modeled on ADIOS's
  ``bpls`` utility.
* ``python -m repro.tools.report <figure> [machine]`` — regenerate one of
  the paper's figures/tables from the command line.
* ``python -m repro.tools.advisor`` — run the placement algorithms on a
  described workload and print their decisions and costs.
* ``python -m repro.tools.trace <dump.jsonl>`` — analyze a monitoring
  dump: per-stage time breakdown, the critical path of the slowest
  timestep, a bottleneck hint, and optional Perfetto export.
"""
