"""Chaos harness: coupled pipelines under seeded fault schedules.

Replays GTS-like (process-group particle) and S3D-like (global-array
field) coupled pipelines through the **live** FLEXPATH data plane with a
deterministic transport fault schedule (the ``faults=`` stream hint), and
asserts the resiliency invariants end to end:

1. **Exactly-once, never torn** — every written step is either committed
   and byte-identical on the reader, or surfaced as a typed loss on BOTH
   sides; no step is silently dropped, duplicated, or partially visible.
2. **No deadlock** — the writer finishes and the reader reaches
   End-of-Stream within a wall-clock bound; a reader never waits forever
   on a lost step.
3. **Observability** — injected faults and retry recoveries are counted
   in the metrics registry and visible as records in the trace dump.
4. **Fused == interpreted** — with ``--plugins`` a reader-side DC
   plug-in chain (units, sampling, range-select) is deployed on the s3d
   stream, and every committed step read through the compiled fused
   plan must be byte-identical to the interpreted chain applied to the
   assembled oracle array; the run also fails if no read actually took
   the fused path.

Usage::

    python -m repro.tools.chaos --scenario gts --seed 7 --rate 0.1
    python -m repro.tools.chaos --scenario all --steps 30 --transactional
    python -m repro.tools.chaos --scenario s3d --transport rdma --json
    python -m repro.tools.chaos --scenario s3d --plugins

Exit status 1 when any invariant is violated — wired into CI as the
``chaos-smoke`` job.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.adios import Adios, RankContext, StepStatus, block_decompose
from repro.analysis import sanitize
from repro.core.hints import stream_params
from repro.core.plugins import (
    PluginManager,
    PluginSide,
    range_select_plugin,
    sampling_plugin,
    unit_conversion_plugin,
)
from repro.core.resilience import MovementFailed, TransactionAborted
from repro.core.stream import StepState, stream_registry
from repro.obs import recorder as flight
from repro.obs.analysis import fault_summary
from repro.obs.events import EV_FLIGHT_DUMP
from repro.obs.names import M_PLUGIN_FUSED_READS
from repro.util import rng

SCENARIOS = ("gts", "s3d")

#: Distinguishes streams of repeated in-process runs (tests, --scenario all).
_RUN_IDS = itertools.count()

_GTS_XML = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">{params}</method>
</adios-config>
"""

_S3D_XML = """
<adios-config>
  <adios-group name="field">
    <var name="temp" type="float64" dimensions="32,32"/>
  </adios-group>
  <method group="field" method="FLEXPATH">{params}</method>
</adios-config>
"""

_S3D_SHAPE = (32, 32)


def _chaos_chain() -> list:
    """Fresh instances of the reader-side chain used by ``--plugins``.

    Called once to deploy on the live stream and once to build the
    interpreted oracle, so the two sides never share kernel state.
    """
    return [
        unit_conversion_plugin("temp", 1.5),
        sampling_plugin(stride=2, only=("temp",)),
        range_select_plugin("temp", 0, 0.15, 1.35),
    ]


@dataclass
class ChaosReport:
    """Outcome of one chaos run; ``ok`` iff no invariant was violated."""

    scenario: str
    seed: int
    rate: float
    transport: str
    transactional: bool
    steps: int
    #: A reader-side DC plug-in chain was deployed (``--plugins``).
    plugins: bool = False
    #: Reads that took the compiled fused path (plug-in runs only).
    fused_reads: int = 0
    committed: list = field(default_factory=list)
    lost: list = field(default_factory=list)
    writer_failures: int = 0
    faults_injected: int = 0
    retries: int = 0
    recovered: int = 0
    degradations: int = 0
    invariant_violations: list = field(default_factory=list)
    #: Concurrency-sanitizer findings (FLEXIO_SANITIZE=1); also folded
    #: into ``invariant_violations`` so they fail the run.
    sanitizer_violations: list = field(default_factory=list)
    #: Flight-recorder events captured during the run.
    flight_events: int = 0
    #: Fault-dump artifacts the recorder wrote (``flight_dir`` runs).
    flight_dumps: list = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.invariant_violations

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "rate": self.rate,
            "transport": self.transport,
            "transactional": self.transactional,
            "steps": self.steps,
            "plugins": self.plugins,
            "fused_reads": self.fused_reads,
            "committed": list(self.committed),
            "lost": list(self.lost),
            "writer_failures": self.writer_failures,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "recovered": self.recovered,
            "degradations": self.degradations,
            "invariant_violations": list(self.invariant_violations),
            "sanitizer_violations": list(self.sanitizer_violations),
            "flight_events": self.flight_events,
            "flight_dumps": list(self.flight_dumps),
            "wall_time": self.wall_time,
            "ok": self.ok,
        }


def _payload(seed: int, step: int, rank: int, count) -> np.ndarray:
    """Deterministic per-(seed, step, rank) payload — the byte-identity
    oracle the reader checks committed steps against."""
    g = rng(seed * 1_000_003 + step * 1_009 + rank * 101 + 17)
    return np.asarray(g.random(tuple(count)), dtype=np.float64)


def run_chaos(
    scenario: str = "gts",
    seed: int = 0,
    rate: float = 0.1,
    steps: int = 20,
    writers: int = 2,
    transport: str = "shm",
    transactional: bool = False,
    plugins: bool = False,
    kinds: str = "timeout|torn|disconnect",
    max_retries: int = 2,
    retry_timeout: float = 0.01,
    degrade_after: int = 0,
    deadline_s: float = 60.0,
    trace_out: Optional[str] = None,
    flight_dir: Optional[str] = None,
) -> ChaosReport:
    """One seeded chaos run through the live pipeline; see module doc.

    ``degrade_after=0`` (default) keeps the configured transport under
    fault so losses stay visible; pass a positive value to exercise the
    degradation ladder instead.  With ``flight_dir`` the flight recorder
    writes a dump artifact on every fault (lost step, wedged drainer),
    and the run fails its observability invariant if steps were lost but
    no artifact appeared.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
    if plugins and scenario != "s3d":
        raise ValueError(
            "plugins=True needs the s3d global-array scenario — only read() "
            "selections take the compiled fused path"
        )
    report = ChaosReport(
        scenario=scenario, seed=seed, rate=rate, transport=transport,
        transactional=transactional, steps=steps, plugins=plugins,
    )
    # Registry-validated hint build: a typo here is an UnknownHintError
    # at harness start, not a silently-ignored knob mid-chaos-run.
    params = stream_params(
        sync=True,
        trace=True,
        transport=transport,
        max_retries=max_retries,
        retry_timeout=retry_timeout,
        degrade_after=degrade_after,
        transactional=transactional,
        faults=f"rate={rate},seed={seed},kinds={kinds}",
    )
    # Fresh sanitizer state per run (FLEXIO_SANITIZE=1): violations from
    # a previous in-process run must not bleed into this report.
    san = sanitize.get()
    if san is not None:
        san.reset()
    # Fresh flight ring per run, so the dump windows and the per-process
    # auto-dump cap belong to *this* fault schedule.
    recorder = flight.reset()
    if flight_dir is not None:
        flight.set_flight_dir(flight_dir)
    group = "particles" if scenario == "gts" else "field"
    xml = (_GTS_XML if scenario == "gts" else _S3D_XML).format(params=params)
    adios = Adios.from_xml(xml)
    name = f"chaos.{scenario}.{seed}.{next(_RUN_IDS)}"

    boxes = block_decompose(_S3D_SHAPE, (writers, 1)) if scenario == "s3d" else None
    began = time.monotonic()

    # -- writer phase ------------------------------------------------------
    handles = [
        adios.open_write(group, name, RankContext(r, writers))
        for r in range(writers)
    ]
    state = stream_registry._states[name]
    oracle: Optional[PluginManager] = None
    if plugins:
        # Same chain twice from fresh instances: one on the live stream
        # (reads go through the compiled fused plan), one as a detached
        # interpreted oracle the fused results are byte-compared against.
        for k in _chaos_chain():
            state.plugins.deploy(k, PluginSide.READER)
        oracle = PluginManager()
        for k in _chaos_chain():
            oracle.deploy(k, PluginSide.READER)
    expected: dict[tuple[int, int], np.ndarray] = {}
    writer_lost: list[int] = []
    for step in range(steps):
        for r, h in enumerate(handles):
            count = (64, 7) if scenario == "gts" else boxes[r].count
            data = _payload(seed, step, r, count)
            expected[(step, r)] = data
            h.write(
                "zion" if scenario == "gts" else "temp",
                data,
                box=None if scenario == "gts" else boxes[r],
                global_shape=None if scenario == "gts" else _S3D_SHAPE,
            )
            try:
                h.end_step()
            except (MovementFailed, TransactionAborted):
                # sync=true surfaces the loss to the writer at the step
                # boundary — the reader must see the same typed gap.
                writer_lost.append(step)
    for h in handles:
        h.close()
    report.writer_failures = len(writer_lost)

    # -- reader phase ------------------------------------------------------
    var = "zion" if scenario == "gts" else "temp"
    reader = adios.open_read(group, name, RankContext(0, 1))
    reader_committed: list[int] = []
    reader_lost: list[int] = []
    while True:
        if time.monotonic() - began > deadline_s:
            report.invariant_violations.append(
                f"deadline exceeded after {deadline_s}s (deadlock?)"
            )
            break
        status = reader.begin_step(timeout=5.0)
        step = reader.current_step
        if status is StepStatus.EndOfStream:
            break
        if status is StepStatus.NotReady:
            report.invariant_violations.append(
                f"reader stalled at step {step} on a closed writer"
            )
            break
        if status is StepStatus.OtherError:
            reader_lost.append(step)
            continue
        torn = False
        if oracle is not None:
            # Fused-vs-interpreted invariant: one full-selection read
            # through the compiled chain, against the interpreted chain
            # applied to the assembled oracle payloads.
            got = reader.read(var, start=(0, 0), count=_S3D_SHAPE)
            full = np.concatenate(
                [expected[(step, r)] for r in range(writers)]
            )
            want = oracle.apply_side(PluginSide.READER, {var: full})[var]
            if got.shape != want.shape or got.tobytes() != want.tobytes():  # flexlint: ok(FXL006) byte-identity oracle, not a transport copy
                torn = True
            if torn:
                report.invariant_violations.append(
                    f"step {step}: fused plug-in read differs from the "
                    f"interpreted chain"
                )
        else:
            for r in range(writers):
                if scenario == "gts":
                    got = reader.read_block(var, r)
                else:
                    box = boxes[r]
                    got = reader.read(var, start=box.start, count=box.count)
                want = expected[(step, r)]
                if got.shape != want.shape or not np.array_equal(got, want):
                    torn = True
            if torn:
                report.invariant_violations.append(
                    f"step {step} committed but NOT byte-identical (torn data)"
                )
        if not torn:
            reader_committed.append(step)
        reader.end_step()
    reader.close()
    report.wall_time = time.monotonic() - began
    report.committed = reader_committed
    report.lost = reader_lost

    # -- invariants --------------------------------------------------------
    seen = sorted(reader_committed + reader_lost)
    if seen != list(range(steps)):
        report.invariant_violations.append(
            f"steps not covered exactly once: saw {seen}, expected 0..{steps - 1}"
        )
    if sorted(writer_lost) != sorted(reader_lost):
        report.invariant_violations.append(
            f"writer and reader disagree on lost steps: "
            f"writer={sorted(writer_lost)} reader={sorted(reader_lost)}"
        )
    for s in state._published:
        if s.status not in (StepState.COMMITTED, StepState.LOST, StepState.ABORTED):
            report.invariant_violations.append(
                f"step {s.step} left in state {s.status.value}"
            )

    # -- observability -----------------------------------------------------
    metrics = state.monitor.metrics
    report.faults_injected = int(metrics.counter("faults.injected.total").value)
    report.retries = int(metrics.counter("dataplane.drain.retries").value)
    report.recovered = int(metrics.counter("dataplane.drain.recovered").value)
    report.degradations = int(
        metrics.counter("dataplane.transport.degradations").value
    )
    if plugins:
        report.fused_reads = int(metrics.counter(M_PLUGIN_FUSED_READS).value)
        if reader_committed and report.fused_reads == 0:
            report.invariant_violations.append(
                "plug-in chain deployed but no read took the fused path"
            )
    records = [r.as_dict() for r in state.monitor.trace]
    summary = fault_summary(records)
    if report.faults_injected > 0 and not summary.any():
        report.invariant_violations.append(
            "faults were injected but none are visible in the trace"
        )
    if report.recovered > 0 and summary.recovered == 0:
        report.invariant_violations.append(
            "retries recovered steps but no drain_recovered trace records"
        )
    if trace_out:
        state.monitor.export_perfetto(trace_out)

    stream_registry.close_stream(name)

    # -- flight recorder ---------------------------------------------------
    report.flight_events = len(recorder)
    report.flight_dumps = [
        dict(e.attrs)["path"]
        for e in recorder.events(code=EV_FLIGHT_DUMP)
        if "path" in dict(e.attrs)
    ]
    if flight_dir is not None:
        flight.set_flight_dir(None)
        if (report.lost or report.writer_failures) and not report.flight_dumps:
            report.invariant_violations.append(
                "steps were lost but the flight recorder wrote no dump artifact"
            )

    # -- concurrency sanitizer ---------------------------------------------
    if san is not None:
        san.check_shutdown()  # flags drainer threads left un-joined
        san.check_leases()  # flags buffer leases still outstanding
        report.sanitizer_violations = [str(v) for v in san.violations()]
        report.invariant_violations.extend(
            f"sanitizer: {v}" for v in report.sanitizer_violations
        )
    return report


def _print_report(report: ChaosReport, out) -> None:
    flag = "OK" if report.ok else "FAIL"
    print(
        f"[{flag}] {report.scenario} seed={report.seed} rate={report.rate} "
        f"transport={report.transport}"
        f"{' transactional' if report.transactional else ''}: "
        f"{len(report.committed)}/{report.steps} committed, "
        f"{len(report.lost)} lost, {report.faults_injected} faults injected, "
        f"{report.retries} retries, {report.recovered} recovered, "
        f"{report.degradations} degradations "
        f"({report.wall_time:.2f}s)",
        file=out,
    )
    if report.plugins:
        print(
            f"  plug-in chain: {report.fused_reads} fused reads checked "
            f"against the interpreted oracle",
            file=out,
        )
    if report.flight_dumps:
        for path in report.flight_dumps:
            print(f"  flight dump: {path}", file=out)
    for v in report.invariant_violations:
        print(f"  violation: {v}", file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos",
        description="Replay coupled pipelines under a seeded fault schedule "
                    "and check the resiliency invariants.",
    )
    parser.add_argument("--scenario", default="gts",
                        choices=SCENARIOS + ("all",))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rate", type=float, default=0.1,
                        help="per-send fault probability (default 0.1)")
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--transport", default="shm", choices=("shm", "rdma"))
    parser.add_argument("--transactional", action="store_true",
                        help="all-or-nothing step visibility (2PC)")
    parser.add_argument("--plugins", action="store_true",
                        help="deploy a reader-side DC plug-in chain and "
                             "check fused reads against the interpreted "
                             "oracle (s3d scenario only)")
    parser.add_argument("--kinds", default="timeout|torn|disconnect",
                        help="fault kinds to draw from (|-separated)")
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--degrade-after", type=int, default=0,
                        help="consecutive failures before degrading "
                             "transport (0 = never)")
    parser.add_argument("--trace-out", default=None, metavar="OUT.json",
                        help="write a Perfetto trace of the run")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="write flight-recorder dump artifacts here "
                             "on every fault")
    parser.add_argument("--json", action="store_true",
                        help="emit the report(s) as JSON")
    args = parser.parse_args(argv)
    out = out or sys.stdout

    if args.plugins and args.scenario == "gts":
        parser.error("--plugins requires the s3d (global-array) scenario")
    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)
    reports = [
        run_chaos(
            scenario=s,
            seed=args.seed,
            rate=args.rate,
            steps=args.steps,
            writers=args.writers,
            transport=args.transport,
            transactional=args.transactional,
            plugins=args.plugins and s == "s3d",
            kinds=args.kinds,
            max_retries=args.max_retries,
            degrade_after=args.degrade_after,
            trace_out=args.trace_out if len(scenarios) == 1 else None,
            flight_dir=args.flight_dir,
        )
        for s in scenarios
    ]
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2), file=out)
    else:
        for r in reports:
            _print_report(r, out)
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
