"""net-smoke: the networked data plane as real OS processes, end to end.

The orchestrator spawns three processes and drives the acceptance
scenario for the network plane:

1. the directory daemon (``python -m repro.net.server``) with a
   token-protected tenant capped at ``max_streams``;
2. a **writer** process publishing a GTS-like block-decomposed global
   array for N steps through :func:`repro.connect`;
3. a **reader** process consuming the same stream over its own
   TcpChannel, verifying a full read and a sub-selection per step.

Both workers print one ``STEP k sum=...`` invariant line per step; the
orchestrator joins them and asserts the chaos-style invariants: no
loss (same step count), no tearing (checksums match), order preserved
(step indices monotone).  It then exercises quota admission (the
stream beyond ``max_streams`` must be rejected with the typed
``QuotaExceeded``) and finally *induces* a disconnect — killing the
daemon under an open stream — expecting the typed ``TransportFault``
and a flight-recorder dump artifact.

CLI::

    python -m repro.tools.netsmoke [--steps N] [--flight-dir DIR]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from typing import Optional

import numpy as np

TENANT = "acme"
TOKEN = "smoke-t0ken"
MAX_STREAMS = 2
STREAM = "netsmoke.gts"
SHAPE = (16, 16)
SUB_START, SUB_COUNT = (4, 3), (8, 9)

_STEP_RE = re.compile(r"^STEP (\d+) sum=(\S+)$", re.MULTILINE)
_READY_RE = re.compile(
    r"^FLEXIO-DAEMON READY control=(\S+?):(\d+) data=\S+ telemetry=(\S+)$"
)


def _field(step: int) -> np.ndarray:
    full = np.arange(float(np.prod(SHAPE))).reshape(SHAPE)
    return full + 1000.0 * step


def run_writer(uri: str, steps: int) -> int:
    import repro
    from repro.adios import BoundingBox

    box = BoundingBox((0, 0), SHAPE)
    with repro.connect(uri, token=TOKEN) as client:
        w = client.open(STREAM, "w")
        for step in range(steps):
            field = _field(step)
            w.begin_step()
            w.write("temperature", field, box=box, global_shape=SHAPE)
            w.end_step()
            print(f"STEP {step} sum={field.sum():.6f}", flush=True)
        w.close()
    print(f"WRITER DONE steps={steps}", flush=True)
    return 0


def run_reader(uri: str, steps: int) -> int:
    import repro
    from repro.adios import StepStatus

    with repro.connect(uri, token=TOKEN) as client:
        r = client.open(STREAM, "r", timeout=10.0)
        seen = 0
        while True:
            status = r.begin_step(timeout=10.0)
            if status is StepStatus.EndOfStream:
                break
            assert status is StepStatus.OK, f"unexpected status {status}"
            full = r.read("temperature")
            sub = r.read("temperature", start=SUB_START, count=SUB_COUNT)
            sl = tuple(slice(s, s + c) for s, c in zip(SUB_START, SUB_COUNT))
            np.testing.assert_array_equal(sub, full[sl])  # no tearing
            print(f"STEP {seen} sum={full.sum():.6f}", flush=True)
            seen += 1
            r.end_step()
        r.close()
    print(f"READER DONE steps={seen}", flush=True)
    return 0


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------

def _spawn(args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )


def _steps_of(output: str) -> list[tuple[int, str]]:
    return [(int(m.group(1)), m.group(2)) for m in _STEP_RE.finditer(output)]


def run_orchestrator(steps: int, flight_dir: Optional[str]) -> int:
    import repro
    from repro.core.directory import QuotaExceeded
    from repro.obs import recorder as flight
    from repro.transport.faults import TransportFault

    daemon = _spawn([
        "-m", "repro.net.server", "--no-telemetry",
        "--tenant", f"{TENANT},token={TOKEN},max_streams={MAX_STREAMS}",
    ])
    try:
        ready = daemon.stdout.readline()
        m = _READY_RE.match(ready.strip())
        if m is None:
            print(f"FAIL: bad daemon ready line: {ready!r}")
            return 1
        host, port = m.group(1), int(m.group(2))
        uri = f"flexio://{host}:{port}/{TENANT}"
        print(f"[netsmoke] daemon up at {uri}")

        writer = _spawn(["-m", "repro.tools.netsmoke", "--role", "writer",
                         "--uri", uri, "--steps", str(steps)])
        reader = _spawn(["-m", "repro.tools.netsmoke", "--role", "reader",
                         "--uri", uri, "--steps", str(steps)])
        w_out, _ = writer.communicate(timeout=120)
        r_out, _ = reader.communicate(timeout=120)
        if writer.returncode != 0 or reader.returncode != 0:
            print(f"FAIL: writer rc={writer.returncode} reader rc={reader.returncode}")
            print(w_out)
            print(r_out)
            return 1

        # Chaos-style invariants: no loss, no tearing, order preserved.
        w_steps, r_steps = _steps_of(w_out), _steps_of(r_out)
        assert len(w_steps) == len(r_steps) == steps, (
            f"step loss: writer={len(w_steps)} reader={len(r_steps)} want={steps}")
        assert [i for i, _ in r_steps] == list(range(steps)), "order broken"
        assert w_steps == r_steps, f"checksum mismatch: {w_steps} != {r_steps}"
        print(f"[netsmoke] {steps} steps exchanged across 3 OS processes, "
              f"checksums match")

        # Quota admission: the stream beyond max_streams is rejected typed.
        with repro.connect(uri, token=TOKEN) as client:
            held = [client.open(f"quota.{i}", "w") for i in range(MAX_STREAMS)]
            try:
                client.open("quota.overflow", "w")
            except QuotaExceeded as exc:
                print(f"[netsmoke] quota enforced: {exc}")
            else:
                print("FAIL: stream beyond max_streams was admitted")
                return 1
            for h in held:
                h.close()

        # Induced disconnect: daemon dies under an open stream; the
        # client must fail typed and leave a flight dump behind.
        if flight_dir:
            flight.set_flight_dir(flight_dir)
        client = repro.connect(uri, token=TOKEN)
        doomed = client.open("doomed", "w")
        daemon.terminate()
        daemon.wait(timeout=10)
        doomed.begin_step()
        doomed.write("x", np.zeros(8))
        try:
            doomed.end_step()
        except TransportFault as exc:
            print(f"[netsmoke] induced disconnect surfaced typed: "
                  f"{type(exc).__name__}: {exc}")
            flight.dump_on_fault("netsmoke induced disconnect", stream="doomed")
        else:
            print("FAIL: end_step after daemon death did not raise")
            return 1
        if flight_dir:
            dumps = [f for f in os.listdir(flight_dir) if f.startswith("flight-")]
            if not dumps:
                print(f"FAIL: no flight dump in {flight_dir}")
                return 1
            print(f"[netsmoke] flight dump written: {dumps[0]}")
        print("NET-SMOKE OK")
        return 0
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=5)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.netsmoke",
        description="cross-process network-plane smoke test",
    )
    parser.add_argument("--role", choices=("orchestrator", "writer", "reader"),
                        default="orchestrator")
    parser.add_argument("--uri", default="")
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--flight-dir", default=None)
    args = parser.parse_args(argv)
    if args.role == "writer":
        return run_writer(args.uri, args.steps)
    if args.role == "reader":
        return run_reader(args.uri, args.steps)
    return run_orchestrator(args.steps, args.flight_dir)


if __name__ == "__main__":
    raise SystemExit(main())
