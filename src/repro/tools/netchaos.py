"""netchaos: seeded fault-injection chaos for the *networked* plane.

Where :mod:`repro.tools.chaos` tortures the in-process data plane and
:mod:`repro.tools.netsmoke` proves the happy path across OS processes,
netchaos combines them: a daemon, a writer and a reader in three OS
processes, with a seeded frame-layer fault schedule on the clients'
channels (torn / dropped / delayed frames, connection resets, half-open
sockets) and — depending on the seed — a daemon restart in the middle
(SIGTERM drain + checkpoint, or SIGKILL with synchronous checkpoints),
restored via ``--restore`` on the same pre-picked ports.

Invariants asserted per run (any violation fails the run):

1. **byte-identical-or-typed-loss** — every step the reader observes
   matches the writer's checksum exactly; a worker may only abandon the
   exchange with a typed FlexIO fault (:class:`SessionLost` after retry
   exhaustion, or another :class:`TransportFault` subclass), never
   silently or with a raw ``OSError``;
2. **no duplicate steps** — the reader sees each step index exactly
   once, in order, even though the writer *republished* frames whose
   acknowledgement was eaten by a fault (server-side sequence-number
   dedup);
3. **no deadlock** — both workers finish inside the watchdog budget;
4. **observability** — every injected fault shows up in the worker's
   flight recorder (``transport.fault`` events == injector count) and
   every reconnect in the ``net.reconnects`` counter + flight events;
   after a daemon restart the resumed session is visible in
   ``net.resume``.

CLI::

    python -m repro.tools.netchaos --seed 7 [--steps N] [--flight-dir D]
    python -m repro.tools.netchaos --seeds 25      # the acceptance sweep
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Optional

import numpy as np

TENANT = "chaos"
TOKEN = "chaos-t0ken"
STREAM = "netchaos.gts"
SHAPE = (12, 12)

#: Frame-layer kinds the client-side injectors draw from.
FAULT_KINDS = "torn_frame|dropped_frame|delayed_frame|conn_reset|half_open"

#: Worker exit codes the orchestrator understands.
RC_OK = 0
RC_TYPED_LOSS = 3  # typed FlexIO fault after retry exhaustion: acceptable


def _field(step: int, seed: int) -> np.ndarray:
    base = np.arange(float(np.prod(SHAPE))).reshape(SHAPE)
    return base + 1000.0 * step + seed


def _result_line(role: str, **kv) -> None:
    print(f"NETCHAOS-{role.upper()} " + json.dumps(kv, sort_keys=True), flush=True)


def _client_stats(client) -> dict:
    from repro.obs import recorder as flight
    from repro.obs.events import EV_FAULT, EV_NET_RECONNECT, EV_NET_RESUME

    rec = flight.get()
    reg = client.monitor.metrics
    injected = client.faults.faults_injected if client.faults is not None else 0
    return {
        "injected": injected,
        "reconnects": int(reg.counter("net.reconnects").value),
        "resumes": int(reg.counter("net.resume").value),
        "ev_faults": len(rec.events(code=EV_FAULT)) if rec else 0,
        "ev_reconnects": len(rec.events(code=EV_NET_RECONNECT)) if rec else 0,
        "ev_resumes": len(rec.events(code=EV_NET_RESUME)) if rec else 0,
    }


def _check_observability(stats: dict) -> None:
    """Invariant 4, worker side: injected faults and reconnects are all
    visible in the flight ring and counters."""
    assert stats["ev_faults"] >= stats["injected"], (
        f"flight ring saw {stats['ev_faults']} fault events for "
        f"{stats['injected']} injected faults"
    )
    assert stats["ev_reconnects"] == stats["reconnects"], (
        f"net.reconnects={stats['reconnects']} but "
        f"{stats['ev_reconnects']} reconnect flight events"
    )
    assert stats["ev_resumes"] >= stats["resumes"], (
        f"net.resume={stats['resumes']} but {stats['ev_resumes']} resume events"
    )


def _connect(uri: str, seed: int, rate: float, timeout: float):
    import repro
    from repro.core.resilience import RetryPolicy
    from repro.transport.faults import parse_fault_spec

    spec = f"rate={rate},seed={seed},kinds={FAULT_KINDS}" if rate > 0 else None
    # Generous schedule: the cumulative backoff (~12s) must outlive a
    # daemon kill + restart, not just a single torn frame.
    retry = RetryPolicy(max_retries=8, timeout=0.05, backoff_factor=2.0,
                        jitter=0.25)
    return repro.connect(
        uri, token=TOKEN, timeout=timeout, retry=retry, seed=seed,
        faults=parse_fault_spec(spec), heartbeat_interval=0.5,
    )


def _typed_loss(role: str, client, sums: list, exc: Exception) -> int:
    from repro.obs import recorder as flight

    flight.dump_on_fault(f"netchaos {role} typed loss: {exc}", stream=STREAM)
    _result_line(role, outcome="typed_loss", steps=len(sums), sums=sums,
                 error=f"{type(exc).__name__}: {exc}", **_client_stats(client))
    return RC_TYPED_LOSS


def run_writer(uri: str, steps: int, seed: int, rate: float,
               pace: float) -> int:
    from repro.adios import BoundingBox
    from repro.transport.faults import TransportFault

    box = BoundingBox((0, 0), SHAPE)
    sums: list = []
    client = _connect(uri, seed, rate, timeout=2.0)
    try:
        try:
            w = client.open(STREAM, "w", timeout=15.0)
            for step in range(steps):
                field = _field(step, seed)
                w.begin_step()
                w.write("temperature", field, box=box, global_shape=SHAPE)
                w.end_step()
                sums.append(f"{field.sum():.6f}")
                print(f"STEP {step} sum={sums[-1]}", flush=True)
                if pace > 0:
                    time.sleep(pace)
            w.close()
        except TransportFault as exc:
            return _typed_loss("writer", client, sums, exc)
        stats = _client_stats(client)
        _check_observability(stats)
        _result_line("writer", outcome="ok", steps=len(sums), sums=sums, **stats)
        return RC_OK
    finally:
        try:
            client.close()
        except Exception:  # noqa: BLE001 - teardown after chaos, daemon may be gone
            pass


def run_reader(uri: str, steps: int, seed: int, rate: float) -> int:
    from repro.adios import StepStatus
    from repro.transport.faults import TransportFault

    sums: list = []
    client = _connect(uri, seed + 1000, rate, timeout=2.0)
    try:
        try:
            r = client.open(STREAM, "r", timeout=20.0)
            while True:
                status = r.begin_step(timeout=30.0)
                if status is StepStatus.EndOfStream:
                    break
                if status is not StepStatus.OK:
                    # The writer died (typed) and EOS will never come: a
                    # stalled reader is *its* typed loss, not a hang.
                    return _typed_loss(
                        "reader", client, sums,
                        RuntimeError(f"stream stalled with {status}"),
                    )
                # Invariant 2: the cursor advances exactly one step at a
                # time — a duplicate or skipped step breaks the ladder.
                assert r.current_step == len(sums), (
                    f"cursor {r.current_step} != expected {len(sums)}"
                )
                full = r.read("temperature")
                sums.append(f"{full.sum():.6f}")
                print(f"STEP {len(sums) - 1} sum={sums[-1]}", flush=True)
                r.end_step()
            r.close()
        except TransportFault as exc:
            return _typed_loss("reader", client, sums, exc)
        stats = _client_stats(client)
        _check_observability(stats)
        _result_line("reader", outcome="ok", steps=len(sums), sums=sums, **stats)
        return RC_OK
    finally:
        try:
            client.close()
        except Exception:  # noqa: BLE001 - teardown after chaos, daemon may be gone
            pass


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn(args: list, extra_env: Optional[dict] = None) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )


def _spawn_daemon(control: int, data: int, ckpt: str,
                  restore: bool) -> subprocess.Popen:
    args = [
        "-m", "repro.net.server", "--no-telemetry",
        "--host", "127.0.0.1",
        "--control-port", str(control), "--data-port", str(data),
        "--tenant", f"{TENANT},token={TOKEN}",
        "--checkpoint", ckpt, "--checkpoint-sync",
        "--drain-grace", "0.2",
        "--lease-interval", "0.2",
    ]
    if restore:
        args.append("--restore")
    proc = _spawn(args)
    line = proc.stdout.readline()
    if not line.startswith("FLEXIO-DAEMON READY"):
        proc.kill()
        raise RuntimeError(f"daemon failed to come up: {line!r}")
    return proc


def _parse_result(output: str, role: str) -> Optional[dict]:
    marker = f"NETCHAOS-{role.upper()} "
    for line in output.splitlines():
        if line.startswith(marker):
            return json.loads(line[len(marker):])
    return None


def run_one(seed: int, steps: int, rate: float,
            flight_dir: Optional[str]) -> dict:
    """One seeded chaos run; returns a result dict.  Raises
    ``AssertionError`` on an invariant violation (accepted typed loss is
    not a violation)."""
    control, data = _free_port(), _free_port()
    uri = f"flexio://127.0.0.1:{control}/{TENANT}"
    restart_mode = ("none", "sigterm", "sigkill")[seed % 3]
    tmp = tempfile.mkdtemp(prefix=f"netchaos-{seed}-")
    ckpt = os.path.join(tmp, "daemon.ckpt")
    worker_env = {"FLEXIO_FLIGHT_DIR": flight_dir} if flight_dir else None

    daemon = _spawn_daemon(control, data, ckpt, restore=False)
    writer = reader = None
    try:
        common = ["-m", "repro.tools.netchaos", "--uri", uri,
                  "--steps", str(steps), "--seed", str(seed),
                  "--rate", str(rate)]
        writer = _spawn([*common, "--role", "writer", "--pace", "0.15"],
                        worker_env)
        reader = _spawn([*common, "--role", "reader"], worker_env)

        if restart_mode != "none":
            # Let some steps land, then take the daemon down mid-run.
            time.sleep(0.6 + 0.05 * (seed % 5))
            sig = (signal.SIGTERM if restart_mode == "sigterm"
                   else signal.SIGKILL)
            daemon.send_signal(sig)
            daemon.wait(timeout=15)
            daemon = _spawn_daemon(control, data, ckpt, restore=True)

        # Invariant 3: no deadlock — the watchdog is the communicate timeout.
        w_out, _ = writer.communicate(timeout=120)
        r_out, _ = reader.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        for p in (writer, reader):
            if p is not None:
                p.kill()
        raise AssertionError(
            f"seed {seed}: deadlock — a worker outlived the 120s watchdog"
        ) from None
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=5)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()

    w_res = _parse_result(w_out, "writer")
    r_res = _parse_result(r_out, "reader")
    assert writer.returncode in (RC_OK, RC_TYPED_LOSS) and w_res is not None, (
        f"seed {seed}: writer died untyped (rc={writer.returncode})\n{w_out}"
    )
    assert reader.returncode in (RC_OK, RC_TYPED_LOSS) and r_res is not None, (
        f"seed {seed}: reader died untyped (rc={reader.returncode})\n{r_out}"
    )

    # Invariant 1+2: byte-identical prefix, each step exactly once.
    w_sums, r_sums = w_res["sums"], r_res["sums"]
    if w_res["outcome"] == "ok" and r_res["outcome"] == "ok":
        assert len(w_sums) == steps, f"seed {seed}: writer stopped early"
        assert r_sums == w_sums, (
            f"seed {seed}: checksum divergence\n"
            f"  writer={w_sums}\n  reader={r_sums}"
        )
    else:
        prefix = min(len(w_sums), len(r_sums))
        assert r_sums[:prefix] == w_sums[:prefix], (
            f"seed {seed}: torn data before typed loss\n"
            f"  writer={w_sums}\n  reader={r_sums}"
        )

    return {
        "seed": seed,
        "restart": restart_mode,
        "writer": {k: w_res.get(k) for k in
                   ("outcome", "steps", "injected", "reconnects", "resumes")},
        "reader": {k: r_res.get(k) for k in
                   ("outcome", "steps", "injected", "reconnects", "resumes")},
    }


def run_sweep(seeds: list, steps: int, rate: float,
              flight_dir: Optional[str]) -> int:
    results = []
    violations = []
    for seed in seeds:
        try:
            res = run_one(seed, steps, rate, flight_dir)
        except AssertionError as exc:
            violations.append((seed, str(exc)))
            print(f"[netchaos] seed {seed}: INVARIANT VIOLATION: {exc}")
            continue
        results.append(res)
        w, r = res["writer"], res["reader"]
        print(
            f"[netchaos] seed {seed:3d} restart={res['restart']:<7s} "
            f"writer={w['outcome']}/{w['steps']} inj={w['injected']} "
            f"rc={w['reconnects']} rs={w['resumes']}  "
            f"reader={r['outcome']}/{r['steps']} inj={r['injected']} "
            f"rc={r['reconnects']} rs={r['resumes']}"
        )
    completed = sum(
        1 for res in results
        if res["writer"]["outcome"] == "ok" and res["reader"]["outcome"] == "ok"
    )
    total_inj = sum(
        res[w]["injected"] or 0 for res in results for w in ("writer", "reader")
    )
    total_rec = sum(
        res[w]["reconnects"] or 0 for res in results for w in ("writer", "reader")
    )
    print(
        f"[netchaos] {len(seeds)} runs: {len(violations)} violations, "
        f"{completed} fully completed, {len(results) - completed} typed-loss, "
        f"{total_inj} faults injected, {total_rec} reconnects"
    )
    if violations:
        print("NETCHAOS FAIL")
        return 1
    print("NETCHAOS OK")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.netchaos",
        description="seeded multi-process chaos for the network plane",
    )
    parser.add_argument("--role", choices=("orchestrator", "writer", "reader"),
                        default="orchestrator")
    parser.add_argument("--uri", default="")
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=0,
                        help="sweep seeds 1..N (orchestrator only)")
    parser.add_argument("--rate", type=float, default=0.06,
                        help="per-frame fault probability on client channels")
    parser.add_argument("--pace", type=float, default=0.0,
                        help="writer inter-step sleep (seconds)")
    parser.add_argument("--flight-dir", default=None)
    args = parser.parse_args(argv)
    if args.role == "writer":
        return run_writer(args.uri, args.steps, args.seed, args.rate, args.pace)
    if args.role == "reader":
        return run_reader(args.uri, args.steps, args.seed, args.rate)
    seeds = list(range(1, args.seeds + 1)) if args.seeds else [args.seed]
    return run_sweep(seeds, args.steps, args.rate, args.flight_dir)


if __name__ == "__main__":
    raise SystemExit(main())
