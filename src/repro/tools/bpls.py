"""``bpls`` for BP-lite files: list variables, steps, blocks, statistics.

Usage::

    python -m repro.tools.bpls out.bp
    python -m repro.tools.bpls out.bp -v temperature      # one variable
    python -m repro.tools.bpls out.bp -v temperature -d   # dump values
    python -m repro.tools.bpls out.bp --blocks            # per-block detail
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.adios import BpFormatError, BpReader


def _fmt_shape(shape) -> str:
    return "{" + ", ".join(str(s) for s in shape) + "}" if shape else "scalar"


def list_file(
    path: str,
    var: Optional[str] = None,
    show_blocks: bool = False,
    dump: bool = False,
    out=None,
) -> int:
    """Print the listing; returns a process exit code."""
    out = out or sys.stdout
    try:
        reader = BpReader(path)
    except (BpFormatError, OSError) as exc:
        print(f"bpls: {exc}", file=out)
        return 1
    with reader:
        names = reader.var_names()
        if var is not None:
            if var not in names:
                print(f"bpls: no variable {var!r} in {path}", file=out)
                return 1
            names = [var]
        print(f"File info:", file=out)
        print(f"  of variables:  {len(reader.var_names())}", file=out)
        print(f"  of steps:      {reader.num_steps}", file=out)
        print("", file=out)
        for name in names:
            meta = reader.var_meta(name)
            gshape = _fmt_shape(meta.global_shape) if meta.global_shape else "local"
            print(
                f"  {np.dtype(meta.dtype).name:10s} {name:24s} "
                f"{meta.steps}*{gshape}  min={meta.min_value:.6g} "
                f"max={meta.max_value:.6g}",
                file=out,
            )
            if show_blocks:
                for step in range(meta.steps):
                    for entry in reader.blocks(name, step):
                        box = (
                            f"start={entry.box.start} count={entry.box.count}"
                            if entry.box
                            else f"shape={entry.shape}"
                        )
                        print(
                            f"    step {step} rank {entry.rank:4d}  {box}  "
                            f"[{entry.vmin:.6g}, {entry.vmax:.6g}]",
                            file=out,
                        )
            if dump:
                for step in range(meta.steps):
                    for entry in reader.blocks(name, step):
                        data = reader.read_block(name, step, entry.rank)
                        with np.printoptions(threshold=64, edgeitems=3):
                            print(
                                f"    step {step} rank {entry.rank}:\n{data}",
                                file=out,
                            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bpls", description="List the contents of a BP-lite file."
    )
    parser.add_argument("file", help="BP-lite file path")
    parser.add_argument("-v", "--var", help="show only this variable")
    parser.add_argument(
        "--blocks", action="store_true", help="per-block detail (rank, box, min/max)"
    )
    parser.add_argument("-d", "--dump", action="store_true", help="dump values")
    args = parser.parse_args(argv)
    return list_file(args.file, var=args.var, show_blocks=args.blocks, dump=args.dump)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
