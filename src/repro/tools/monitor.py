"""Live stream monitor: a top-like per-stream health table.

Scrapes the loopback telemetry server (:mod:`repro.obs.live`) and
prints one row per stream — state, steps/s, MB/s, p99 step latency,
loss rate, queue depth, and the SLO health verdict.

Usage::

    python -m repro.tools.monitor --url http://127.0.0.1:9464
    python -m repro.tools.monitor --url ... --iterations 10 --interval 2
    python -m repro.tools.monitor --demo --check-expo

``--demo`` runs a small in-process coupled pipeline, serves it, scrapes
it once through real HTTP, and exits — the self-contained smoke path CI
uses.  ``--check-expo`` additionally fetches ``/metrics`` and validates
the Prometheus exposition format (exit 1 on any violation).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.util import fmt_bytes

_COLUMNS = (
    f"{'stream':28s} {'state':7s} {'trans':9s} {'steps/s':>8s} "
    f"{'MB/s':>9s} {'p99(ms)':>8s} {'loss%':>6s} {'queue':>5s} health"
)


def fetch(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def render_table(rows: list[dict], out) -> None:
    print(_COLUMNS, file=out)
    if not rows:
        print("(no streams)", file=out)
        return
    for r in rows:
        reasons = f"  [{'; '.join(r['reasons'])}]" if r.get("reasons") else ""
        print(
            f"{r['stream'][:28]:28s} {r['state']:7s} {r['transport'][:9]:9s} "
            f"{r['steps_per_s']:8.2f} {r['bytes_per_s'] / 1e6:9.2f} "
            f"{r['p99_latency'] * 1e3:8.2f} {r['loss_rate'] * 100:6.2f} "
            f"{r['queue_depth']:5.0f} {r['health']}{reasons}",
            file=out,
        )


def scrape_once(url: str, out, as_json: bool = False) -> int:
    try:
        doc = json.loads(fetch(url.rstrip("/") + "/streams"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"cannot scrape {url}: {exc}", file=out)
        return 2
    if as_json:
        print(json.dumps(doc, indent=2), file=out)
    else:
        render_table(doc.get("streams", []), out)
    return 0


def check_exposition(url: str, out) -> int:
    """Fetch /metrics once and validate the text exposition format."""
    from repro.obs.live import validate_exposition

    try:
        text = fetch(url.rstrip("/") + "/metrics").decode()
    except (urllib.error.URLError, OSError) as exc:
        print(f"cannot scrape {url}/metrics: {exc}", file=out)
        return 2
    problems = validate_exposition(text)
    samples = sum(
        1 for ln in text.splitlines() if ln.strip() and not ln.startswith("#")
    )
    if problems:
        print(f"exposition INVALID ({len(problems)} problem(s)):", file=out)
        for p in problems:
            print(f"  {p}", file=out)
        return 1
    print(
        f"exposition OK: {samples} samples, {fmt_bytes(len(text))}", file=out
    )
    return 0


def _run_demo(steps: int, out) -> tuple[object, str]:
    """Drive a small coupled pipeline and serve it; returns (server, url)."""
    import numpy as np

    from repro.adios import Adios, RankContext
    from repro.core.hints import stream_params
    from repro.core.stream import stream_registry
    from repro.obs.live import LiveTelemetryServer

    xml = f"""
    <adios-config>
      <adios-group name="demo">
        <var name="field" type="float64" dimensions="n"/>
      </adios-group>
      <method group="demo" method="FLEXPATH">{stream_params(sync=True)}</method>
    </adios-config>
    """
    adios = Adios.from_xml(xml)
    name = f"monitor.demo.{time.monotonic_ns()}"
    writer = adios.open_write("demo", name, RankContext(0, 1))
    for step in range(steps):
        writer.write("field", np.full(4096, float(step)))
        writer.end_step()
    server = LiveTelemetryServer(
        states=lambda: dict(stream_registry._states)
    )
    host, port = server.start()
    print(f"demo: {steps} steps on {name!r}; serving {server.url}", file=out)
    writer.close()
    return server, server.url


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="monitor",
        description="Per-stream health table scraped from the live "
                    "telemetry server.",
    )
    parser.add_argument("--url", default=None,
                        help="telemetry server base URL "
                             "(e.g. http://127.0.0.1:9464)")
    parser.add_argument("--demo", action="store_true",
                        help="serve an in-process demo pipeline and "
                             "scrape it (smoke test)")
    parser.add_argument("--demo-steps", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=1,
                        help="number of scrapes (top-like watch)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between scrapes")
    parser.add_argument("--json", action="store_true",
                        help="emit raw /streams JSON instead of the table")
    parser.add_argument("--check-expo", action="store_true",
                        help="also validate the /metrics Prometheus "
                             "exposition format")
    args = parser.parse_args(argv)
    out = out or sys.stdout

    if args.demo == (args.url is not None):
        parser.error("exactly one of --url or --demo is required")
    server = None
    url = args.url
    if args.demo:
        server, url = _run_demo(args.demo_steps, out)
    try:
        rc = 0
        for i in range(max(1, args.iterations)):
            if i:
                time.sleep(args.interval)
                print("", file=out)
            rc = scrape_once(url, out, as_json=args.json) or rc
        if args.check_expo:
            rc = check_exposition(url, out) or rc
        return rc
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
