"""Self-describing binary marshaling (FFS/PBIO-like).

EVPath marshals messages with FFS: message *formats* (named, typed field
lists) are registered once, and messages on the wire carry a compact format
id plus packed field data.  A receiver that has not seen a format yet can
recover it from the format's self-description, which is itself encodable.

This package implements that scheme for real: :class:`FormatRegistry` holds
formats, :func:`encode` / :func:`decode` produce and parse actual bytes.
Both the messaging layer and the BP-lite file format build on it.
"""

from repro.marshal.format import Field, FieldKind, Format, FormatRegistry
from repro.marshal.codec import (
    MarshalError,
    decode_message,
    decode_stream,
    decode_view,
    encode_into,
    encode_message,
    encoded_size,
)

__all__ = [
    "Field",
    "FieldKind",
    "Format",
    "FormatRegistry",
    "MarshalError",
    "decode_message",
    "decode_stream",
    "decode_view",
    "encode_into",
    "encode_message",
    "encoded_size",
]
