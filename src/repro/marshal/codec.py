"""Binary message encoding/decoding against registered formats.

Wire layout of one message::

    magic      u32   0x0FF5F0CD
    flags      u8    bit 0: schema inlined
    format_id  u64
    [schema]         self-description, iff flag bit 0
    body_len   u64
    body             packed fields in format order

Field packing:

    INT64      i64
    FLOAT64    f64
    BOOL       u8
    STRING     u32 len + utf-8 bytes
    BYTES      u64 len + raw bytes
    LIST_INT64 u32 count + count * i64
    ARRAY      u8 dtype-code-len + dtype str + u8 ndim + ndim * u64 shape
               + u64 nbytes + raw C-order data
"""

from __future__ import annotations

import struct
from typing import Any, Optional

import numpy as np

from repro.marshal.format import Field, FieldKind, Format, FormatRegistry

MAGIC = 0x0FF5F0CD
_FLAG_SCHEMA = 0x01


class MarshalError(RuntimeError):
    """Malformed message, unknown format, or value/schema mismatch."""


# ---------------------------------------------------------------------------
# Field packers
# ---------------------------------------------------------------------------

def _pack_field(field: Field, value: Any, out: bytearray) -> None:
    kind = field.kind
    try:
        if kind == FieldKind.INT64:
            out += struct.pack("<q", int(value))
        elif kind == FieldKind.FLOAT64:
            out += struct.pack("<d", float(value))
        elif kind == FieldKind.BOOL:
            out += struct.pack("<B", 1 if value else 0)
        elif kind == FieldKind.STRING:
            b = str(value).encode("utf-8")
            out += struct.pack("<I", len(b))
            out += b
        elif kind == FieldKind.BYTES:
            b = bytes(value)
            out += struct.pack("<Q", len(b))
            out += b
        elif kind == FieldKind.LIST_INT64:
            vals = [int(v) for v in value]
            out += struct.pack("<I", len(vals))
            out += struct.pack(f"<{len(vals)}q", *vals) if vals else b""
        elif kind == FieldKind.ARRAY:
            arr = np.ascontiguousarray(value)
            dt = arr.dtype.str.encode("ascii")
            out += struct.pack("<B", len(dt))
            out += dt
            out += struct.pack("<B", arr.ndim)
            for dim in arr.shape:
                out += struct.pack("<Q", dim)
            raw = arr.tobytes()
            out += struct.pack("<Q", len(raw))
            out += raw
        else:  # pragma: no cover - exhaustive over FieldKind
            raise MarshalError(f"unsupported kind {kind}")
    except (TypeError, ValueError, OverflowError) as exc:
        raise MarshalError(
            f"cannot pack field {field.name!r} as {kind.name}: {exc}"
        ) from exc


def _field_size(field: Field, value: Any) -> int:
    """Encoded size of one field (for sizing a pack_into destination)."""
    kind = field.kind
    try:
        if kind == FieldKind.INT64 or kind == FieldKind.FLOAT64:
            return 8
        if kind == FieldKind.BOOL:
            return 1
        if kind == FieldKind.STRING:
            return 4 + len(str(value).encode("utf-8"))
        if kind == FieldKind.BYTES:
            return 8 + len(value)
        if kind == FieldKind.LIST_INT64:
            return 4 + 8 * len(value)
        if kind == FieldKind.ARRAY:
            arr = np.asarray(value)
            dt = arr.dtype.str.encode("ascii")
            return 1 + len(dt) + 1 + 8 * arr.ndim + 8 + arr.nbytes
    except TypeError as exc:
        raise MarshalError(
            f"cannot size field {field.name!r} as {kind.name}: {exc}"
        ) from exc
    raise MarshalError(f"unsupported kind {kind}")  # pragma: no cover


def _pack_field_into(field: Field, value: Any, mv: memoryview, off: int) -> int:
    """Pack one field directly at ``mv[off:]``; returns the new offset.

    The zero-copy twin of :func:`_pack_field`: ARRAY payloads are copied
    once, straight into the destination (a leased pool buffer, a queue
    slot, registered RDMA memory), with no intermediate ``bytes``.
    """
    kind = field.kind
    try:
        if kind == FieldKind.INT64:
            struct.pack_into("<q", mv, off, int(value))
            return off + 8
        if kind == FieldKind.FLOAT64:
            struct.pack_into("<d", mv, off, float(value))
            return off + 8
        if kind == FieldKind.BOOL:
            struct.pack_into("<B", mv, off, 1 if value else 0)
            return off + 1
        if kind == FieldKind.STRING:
            b = str(value).encode("utf-8")
            struct.pack_into("<I", mv, off, len(b))
            off += 4
            mv[off : off + len(b)] = b
            return off + len(b)
        if kind == FieldKind.BYTES:
            b = value if isinstance(value, (bytes, bytearray, memoryview)) else bytes(value)
            struct.pack_into("<Q", mv, off, len(b))
            off += 8
            mv[off : off + len(b)] = b
            return off + len(b)
        if kind == FieldKind.LIST_INT64:
            vals = [int(v) for v in value]
            struct.pack_into("<I", mv, off, len(vals))
            off += 4
            if vals:
                struct.pack_into(f"<{len(vals)}q", mv, off, *vals)
            return off + 8 * len(vals)
        if kind == FieldKind.ARRAY:
            arr = np.ascontiguousarray(value)
            dt = arr.dtype.str.encode("ascii")
            struct.pack_into("<B", mv, off, len(dt))
            off += 1
            mv[off : off + len(dt)] = dt
            off += len(dt)
            struct.pack_into("<B", mv, off, arr.ndim)
            off += 1
            for dim in arr.shape:
                struct.pack_into("<Q", mv, off, dim)
                off += 8
            struct.pack_into("<Q", mv, off, arr.nbytes)
            off += 8
            # The single array copy: source view -> destination span.
            dst = np.frombuffer(mv, dtype=np.uint8, count=arr.nbytes, offset=off)
            dst[:] = arr.reshape(-1).view(np.uint8)
            return off + arr.nbytes
    except (TypeError, ValueError, OverflowError, struct.error) as exc:
        raise MarshalError(
            f"cannot pack field {field.name!r} as {kind.name}: {exc}"
        ) from exc
    raise MarshalError(f"unsupported kind {kind}")  # pragma: no cover


def _unpack_field(field: Field, data: bytes, off: int) -> tuple[Any, int]:
    kind = field.kind
    if kind == FieldKind.INT64:
        (v,) = struct.unpack_from("<q", data, off)
        return v, off + 8
    if kind == FieldKind.FLOAT64:
        (v,) = struct.unpack_from("<d", data, off)
        return v, off + 8
    if kind == FieldKind.BOOL:
        (v,) = struct.unpack_from("<B", data, off)
        return bool(v), off + 1
    if kind == FieldKind.STRING:
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        return data[off : off + n].decode("utf-8"), off + n
    if kind == FieldKind.BYTES:
        (n,) = struct.unpack_from("<Q", data, off)
        off += 8
        return bytes(data[off : off + n]), off + n
    if kind == FieldKind.LIST_INT64:
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        vals = list(struct.unpack_from(f"<{n}q", data, off)) if n else []
        return vals, off + 8 * n
    if kind == FieldKind.ARRAY:
        (dlen,) = struct.unpack_from("<B", data, off)
        off += 1
        dtype = np.dtype(data[off : off + dlen].decode("ascii"))
        off += dlen
        (ndim,) = struct.unpack_from("<B", data, off)
        off += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", data, off)
            off += 8
            shape.append(dim)
        (nbytes,) = struct.unpack_from("<Q", data, off)
        off += 8
        arr = np.frombuffer(data[off : off + nbytes], dtype=dtype).reshape(shape)
        return arr.copy(), off + nbytes
    raise MarshalError(f"unsupported kind {kind}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Message encode / decode
# ---------------------------------------------------------------------------

def encode_message(
    fmt: Format,
    record: dict,
    peer_registry: Optional[FormatRegistry] = None,
) -> bytes:
    """Encode ``record`` against ``fmt``.

    ``peer_registry`` models the *receiver's* format knowledge: if given
    and it already knows the format, the schema is not inlined (steady
    state); otherwise the self-description rides along (first contact).
    """
    missing = [f.name for f in fmt.fields if f.name not in record]
    if missing:
        raise MarshalError(f"record missing fields {missing} for format {fmt.name!r}")

    inline_schema = peer_registry is None or not peer_registry.knows(fmt)
    flags = _FLAG_SCHEMA if inline_schema else 0

    body = bytearray()
    for field in fmt.fields:
        _pack_field(field, record[field.name], body)

    out = bytearray()
    out += struct.pack("<I", MAGIC)
    out += struct.pack("<B", flags)
    out += struct.pack("<Q", fmt.format_id)
    if inline_schema:
        out += fmt.self_description()
    out += struct.pack("<Q", len(body))
    out += body
    return bytes(out)


def decode_message(
    data: bytes, registry: FormatRegistry
) -> tuple[Format, dict]:
    """Decode one message; learns inlined schemas into ``registry``."""
    fmt, record, _ = decode_stream(data, registry)
    return fmt, record


def decode_stream(
    data: bytes, registry: FormatRegistry
) -> tuple[Format, dict, int]:
    """Like :func:`decode_message` but also returns bytes consumed.

    Needed when messages are concatenated (BP-lite index regions, shm
    channel batches).
    """
    if len(data) < 13:
        raise MarshalError(f"message truncated ({len(data)} bytes)")
    (magic,) = struct.unpack_from("<I", data, 0)
    if magic != MAGIC:
        raise MarshalError(f"bad magic {magic:#x}")
    (flags,) = struct.unpack_from("<B", data, 4)
    (format_id,) = struct.unpack_from("<Q", data, 5)
    off = 13

    if flags & _FLAG_SCHEMA:
        fmt, consumed = Format.from_self_description(data[off:])
        off += consumed
        if fmt.format_id != format_id:
            raise MarshalError(
                f"inlined schema id {fmt.format_id:#x} != header id {format_id:#x}"
            )
        registry.register(fmt)
    else:
        maybe = registry.by_id(format_id)
        if maybe is None:
            raise MarshalError(f"unknown format id {format_id:#x} and no inlined schema")
        fmt = maybe

    (body_len,) = struct.unpack_from("<Q", data, off)
    off += 8
    if off + body_len > len(data):
        raise MarshalError("body extends past end of message")

    record: dict = {}
    pos = off
    for field in fmt.fields:
        value, pos = _unpack_field(field, data, pos)
        record[field.name] = value
    if pos - off != body_len:
        raise MarshalError(
            f"body length mismatch: declared {body_len}, consumed {pos - off}"
        )
    return fmt, record, pos


# ---------------------------------------------------------------------------
# Zero-copy encode / decode (pack_into / unpack_from over wire spans)
# ---------------------------------------------------------------------------

def encoded_size(
    fmt: Format,
    record: dict,
    peer_registry: Optional[FormatRegistry] = None,
) -> int:
    """Exact wire size :func:`encode_into` will write for ``record`` —
    use it to size a pool lease before packing into it."""
    missing = [f.name for f in fmt.fields if f.name not in record]
    if missing:
        raise MarshalError(f"record missing fields {missing} for format {fmt.name!r}")
    inline_schema = peer_registry is None or not peer_registry.knows(fmt)
    n = 13 + (len(fmt.self_description()) if inline_schema else 0) + 8
    for field in fmt.fields:
        n += _field_size(field, record[field.name])
    return n


def encode_into(
    fmt: Format,
    record: dict,
    buf,
    peer_registry: Optional[FormatRegistry] = None,
) -> int:
    """Encode ``record`` directly into ``buf`` (a memoryview, bytearray,
    uint8 ndarray, or a leased buffer's ``data`` array); returns bytes
    written.

    The zero-copy twin of :func:`encode_message`: ARRAY payloads are
    copied exactly once, from the source array straight into the
    destination span — so serializing into a leased pool buffer or
    registered RDMA memory costs one copy total.
    """
    missing = [f.name for f in fmt.fields if f.name not in record]
    if missing:
        raise MarshalError(f"record missing fields {missing} for format {fmt.name!r}")
    inline_schema = peer_registry is None or not peer_registry.knows(fmt)
    flags = _FLAG_SCHEMA if inline_schema else 0

    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    if mv.format != "B":
        mv = mv.cast("B")
    if mv.readonly:
        raise MarshalError("encode_into destination is read-only")
    try:
        struct.pack_into("<I", mv, 0, MAGIC)
        struct.pack_into("<B", mv, 4, flags)
        struct.pack_into("<Q", mv, 5, fmt.format_id)
        off = 13
        if inline_schema:
            sd = fmt.self_description()
            mv[off : off + len(sd)] = sd
            off += len(sd)
        body_len_off = off
        off += 8
        body_start = off
        for field in fmt.fields:
            off = _pack_field_into(field, record[field.name], mv, off)
        struct.pack_into("<Q", mv, body_len_off, off - body_start)
    except (struct.error, ValueError) as exc:
        raise MarshalError(f"destination too small for message: {exc}") from exc
    return off


def _unpack_field_view(field: Field, data: np.ndarray, off: int) -> tuple[Any, int]:
    """Unpack one field from a flat uint8 array; ARRAY and BYTES come
    back as *views* over ``data`` (no copy)."""
    kind = field.kind
    if kind == FieldKind.ARRAY:
        (dlen,) = struct.unpack_from("<B", data, off)
        off += 1
        dtype = np.dtype(bytes(data[off : off + dlen]).decode("ascii"))
        off += dlen
        (ndim,) = struct.unpack_from("<B", data, off)
        off += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", data, off)
            off += 8
            shape.append(dim)
        (nbytes,) = struct.unpack_from("<Q", data, off)
        off += 8
        count = nbytes // dtype.itemsize if dtype.itemsize else 0
        arr = np.frombuffer(data, dtype=dtype, count=count, offset=off)
        return arr.reshape(shape), off + nbytes
    if kind == FieldKind.BYTES:
        (n,) = struct.unpack_from("<Q", data, off)
        off += 8
        return data[off : off + n], off + n
    if kind == FieldKind.STRING:
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        return bytes(data[off : off + n]).decode("utf-8"), off + n
    # Scalars carry no payload worth aliasing; reuse the copying path
    # (struct.unpack_from accepts any buffer, including ndarrays).
    return _unpack_field(field, data, off)


def decode_view(data, registry: FormatRegistry) -> tuple[Format, dict, int]:
    """Zero-copy decode: like :func:`decode_stream`, but ARRAY fields are
    returned as ``np.frombuffer`` views over ``data`` (and BYTES as uint8
    views) instead of copies.

    ``data`` may be bytes, a memoryview, a flat uint8 ndarray, or a
    :class:`~repro.transport.buffers.WireBuffer` (anything with an
    ``as_array()``).  The returned arrays alias the receive segment: the
    consumer must finish with them (or copy) before releasing the span.
    """
    if hasattr(data, "as_array"):
        arr = data.as_array()
    elif isinstance(data, np.ndarray):
        arr = data.reshape(-1).view(np.uint8)
    else:
        arr = np.frombuffer(data, dtype=np.uint8)
    if arr.nbytes < 13:
        raise MarshalError(f"message truncated ({arr.nbytes} bytes)")
    (magic,) = struct.unpack_from("<I", arr, 0)
    if magic != MAGIC:
        raise MarshalError(f"bad magic {magic:#x}")
    (flags,) = struct.unpack_from("<B", arr, 4)
    (format_id,) = struct.unpack_from("<Q", arr, 5)
    off = 13

    if flags & _FLAG_SCHEMA:
        # First contact only (steady state ships bare messages): the
        # schema parser wants bytes, so materialize the tail once here.
        fmt, consumed = Format.from_self_description(arr[off:].tobytes())
        off += consumed
        if fmt.format_id != format_id:
            raise MarshalError(
                f"inlined schema id {fmt.format_id:#x} != header id {format_id:#x}"
            )
        registry.register(fmt)
    else:
        maybe = registry.by_id(format_id)
        if maybe is None:
            raise MarshalError(f"unknown format id {format_id:#x} and no inlined schema")
        fmt = maybe

    (body_len,) = struct.unpack_from("<Q", arr, off)
    off += 8
    if off + body_len > arr.nbytes:
        raise MarshalError("body extends past end of message")

    record: dict = {}
    pos = off
    for field in fmt.fields:
        value, pos = _unpack_field_view(field, arr, pos)
        record[field.name] = value
    if pos - off != body_len:
        raise MarshalError(
            f"body length mismatch: declared {body_len}, consumed {pos - off}"
        )
    return fmt, record, pos
